#!/usr/bin/env python
"""Quickstart: decompose one function into 5-input LUTs with HYDE.

Builds the classic MCNC ``9sym`` benchmark (nine inputs, one output: true
iff between three and six inputs are high), maps it with the paper's flow,
and verifies the result — end to end in a dozen lines of API.

Run:  python examples/quickstart.py
"""

from repro.circuits import build
from repro.mapping import hyde_map
from repro.network import network_stats, to_blif

def main() -> None:
    circuit = build("9sym")
    print(f"input circuit : {network_stats(circuit, k=5)}")

    # The full HYDE flow: global BDDs, bound-set selection, compatible
    # class encoding, recursive decomposition, cleanup, CLB packing.
    # Equivalence against the original is checked internally (verify="bdd").
    result = hyde_map(circuit, k=5)

    print(f"mapped network: {network_stats(result.network, k=5)}")
    print(f"5-LUT count   : {result.lut_count}   (paper Table 2: 6)")
    print(f"XC3000 CLBs   : {result.clb_count}   (paper Table 1: 6)")
    print(f"wall clock    : {result.seconds:.2f}s")
    print()
    print("mapped netlist in BLIF:")
    print(to_blif(result.network))


if __name__ == "__main__":
    main()
