#!/usr/bin/env python
"""Hyper-function decomposition: extracting logic shared by many outputs.

The paper's Section 4 motivation: several outputs of one circuit usually
share sub-logic, but single-output decomposition cannot see it.  Folding
the outputs into a *hyper-function* with pseudo primary inputs lets the
single-output machinery extract the common sub-expressions; only the
*duplication cone* (nodes downstream of a PPI) is paid per output.

This example walks ``rd84`` (8-input popcount, four sum bits) through the
pipeline step by step and reports the sharing statistics, then compares
the hyper-function flow against independent per-output decomposition.

Run:  python examples/multi_output_sharing.py
"""

from repro.circuits import build
from repro.decompose import DecompositionOptions
from repro.hyper import decompose_hyper_function
from repro.mapping import cleanup_for_lut_count, count_luts, map_per_output
from repro.network import GlobalBdds, check_equivalence


def main() -> None:
    circuit = build("rd84")
    print(f"circuit: {circuit.name}, outputs = {circuit.output_names}")

    # Step 1: global BDDs of every output (the ingredients).
    gb = GlobalBdds(circuit)
    ingredients = [(out, gb.of_output(out)) for out in circuit.output_names]

    # Step 2-4: fold into a hyper-function (the chart encoder picks the
    # PPI codes), decompose recursively, recover the ingredients.
    result = decompose_hyper_function(
        gb.manager,
        ingredients,
        circuit.inputs,
        DecompositionOptions(k=5, encoding_policy="chart"),
    )

    hyper = result.hyper
    print(f"\npseudo primary inputs: {hyper.num_ppis}")
    for name, code in zip(hyper.ingredient_names, hyper.codes):
        bits = "".join(str(code[a]) for a in sorted(code))
        print(f"  ingredient {name}: PPI code {bits}")

    info = result.duplication
    print(f"\nhyper-function network: {result.hyper_network.num_nodes} nodes")
    print(f"  duplication source DS : {sorted(info.duplication_source)}")
    print(f"  duplication cone  DC  : {len(info.duplication_cone)} nodes")
    print(f"  shared (outside cone) : {result.shared_nodes} nodes")
    for m, nodes in sorted(info.dset.items()):
        if m:
            print(f"  DSet_{m}: {len(nodes)} nodes")
    print(f"  duplication cost for {hyper.num_ingredients} ingredients: "
          f"{info.duplication_cost(hyper.num_ingredients)} extra copies")

    recovered = result.recovered
    cleanup_for_lut_count(recovered)
    assert check_equivalence(recovered, circuit) is None
    hyper_luts = count_luts(recovered, 5)

    per_output = map_per_output(build("rd84"), 5, encoding_policy="chart")
    print(f"\nhyper-function flow : {hyper_luts} LUTs")
    print(f"per-output flow     : {per_output.lut_count} LUTs")
    print("(HYDE's production flow keeps whichever is smaller per group)")


if __name__ == "__main__":
    main()
