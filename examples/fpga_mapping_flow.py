#!/usr/bin/env python
"""A complete FPGA technology-mapping session, flow by flow.

Maps one benchmark circuit with every flow in the library — HYDE, the
per-output baselines, FGSyn-style column encoding, resubstitution and the
Shannon/MUX mapper — verifies each result, and prints the LUT/CLB
comparison the paper's Tables 1 and 2 are built from.

Run:  python examples/fpga_mapping_flow.py [circuit]
      (default circuit: z4ml; try rd84, 9sym, clip, alu2, ...)
"""

import sys

from repro.circuits import CIRCUITS, build
from repro.harness import render_table
from repro.mapping import (
    hyde_map,
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "z4ml"
    spec = CIRCUITS[name]
    print(f"circuit {name}: {spec.num_inputs} inputs, {spec.num_outputs} "
          f"outputs ({'exact' if spec.exact else 'stand-in'})")
    print(f"  provenance: {spec.note}\n")

    flows = [
        ("HYDE (hyper + chart encoding)",
         lambda n: hyde_map(n, 5)),
        ("per-output, chart encoding",
         lambda n: map_per_output(n, 5, encoding_policy="chart")),
        ("per-output, random encoding",
         lambda n: map_per_output(n, 5, encoding_policy="random")),
        ("per-output + resubstitution",
         lambda n: map_per_output_resub(n, 5)),
        ("column encoding (FGSyn-like)",
         lambda n: map_column_encoding(n, 5)),
        ("Shannon / BDD-to-MUX",
         lambda n: map_shannon(n, 5)),
    ]
    rows = []
    for label, flow in flows:
        result = flow(build(name))  # each flow verifies internally
        rows.append([label, result.lut_count, result.clb_count,
                     round(result.seconds, 2)])
    print(render_table(
        f"mapping {name} to 5-input LUTs / XC3000 CLBs",
        ["flow", "LUTs", "CLBs", "seconds"],
        rows,
    ))
    print("\nevery row passed an exact BDD equivalence check "
          "against the original circuit")


if __name__ == "__main__":
    main()
