#!/usr/bin/env python
"""Time-multiplexed reconfigurable computing with a hyper-function.

The paper's conclusion sketches a second application of hyper-function
decomposition: for *time-multiplexed* functions the duplication cone never
needs duplicating — the pseudo primary inputs stay in the circuit as mode
selectors, and driving them with a context code "reconfigures" the logic
between its ingredient functions instant by instant.

This example folds four distinct 6-input arithmetic/logic contexts into
one hyper-function, decomposes it into 5-LUTs *keeping the PPIs as real
inputs*, and demonstrates that driving the two mode wires selects each
context — one physical network, four time-multiplexed behaviours.

Run:  python examples/time_multiplexed.py
"""

import itertools

from repro.bdd import BddManager
from repro.decompose import DecompositionOptions, decompose_to_network
from repro.hyper import analyze_duplication, build_hyper_function
from repro.mapping import cleanup_for_lut_count, count_luts
from repro.network import Network, network_stats, simulate


def main() -> None:
    # Four contexts over the same six data inputs.
    manager = BddManager()
    names = [f"d{j}" for j in range(6)]
    for name in names:
        manager.add_var(name)
    v = [manager.var(name) for name in names]

    def popcount_ge(k):
        f = 0
        for idx in range(64):
            if bin(idx).count("1") >= k:
                cube = idx
                from repro.bdd import build_cube
                f = manager.apply_or(
                    f, build_cube(manager, {j: (idx >> j) & 1 for j in range(6)})
                )
        return f

    contexts = [
        ("parity", _xor_all(manager, v)),
        ("majority", popcount_ge(4)),
        ("and_all", _and_all(manager, v)),
        ("mux_like", manager.ite(v[0], manager.apply_and(v[1], v[2]),
                                 manager.apply_or(v[3], v[4]))),
    ]

    hyper = build_hyper_function(manager, contexts, k=5)
    print(f"{len(contexts)} contexts folded with {hyper.num_ppis} mode wires")
    for name, code in zip(hyper.ingredient_names, hyper.codes):
        bits = "".join(str(code[a]) for a in sorted(code))
        print(f"  context {name:9s} mode code {bits}")

    # Decompose the hyper-function but KEEP the PPIs as circuit inputs.
    net = Network("tmux")
    signal_of_level = {}
    for name in names:
        net.add_input(name)
        signal_of_level[manager.level_of(name)] = name
    mode_wires = []
    for i, lv in enumerate(hyper.ppi_levels):
        wire = f"mode{i}"
        net.add_input(wire)
        signal_of_level[lv] = wire
        mode_wires.append(wire)
    root = decompose_to_network(
        manager, hyper.on, net, signal_of_level,
        DecompositionOptions(k=5), dc=hyper.dc,
    )
    net.add_output(root, "y")
    cleanup_for_lut_count(net)
    print(f"\nphysical network: {network_stats(net, 5)}")
    print(f"LUTs: {count_luts(net, 5)} — no duplication cone paid at all")
    info = analyze_duplication(net, mode_wires)
    print(f"(for comparison, spatial recovery would duplicate "
          f"{len(info.duplication_cone)} cone nodes)")

    # Demonstrate reconfiguration: drive the mode wires per context.
    print("\nreconfiguration check over all 64 data vectors:")
    for index, (name, bdd) in enumerate(contexts):
        code = hyper.codes[index]
        ok = True
        for bits in itertools.product([0, 1], repeat=6):
            assignment = dict(zip(names, bits))
            assignment.update({
                f"mode{a}": bit for a, bit in code.items()
            })
            want = manager.eval(bdd, {j: bits[j] for j in range(6)})
            got = simulate(net, assignment)["y"]
            ok = ok and (want == got)
        print(f"  context {name:9s} -> {'OK' if ok else 'MISMATCH'}")
        assert ok


def _xor_all(manager, literals):
    f = literals[0]
    for lit in literals[1:]:
        f = manager.apply_xor(f, lit)
    return f


def _and_all(manager, literals):
    f = literals[0]
    for lit in literals[1:]:
        f = manager.apply_and(f, lit)
    return f


if __name__ == "__main__":
    main()
