#!/usr/bin/env python
"""A guided walkthrough of the paper's Example 3.2 (Figures 4-7).

Shows the chart encoder's machinery stage by stage on the ten partitions
printed in the paper: Psc analysis, the column-graph b-matching, row-set
combination, and the final encoding chart with binary codes.  A good
starting point for understanding `repro.decompose.encoding`.

Run:  python examples/paper_walkthrough.py
"""

from repro.circuits import example_3_2_partitions
from repro.decompose import (
    combine_column_sets,
    combine_row_sets,
    pack_chart,
    same_content_position_groups,
)


def fmt_set(s):
    return "{" + ",".join(f"Π{i}" for i in s) + "}"


def main() -> None:
    partitions = example_3_2_partitions()
    print("The ten partitions of Example 3.2:")
    for i, p in enumerate(partitions):
        print(f"  Π{i} = {p}")

    print("\n--- Figure 4(a): positions with the same content ---")
    for i, p in enumerate(partitions):
        groups = same_content_position_groups(p)
        text = ", ".join("".join(f"p{j}" for j in g) for g in groups)
        print(f"  Π{i}: {text or '(all positions distinct)'}")

    print("\n--- Figure 4(b)/5: Psc table and column-graph b-matching ---")
    col_result = combine_column_sets(partitions, num_rows=4)
    for key, members in sorted(col_result.psc_table.items()):
        name = "".join(f"p{j}" for j in key)
        print(f"  Psc_{name}: Partitions = {fmt_set(members)}")
    print(f"  b-matching weight: {col_result.matching_weight} (optimum 40)")
    print("  column sets:", " ".join(fmt_set(s) for s in col_result.column_sets))

    print("\n--- Steps 6/7: row-set combination ---")
    rows = combine_row_sets(partitions, col_result, num_rows=4, num_cols=4)
    assert rows is not None
    row_sets, column_set_of_class = rows
    print("  row sets:", " ".join(fmt_set(r) for r in row_sets))

    print("\n--- Figure 7: the final 4x4 encoding chart ---")
    sizes = {}
    for cls, cs in column_set_of_class.items():
        sizes[cs] = sizes.get(cs, 0) + 1
    chart = pack_chart(row_sets, column_set_of_class, sizes, 4, 4)
    print(chart.render(labels=[f"Π{i}" for i in range(10)]))
    codes = chart.codes(10, [0, 1], [2, 3])
    print("\n  codes (α0 α1 = column bits, α2 α3 = row bits):")
    for i, code in enumerate(codes):
        bits = "".join(str(code[a]) for a in sorted(code))
        print(f"    Π{i} -> {bits}")
    print(
        "\nBy Theorem 3.2 only the row/column grouping matters — these "
        "codes minimise the compatible classes of the next decomposition."
    )


if __name__ == "__main__":
    main()
