#!/usr/bin/env python
"""Algebraic multi-level optimisation, the SIS-script way.

The paper prepares large circuits with SIS's algebraic script before
decomposition.  This example shows the equivalent passes in
``repro.opt`` working on a hand-made network with obvious shared
structure — kernels, weak division, factoring, network-level extraction
— and then the structural mapping flow that builds on them.

Run:  python examples/algebraic_optimization.py
"""

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence, network_stats
from repro.opt import (
    algebraic_script,
    cover_from_table,
    cover_literals,
    cube_to_str,
    extract_kernels,
    kernels,
)


def main() -> None:
    # f = ab + ac + bd over (a, b, c, d): the textbook kernel example.
    t = TruthTable.from_function(
        4, lambda a, b, c, d: (a & b) | (a & c) | (b & d)
    )
    cover = cover_from_table(t)
    names = ["a", "b", "c", "d"]
    print("f =", " + ".join(cube_to_str(c, names) for c in cover))
    print(f"  ({cover_literals(cover)} literals)")
    print("\nkernels of f:")
    for entry in kernels(cover):
        kernel_text = " + ".join(cube_to_str(c, names) for c in entry.kernel)
        cokernel = cube_to_str(entry.cokernel, names)
        print(f"  ({kernel_text})   co-kernel: {cokernel}")

    # A network where two nodes share the kernel (b + c).
    net = Network("shared")
    for pi in "abcd":
        net.add_input(pi)
    t1 = TruthTable.from_function(3, lambda a, b, c: (a & b) | (a & c))
    t2 = TruthTable.from_function(3, lambda d, b, c: (d & b) | (d & c))
    net.add_node("f", ["a", "b", "c"], t1)
    net.add_node("g", ["d", "b", "c"], t2)
    net.add_output("f")
    net.add_output("g")
    print(f"\nbefore extraction: {network_stats(net, 5)}")

    before = net.copy()
    extracted = extract_kernels(net)
    assert check_equivalence(net, before) is None
    print(f"after extraction ({extracted} kernel): {network_stats(net, 5)}")
    for node in net.nodes():
        print(f"  {node.name}({', '.join(node.fanins)})")

    # The full script on a benchmark circuit, then structural mapping.
    from repro.circuits import build
    from repro.mapping import map_structural

    circuit = build("count")
    stats = algebraic_script(circuit.copy())
    print(f"\nalgebraic_script on 'count': {stats}")
    result = map_structural(build("count"), k=5)
    print(f"structural mapping of 'count': {result}")


if __name__ == "__main__":
    main()
