"""Tests for the benchmark circuit generators and the MCNC registry."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.circuits import (
    CIRCUITS,
    alu,
    build,
    comparator,
    decoder,
    gray_encoder,
    incrementer,
    layered_network,
    majority,
    multiplier,
    mux_tree,
    names,
    parity,
    popcount,
    ripple_adder,
    saturating_abs,
    sbox_network,
    symmetric_function,
    windowed_network,
)
from repro.network import check_equivalence, simulate


def word(out, prefix, width):
    return sum(out[f"{prefix}{j}"] << j for j in range(width))


class TestArithmeticGenerators:
    def test_ripple_adder_adds(self):
        net = ripple_adder(3)
        rng = random.Random(0)
        for _ in range(30):
            a, b, cin = rng.randrange(8), rng.randrange(8), rng.randrange(2)
            assignment = {f"a{j}": (a >> j) & 1 for j in range(3)}
            assignment.update({f"b{j}": (b >> j) & 1 for j in range(3)})
            assignment["cin"] = cin
            out = simulate(net, assignment)
            assert word(out, "sum", 4) == a + b + cin

    def test_adder_without_carry(self):
        net = ripple_adder(2, carry_in=False)
        out = simulate(net, {"a0": 1, "a1": 1, "b0": 1, "b1": 0})
        assert word(out, "sum", 3) == 3 + 1

    def test_incrementer(self):
        net = incrementer(4)
        for v in range(16):
            out = simulate(net, {f"v{j}": (v >> j) & 1 for j in range(4)})
            result = word(out, "o", 4) | (out["ovf"] << 4)
            assert result == v + 1

    def test_comparator(self):
        net = comparator(3)
        for a, b in itertools.product(range(8), repeat=2):
            assignment = {f"a{j}": (a >> j) & 1 for j in range(3)}
            assignment.update({f"b{j}": (b >> j) & 1 for j in range(3)})
            out = simulate(net, assignment)
            assert out["gt"] == (1 if a > b else 0)
            assert out["eq"] == (1 if a == b else 0)

    def test_multiplier(self):
        net = multiplier(3)
        for a, b in itertools.product(range(8), repeat=2):
            assignment = {f"a{j}": (a >> j) & 1 for j in range(3)}
            assignment.update({f"b{j}": (b >> j) & 1 for j in range(3)})
            out = simulate(net, assignment)
            assert word(out, "p", 6) == a * b

    def test_alu_operations(self):
        net = alu(4)
        rng = random.Random(1)
        for _ in range(40):
            a, b = rng.randrange(16), rng.randrange(16)
            op = rng.randrange(4)
            assignment = {f"a{j}": (a >> j) & 1 for j in range(4)}
            assignment.update({f"b{j}": (b >> j) & 1 for j in range(4)})
            assignment["op0"] = op & 1
            assignment["op1"] = (op >> 1) & 1
            out = simulate(net, assignment)
            expected = [a + b, a & b, a | b, a ^ b][op] & 0xF
            assert word(out, "res", 4) == expected
            assert out["zero"] == (1 if expected == 0 else 0)
            if op == 0:
                assert out["cout"] == ((a + b) >> 4)


class TestLogicGenerators:
    def test_parity(self):
        net = parity(7)
        rng = random.Random(2)
        for _ in range(20):
            bits = [rng.randint(0, 1) for _ in range(7)]
            out = simulate(net, {f"i{j}": bits[j] for j in range(7)})
            assert out["p"] == sum(bits) % 2

    def test_symmetric(self):
        net = symmetric_function(5, {2, 3})
        for v in range(32):
            out = simulate(net, {f"i{j}": (v >> j) & 1 for j in range(5)})
            assert out["f"] == (1 if bin(v).count("1") in (2, 3) else 0)

    def test_majority(self):
        net = majority(5)
        out = simulate(net, {f"i{j}": 1 if j < 3 else 0 for j in range(5)})
        assert out["f"] == 1

    def test_popcount(self):
        net = popcount(7)
        for v in range(128):
            out = simulate(net, {f"i{j}": (v >> j) & 1 for j in range(7)})
            assert word(out, "s", 3) == bin(v).count("1")

    def test_decoder(self):
        net = decoder(3)
        for v in range(8):
            out = simulate(net, {f"s{j}": (v >> j) & 1 for j in range(3)})
            for idx in range(8):
                assert out[f"o{idx}"] == (1 if idx == v else 0)

    def test_mux_tree(self):
        net = mux_tree(2)
        rng = random.Random(3)
        for _ in range(20):
            data = [rng.randint(0, 1) for _ in range(4)]
            sel = rng.randrange(4)
            assignment = {f"d{j}": data[j] for j in range(4)}
            assignment.update({f"s{j}": (sel >> j) & 1 for j in range(2)})
            assert simulate(net, assignment)["y"] == data[sel]

    def test_gray_encoder(self):
        net = gray_encoder(4)
        for v in range(16):
            out = simulate(net, {f"v{j}": (v >> j) & 1 for j in range(4)})
            gray = v ^ (v >> 1)
            assert word(out, "g", 4) == gray

    def test_saturating_abs(self):
        net = saturating_abs(5, 3)
        for v in range(32):
            signed = v - 32 if v >= 16 else v
            expected = min(abs(signed), 7)
            out = simulate(net, {f"i{j}": (v >> j) & 1 for j in range(5)})
            assert word(out, "o", 3) == expected


class TestSynthetic:
    def test_deterministic(self):
        a = windowed_network("w", 10, 4, window=5, seed=1)
        b = windowed_network("w", 10, 4, window=5, seed=1)
        assert check_equivalence(a, b) is None

    def test_seed_changes_function(self):
        a = windowed_network("w", 10, 4, window=5, seed=1)
        b = windowed_network("w", 10, 4, window=5, seed=2)
        assert check_equivalence(a, b) is not None

    def test_layered_profile(self):
        net = layered_network("l", 12, 6, nodes_per_layer=8, seed=0)
        assert len(net.inputs) == 12
        assert len(net.outputs) == 6

    def test_sbox_profile(self):
        net = sbox_network("s", 32, 12, seed=0)
        assert len(net.inputs) == 32
        assert len(net.outputs) == 12


class TestRegistry:
    def test_profiles_verified_on_build(self):
        for name in names():
            spec = CIRCUITS[name]
            if spec.size_class == "large":
                continue  # covered in the harness; keep unit tests fast
            net = build(name)
            assert len(net.inputs) == spec.num_inputs
            assert len(net.outputs) == spec.num_outputs

    def test_exact_flags(self):
        exact = {n for n in names() if CIRCUITS[n].exact}
        assert exact == {"9sym", "rd73", "rd84", "z4ml"}

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build("nonesuch")

    def test_z4ml_is_adder(self):
        net = build("z4ml")
        out = simulate(
            net,
            {"a0": 1, "a1": 1, "a2": 0, "b0": 1, "b1": 0, "b2": 1, "cin": 1},
        )
        assert word(out, "sum", 4) == 3 + 5 + 1

    def test_9sym_definition(self):
        net = build("9sym")
        rng = random.Random(4)
        for _ in range(40):
            v = rng.randrange(512)
            out = simulate(net, {f"i{j}": (v >> j) & 1 for j in range(9)})
            assert out["f"] == (1 if bin(v).count("1") in (3, 4, 5, 6) else 0)
