"""Tests for non-disjoint decomposition (the j < i extension)."""

from __future__ import annotations

import random

import pytest

from repro.bdd import FALSE, BddManager, build_cube
from repro.decompose.nondisjoint import (
    decompose_step_nondisjoint,
    nondisjoint_gain,
)


def mux_function(manager: BddManager):
    """f = s ? (g1(x) & y0) : (g2(x) | y1).

    Levels: 0..3 = x, 4 = s, 5..6 = y.  Each s-slice has only two column
    patterns ({y0, 0} resp. {1, y1}) but the disjoint bound {x, s} sees
    all four at once — sharing s halves the code width.
    """
    x = [manager.var_at_level(i) for i in range(4)]
    s = manager.var_at_level(4)
    y0, y1 = manager.var_at_level(5), manager.var_at_level(6)
    g1 = manager.apply_and(manager.apply_and(x[0], x[1]),
                           manager.apply_or(x[2], x[3]))
    g2 = manager.apply_xor(manager.apply_xor(x[0], x[1]),
                           manager.apply_and(x[2], x[3]))
    return manager.ite(
        s, manager.apply_and(g1, y0), manager.apply_or(g2, y1)
    )


def verify(manager, f, step):
    """Check f == g(alpha(X, S), S, Y) exhaustively over (X, S)."""
    rebuilt = FALSE
    exclusive, shared = step.exclusive_bound, step.shared
    for x_index in range(1 << len(exclusive)):
        for s_index in range(1 << len(shared)):
            assignment = {
                lv: (x_index >> j) & 1 for j, lv in enumerate(exclusive)
            }
            assignment.update(
                {lv: (s_index >> j) & 1 for j, lv in enumerate(shared)}
            )
            position = x_index | (s_index << len(exclusive))
            alpha_assign = {
                alv: step.alpha_tables[a].eval_index(position)
                for a, alv in enumerate(step.alpha_levels)
            }
            g_slice = manager.restrict(step.image.on, alpha_assign)
            g_slice = manager.restrict(
                g_slice,
                {lv: (s_index >> j) & 1 for j, lv in enumerate(shared)},
            )
            cube = build_cube(manager, assignment)
            rebuilt = manager.apply_or(
                rebuilt, manager.apply_and(cube, g_slice)
            )
    assert rebuilt == f


class TestNondisjointStep:
    def test_mux_round_trip(self):
        m = BddManager(7)
        f = mux_function(m)
        step = decompose_step_nondisjoint(
            m, f, bound_levels=[0, 1, 2, 3, 4], shared_levels=[4],
            support=m.support(f),
        )
        verify(m, f, step)

    def test_shared_reduces_alpha_width(self):
        m = BddManager(7)
        f = mux_function(m)
        t_disjoint, t_nondisjoint = nondisjoint_gain(
            m, f, bound_levels=[0, 1, 2, 3, 4], shared_levels=[4]
        )
        assert t_nondisjoint <= t_disjoint
        # g1/g2 are 2-class functions per slice: 1 alpha suffices shared,
        # while the disjoint bound sees both behaviours at once.
        assert t_nondisjoint == 1
        assert t_disjoint >= 2

    def test_random_functions_round_trip(self):
        rng = random.Random(3)
        for _ in range(5):
            m = BddManager(7)
            f = m.from_truth_table(rng.getrandbits(1 << 7), list(range(7)))
            support = m.support(f)
            if len(support) < 6:
                continue
            step = decompose_step_nondisjoint(
                m, f, bound_levels=support[:5], shared_levels=support[4:5],
                support=support,
            )
            verify(m, f, step)

    def test_validation(self):
        m = BddManager(4)
        f = m.var_at_level(0)
        with pytest.raises(ValueError):
            decompose_step_nondisjoint(
                m, f, bound_levels=[0, 1], shared_levels=[2], support=[0, 1, 2]
            )
        with pytest.raises(ValueError):
            decompose_step_nondisjoint(
                m, f, bound_levels=[0, 1], shared_levels=[0, 1], support=[0, 1]
            )

    def test_classes_per_shared_reported(self):
        m = BddManager(7)
        f = mux_function(m)
        step = decompose_step_nondisjoint(
            m, f, bound_levels=[0, 1, 2, 3, 4], shared_levels=[4],
            support=m.support(f),
        )
        assert len(step.classes_per_shared) == 2
        assert step.max_classes == max(step.classes_per_shared)
