"""Tests for experiment archiving and run comparison."""

from __future__ import annotations

import pytest

from repro.harness import (
    CircuitRecord,
    ExperimentRecord,
    FlowRecord,
    RecordDiff,
    compare_records,
    load_record,
    save_record,
)


def make_record(values: dict) -> ExperimentRecord:
    rec = ExperimentRecord("exp", "lut_count")
    for circuit, flows in values.items():
        crec = CircuitRecord(circuit, 4, 1, True)
        for flow, lut in flows.items():
            crec.flows[flow] = FlowRecord(flow, lut_count=lut)
        rec.circuits.append(crec)
    return rec


class TestArchive:
    def test_save_load_round_trip(self, tmp_path):
        rec = make_record({"a": {"hyde": 5}})
        path = tmp_path / "run.json"
        save_record(rec, path)
        again = load_record(path)
        assert again.totals("hyde") == 5


class TestCompare:
    def test_detects_regressions_and_improvements(self):
        old = make_record({"a": {"hyde": 5, "po": 7}, "b": {"hyde": 9}})
        new = make_record({"a": {"hyde": 4, "po": 8}, "b": {"hyde": 9}})
        diff = compare_records(old, new)
        assert ("a", "hyde", 5, 4) in diff.improved
        assert ("a", "po", 7, 8) in diff.regressed
        assert diff.unchanged == 1
        assert diff.has_regressions
        assert "REGRESSED a/po" in diff.summary()

    def test_detects_coverage_changes(self):
        old = make_record({"a": {"hyde": 5}, "gone": {"hyde": 3}})
        new = make_record({"a": {"hyde": 5}, "fresh": {"hyde": 2}})
        diff = compare_records(old, new)
        assert ("gone", "hyde") in diff.only_in_old
        assert ("fresh", "hyde") in diff.only_in_new

    def test_metric_mismatch_rejected(self):
        old = make_record({"a": {"hyde": 5}})
        new = ExperimentRecord("exp", "clb_count")
        with pytest.raises(ValueError):
            compare_records(old, new)

    def test_errors_count_as_unchanged(self):
        old = make_record({"a": {"hyde": 5}})
        new = ExperimentRecord("exp", "lut_count")
        crec = CircuitRecord("a", 4, 1, True)
        crec.flows["hyde"] = FlowRecord("hyde", error="boom")
        new.circuits.append(crec)
        diff = compare_records(old, new)
        assert not diff.has_regressions
