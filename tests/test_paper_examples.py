"""Tests for the reconstructed worked examples of the paper."""

from __future__ import annotations

import pytest

from repro.circuits import (
    example_3_1_function,
    example_3_2_partitions,
    example_4_1_ingredients,
    example_4_2_partitions,
)
from repro.decompose import DecompositionOptions, compute_classes
from repro.hyper import decompose_hyper_function
from repro.network import GlobalBdds, check_equivalence


class TestExample31:
    def test_three_compatible_classes(self):
        m, f, bound, free = example_3_1_function()
        classes = compute_classes(m, f, bound)
        assert classes.num_classes == 3

    def test_encodings_change_image_classes(self):
        # The point of Figure 2: with λ' = {α0, x, y}, different strict
        # encodings of the three classes give different class counts for g.
        from repro.decompose import build_image_function, count_classes

        m, f, bound, free = example_3_1_function()
        classes = compute_classes(m, f, bound)
        alpha = []
        for _ in range(2):
            m.add_var()
            alpha.append(m.num_vars - 1)
        counts = set()
        # All strict encodings of 3 classes into 2 bits.
        import itertools
        lambda_prime = [alpha[0], m.level_of("x"), m.level_of("y")]
        for assignment in itertools.permutations(range(4), 3):
            codes = [
                {a: (code >> a) & 1 for a in range(2)} for code in assignment
            ]
            image = build_image_function(m, alpha, codes, classes.class_functions)
            counts.add(
                count_classes(m, image.on, lambda_prime, image.dc, True)
            )
        assert len(counts) > 1  # the encoding matters


class TestExample32:
    def test_partitions_shape(self):
        parts = example_3_2_partitions()
        assert len(parts) == 10
        assert all(p.num_positions == 4 for p in parts)

    def test_chart_is_byte_identical(self):
        # Pin the full Figure-3 pipeline on the paper's Example 3.2: the
        # b-matching fold-back fix and the singleton-absorption mapping
        # repair must leave this chart (and the matching weight the paper
        # quotes as 40) exactly as before.
        from repro.decompose import combine_column_sets, combine_row_sets
        from repro.decompose.chart import pack_chart

        parts = example_3_2_partitions()
        col_result = combine_column_sets(parts, num_rows=4)
        assert col_result.matching_weight == 40.0
        rows = combine_row_sets(parts, col_result, num_rows=4, num_cols=4)
        assert rows is not None
        row_sets, column_set_of_class = rows
        sizes: dict = {}
        for idx in column_set_of_class.values():
            sizes[idx] = sizes.get(idx, 0) + 1
        chart = pack_chart(row_sets, column_set_of_class, sizes, 4, 4)
        assert chart is not None
        assert chart.render() == "6 0 1 9\n4 2 - -\n3 5 - -\n8 7 - -"


class TestExample41:
    def test_support_profile(self):
        net, k = example_4_1_ingredients()
        supports = {out: net.support_of(net.output_driver(out))
                    for out in net.output_names}
        assert len(supports["f0"]) == 8   # i0..i5, i7, i8
        assert len(supports["f1"]) == 7   # i0..i6
        assert len(supports["f2"]) == 6
        assert len(supports["f3"]) == 6
        assert "i6" not in supports["f0"]

    def test_hyper_decomposition_recovers_all(self):
        net, k = example_4_1_ingredients()
        gb = GlobalBdds(net)
        ingredients = [
            (out, gb.of_output(out)) for out in net.output_names
        ]
        result = decompose_hyper_function(
            gb.manager,
            ingredients,
            net.inputs,
            DecompositionOptions(k=k),
        )
        assert result.hyper.num_ppis == 2
        rec = result.recovered
        assert check_equivalence(rec, net) is None
        # Sharing must exist: some node outside the duplication cone.
        assert result.shared_nodes > 0


class TestExample42Data:
    def test_partition_lengths(self):
        parts = example_4_2_partitions()
        assert all(p.num_positions == 16 for p in parts)
