"""Tests for the observability subsystem (spans, export, CLI rendering)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.circuits import build
from repro.mapping import hyde_map
from repro.network import to_blif
from repro.obs import (
    TraceRecorder,
    coverage,
    read_trace,
    render_trace_summary,
    trace_records,
    validate_trace,
    worker_perf_totals,
    write_trace,
)


class TestRecorder:
    def test_nesting_and_times(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert len(rec.roots) == 1
        outer = rec.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.total_seconds >= sum(
            c.total_seconds for c in outer.children
        )
        assert outer.self_seconds >= 0.0

    def test_attrs_and_events(self):
        rec = TraceRecorder(proc="main")
        with rec.span("phase", gi=3) as s:
            rec.event("degraded", resolution="retry")
        assert s.attrs == {"gi": 3}
        event = s.children[0]
        assert event.name == "degraded"
        assert event.total_seconds == 0.0
        assert event.attrs["resolution"] == "retry"

    def test_exception_closes_stray_children(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("outer"):
                rec._stack[-1]  # outer open
                handle = rec.span("leaked")
                handle.__enter__()
                raise RuntimeError("boom")
        assert rec.roots[0].end is not None
        assert rec.roots[0].children[0].end is not None
        assert not rec._stack

    def test_perf_delta_from_manager(self):
        from repro.bdd import BddManager

        m = BddManager(4)
        rec = TraceRecorder()
        with rec.span("work", manager=m):
            m.apply_and(m.var_at_level(0), m.var_at_level(1))
        perf = rec.roots[0].perf
        assert perf is not None and perf["apply_calls"] >= 1
        # Only changed slots are recorded.
        assert "budget_exceeded" not in perf

    def test_module_functions_are_noops_when_uninstalled(self):
        assert obs.active() is None
        with obs.span("nothing"):
            pass
        assert obs.event("nothing") is None

    def test_install_restore(self):
        rec = TraceRecorder()
        with obs.installed(rec):
            assert obs.active() is rec
            with obs.span("seen"):
                pass
        assert obs.active() is None
        assert rec.roots[0].name == "seen"


class TestSerialisation:
    def _sample(self):
        rec = TraceRecorder()
        with rec.span("root", k=5):
            with rec.span("child"):
                pass
            rec.event("mark")
        return rec

    def test_to_dicts_shape(self):
        records = self._sample().to_dicts()
        assert [r["name"] for r in records] == ["root", "child", "mark"]
        root, child, mark = records
        assert root["parent"] is None
        assert child["parent"] == root["id"]
        assert mark["type"] == "event"
        assert root["attrs"] == {"k": 5}

    def test_rebase_starts_at_zero(self):
        records = self._sample().to_dicts(rebase=True)
        assert records[0]["t0"] == 0.0
        assert all(r["t0"] >= 0 for r in records)

    def test_graft_under_open_span(self):
        worker = self._sample().to_dicts(rebase=True)
        parent = TraceRecorder()
        with parent.span("decompose") as d:
            parent.graft(worker, parent=d, offset=d.start)
        grafted = parent.roots[0].children[0]
        assert grafted.name == "root"
        assert grafted.start >= parent.roots[0].start
        assert [c.name for c in grafted.children] == ["child", "mark"]

    def test_round_trip_via_file(self, tmp_path):
        rec = self._sample()
        path = str(tmp_path / "t.jsonl")
        count = write_trace(path, rec, {"flow": "hyde", "circuit": "x"})
        assert count == 4  # meta + 3 spans
        records = read_trace(path)
        assert validate_trace(records) == []
        assert records[0]["flow"] == "hyde"


class TestValidation:
    def _valid(self):
        return trace_records(self._rec(), {"circuit": "x"})

    def _rec(self):
        rec = TraceRecorder()
        with rec.span("root"):
            with rec.span("child"):
                pass
        return rec

    def test_valid_trace_passes(self):
        assert validate_trace(self._valid()) == []

    def test_missing_meta(self):
        records = [r for r in self._valid() if r["type"] != "meta"]
        assert any("meta" in p for p in validate_trace(records))

    def test_bad_version(self):
        records = self._valid()
        records[0]["version"] = 99
        assert any("version" in p for p in validate_trace(records))

    def test_duplicate_id(self):
        records = self._valid()
        records[2]["id"] = records[1]["id"]
        assert any("duplicate" in p for p in validate_trace(records))

    def test_child_escaping_parent(self):
        records = self._valid()
        records[2]["t1"] = records[1]["t1"] + 1.0
        assert any("escapes" in p for p in validate_trace(records))

    def test_unknown_perf_counter(self):
        records = self._valid()
        records[1]["perf"] = {"not_a_counter": 3}
        assert any("unknown perf" in p for p in validate_trace(records))

    def test_negative_counter(self):
        records = self._valid()
        records[1]["perf"] = {"apply_calls": -1}
        assert any("non-negative" in p for p in validate_trace(records))


class TestCoverageAndTotals:
    def test_coverage_full_and_partial(self):
        meta = {"type": "meta", "version": 1}
        base = {"type": "span", "proc": "main", "parent": None}
        root = dict(base, id=0, name="root", t0=0.0, t1=10.0)
        half = dict(base, id=1, name="a", parent=0, t0=0.0, t1=5.0)
        assert coverage([meta, root, half]) == pytest.approx(0.5)
        rest = dict(base, id=2, name="b", parent=0, t0=4.0, t1=10.0)
        assert coverage([meta, root, half, rest]) == pytest.approx(1.0)

    def test_coverage_ignores_worker_children(self):
        meta = {"type": "meta", "version": 1}
        root = {"type": "span", "proc": "main", "parent": None, "id": 0,
                "name": "root", "t0": 0.0, "t1": 10.0}
        task = {"type": "span", "proc": "task:0", "parent": 0, "id": 1,
                "name": "task.group", "t0": 0.0, "t1": 10.0}
        assert coverage([meta, root, task]) == pytest.approx(0.0)

    def test_coverage_none_without_roots(self):
        assert coverage([{"type": "meta", "version": 1}]) is None

    def test_worker_totals_sum_tree_roots_only(self):
        records = [
            {"type": "span", "proc": "main", "parent": None, "id": 0,
             "name": "root", "t0": 0.0, "t1": 1.0},
            {"type": "span", "proc": "task:0", "parent": 0, "id": 1,
             "name": "task.group", "t0": 0.0, "t1": 1.0,
             "perf": {"apply_calls": 10}},
            # Child delta already included in its root's snapshot diff.
            {"type": "span", "proc": "task:0", "parent": 1, "id": 2,
             "name": "recurse", "t0": 0.0, "t1": 0.5,
             "perf": {"apply_calls": 4}},
            {"type": "span", "proc": "task:1", "parent": 0, "id": 3,
             "name": "task.group", "t0": 0.0, "t1": 1.0,
             "perf": {"apply_calls": 7}},
        ]
        totals = worker_perf_totals(records)
        assert totals["apply_calls"] == 17


class TestFlowIntegration:
    def _traced_map(self, jobs):
        net = build("misex1")
        rec = TraceRecorder()
        with obs.installed(rec):
            with rec.span("flow:hyde", circuit="misex1", k=5, jobs=jobs):
                result = hyde_map(net, k=5, jobs=jobs)
        return rec, result

    def test_serial_trace_covers_run(self):
        rec, result = self._traced_map(jobs=1)
        records = trace_records(rec, {"circuit": "misex1"})
        assert validate_trace(records) == []
        assert coverage(records) >= 0.9
        names = {r["name"] for r in records if r.get("type") == "span"}
        # Every Figure-3 / flow phase shows up.
        for expected in (
            "bdd_build", "decompose", "group", "recurse", "step.varpart",
            "encode.column_sets", "cleanup", "verify", "cost",
        ):
            assert expected in names, f"missing span {expected!r}"

    def test_parallel_trace_merges_worker_counters(self):
        rec, result = self._traced_map(jobs=2)
        records = trace_records(rec, {"circuit": "misex1"})
        assert validate_trace(records) == []
        assert coverage(records) >= 0.9
        totals = worker_perf_totals(records)
        assert totals["apply_calls"] > 0
        # The flow's merged perf includes the workers' counters.
        assert result.details["perf"]["apply_calls"] >= totals["apply_calls"]
        procs = {
            r["proc"] for r in records if r.get("type") in ("span", "event")
        }
        assert any(p.startswith("task:") for p in procs)

    def test_tracing_does_not_change_output(self):
        base = to_blif(hyde_map(build("misex1"), k=5).network)
        _, traced = self._traced_map(jobs=1)
        assert to_blif(traced.network) == base

    def test_report_renders(self):
        rec, _ = self._traced_map(jobs=2)
        records = trace_records(
            rec,
            {"flow": "hyde", "circuit": "misex1", "k": 5, "jobs": 2,
             "perf": {"apply_calls": 123, "apply_hit_rate": 0.5}},
        )
        text = render_trace_summary(records)
        assert "hyde on misex1" in text
        assert "span tree" in text
        assert "task.group" in text
        assert "worker apply calls" in text


class TestCli:
    def test_map_trace_and_check(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "out.jsonl")
        assert main(
            ["map", "misex1", "--jobs", "2", "--trace", path]
        ) == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        records = read_trace(path)
        assert validate_trace(records) == []
        assert records[0]["circuit"] == "misex1"
        assert records[0]["perf"]["apply_calls"] > 0

        assert main(["trace", path]) == 0
        rendered = capsys.readouterr().out
        assert "span tree" in rendered

        assert main(
            ["trace", path, "--check", "--min-coverage", "0.9"]
        ) == 0
        assert "trace ok" in capsys.readouterr().out

    def test_check_rejects_corrupt_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "bad.jsonl")
        records = [
            {"type": "meta", "version": 1},
            {"type": "span", "id": 0, "parent": None, "name": "r",
             "proc": "main", "t0": 0.0, "t1": 1.0},
            {"type": "span", "id": 0, "parent": None, "name": "dup",
             "proc": "main", "t0": 0.0, "t1": 1.0},
        ]
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        assert main(["trace", path, "--check"]) == 1
        assert "duplicate" in capsys.readouterr().out
