"""Differential suite for the packed truth-table kernels.

The bit-parallel fast path of :mod:`repro.fastpath.bitops` must be a
*drop-in* for the BDD path: every count, every bound-set selection and
every merged-class cover has to be bit-identical across
``fast_path="bdd" | "bitpack" | "auto"``.  These tests pin that contract
on seed-stamped random networks (via :mod:`repro.verify.generators`, so
a failure header carries the one seed needed to replay it) plus direct
kernel unit tests.
"""

import random

import pytest

from repro.bdd import FALSE, BddManager
from repro.decompose.compatible import compute_classes, count_classes
from repro.decompose.varpart import select_bound_set
from repro.fastpath import bitops
from repro.network import GlobalBdds
from repro.verify.generators import random_network, resolve_seed


def _random_pair(rng, manager, n):
    """A random incompletely specified (on, dc) over all n inputs."""
    nbits = 1 << n
    on_tt = rng.getrandbits(nbits)
    dc_tt = rng.getrandbits(nbits) & ~on_tt
    on = manager.from_truth_table(on_tt, list(range(n)))
    dc = manager.from_truth_table(dc_tt, list(range(n)))
    return on, dc, on_tt, dc_tt


class TestKernelPrimitives:
    def test_var_masks_partition(self):
        for n in range(1, 8):
            full = (1 << (1 << n)) - 1
            for p in range(n):
                m0, m1 = bitops.var_masks(n, p)
                assert m0 ^ m1 == full and m0 & m1 == 0
                for i in range(1 << n):
                    assert ((m1 >> i) & 1) == ((i >> p) & 1)

    def test_split_chunks_orders_low_first(self):
        assert bitops._split_chunks(0b11100100, 8, 2) == [0b00, 0b01, 0b10, 0b11]
        assert bitops._split_chunks(5, 4, 4) == [5]

    def test_conversion_round_trip(self):
        seed = resolve_seed(1101, "bitops_round_trip")
        rng = random.Random(seed)
        for _ in range(50):
            n = rng.randint(1, 8)
            m = BddManager(n)
            tt = rng.getrandbits(1 << n)
            f = m.from_truth_table(tt, list(range(n)))
            levels = list(range(n))
            packed = bitops.bdd_to_packed(m, f, levels)
            # Kernel convention: levels[j] is index bit n-1-j.
            assert packed == m.to_truth_table(f, list(reversed(levels)))

    def test_conversion_superset_levels(self):
        seed = resolve_seed(1102, "bitops_superset")
        rng = random.Random(seed)
        for _ in range(30):
            n = rng.randint(2, 6)
            m = BddManager(n + 2)
            tt = rng.getrandbits(1 << n)
            f = m.from_truth_table(tt, list(range(n)))
            levels = list(range(n + 2))  # two vacuous variables on top
            packed = bitops.bdd_to_packed(m, f, levels)
            assert packed == m.to_truth_table(f, list(reversed(levels)))

    def test_conversion_rejects_missing_support(self):
        m = BddManager(3)
        f = m.apply_and(m.var_at_level(0), m.var_at_level(2))
        with pytest.raises(KeyError):
            bitops.bdd_to_packed(m, f, [0, 1])

    def test_chunk_order_matches_cofactor_enumerate(self):
        seed = resolve_seed(1103, "bitops_chunk_order")
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randint(2, 7)
            m = BddManager(n)
            on, dc, _, _ = _random_pair(rng, m, n)
            b = rng.randint(1, n)
            bound = rng.sample(range(n), b)
            pair = bitops.pack_pair(m, on, dc, list(range(n)))
            chunks, width = bitops.enumerate_chunk_pairs(pair, bound)
            on_parts = m.cofactor_enumerate(on, list(bound))
            dc_parts = m.cofactor_enumerate(dc, list(bound))
            assert len(chunks) == len(on_parts) == 1 << b
            # Chunk i corresponds to cofactor i: the free-variable bits
            # inside a chunk are permuted (consistently across chunks) by
            # the lifting swaps, so compare equality *patterns*, which is
            # the property class counting and clique tie-breaking rely on.
            bdd_pairs = list(zip(on_parts, dc_parts))
            first_chunk = {}
            first_bdd = {}
            for i in range(1 << b):
                a = first_chunk.setdefault(chunks[i], i)
                r = first_bdd.setdefault(bdd_pairs[i], i)
                assert a == r, f"chunk/cofactor dedup order diverges at {i}"


class TestCountParity:
    def test_syntactic_count_matches_bdd(self):
        seed = resolve_seed(1104, "bitops_syntactic")
        rng = random.Random(seed)
        for _ in range(120):
            n = rng.randint(2, 8)
            m = BddManager(n)
            on, dc, _, _ = _random_pair(rng, m, n)
            bound = rng.sample(range(n), rng.randint(1, n - 1)) if n > 1 else [0]
            got = bitops.try_syntactic_count(m, on, dc, bound)
            on_parts = m.cofactor_enumerate(on, list(bound))
            dc_parts = m.cofactor_enumerate(dc, list(bound))
            assert got == len(set(zip(on_parts, dc_parts)))

    def test_merged_count_matches_compute_classes(self):
        seed = resolve_seed(1105, "bitops_merged")
        rng = random.Random(seed)
        for _ in range(120):
            n = rng.randint(3, 8)
            m = BddManager(n)
            on, dc, _, _ = _random_pair(rng, m, n)
            if dc == FALSE:
                continue
            bound = rng.sample(range(n), rng.randint(1, n - 1))
            ref = compute_classes(
                m, on, list(bound), dc, True, fast_path="bdd"
            ).num_classes
            assert bitops.try_merged_count(m, on, dc, bound) == ref

    def test_assign_dontcares_identical_across_modes(self):
        seed = resolve_seed(1106, "bitops_dontcares")
        rng = random.Random(seed)
        for _ in range(60):
            n = rng.randint(3, 7)
            bound = rng.sample(range(n), rng.randint(1, n - 1))
            nbits = 1 << n
            on_tt = rng.getrandbits(nbits)
            dc_tt = rng.getrandbits(nbits) & ~on_tt
            shaped = {}
            for mode in ("bdd", "auto", "bitpack"):
                m = BddManager(n)
                on = m.from_truth_table(on_tt, list(range(n)))
                dc = m.from_truth_table(dc_tt, list(range(n)))
                c = compute_classes(m, on, list(bound), dc, True, fast_path=mode)
                shaped[mode] = (
                    c.num_classes,
                    tuple(c.class_of_position),
                    tuple(
                        (
                            m.to_truth_table(f.on, list(range(n))),
                            m.to_truth_table(f.dc, list(range(n))),
                        )
                        for f in c.class_functions
                    ),
                )
            assert shaped["bdd"] == shaped["auto"] == shaped["bitpack"]

    def test_wide_support_falls_back(self):
        n = bitops.DEFAULT_MAX_WIDTH + 1
        m = BddManager(n)
        f = m.var_at_level(0)
        for lv in range(1, n):
            f = m.apply_xor(f, m.var_at_level(lv))
        before = m.perf.fastpath_fallbacks
        assert bitops.try_syntactic_count(m, f, FALSE, [0, 1]) is None
        assert m.perf.fastpath_fallbacks == before + 1
        # count_classes still answers through the BDD path.
        assert count_classes(m, f, [0, 1], FALSE) == 2

    def test_global_memo_survives_managers(self):
        bitops.clear_global_memo()
        tt = 0b1011010011001010
        counts = []
        for _ in range(2):
            m = BddManager(4)
            f = m.from_truth_table(tt, [0, 1, 2, 3])
            pair = bitops.pack_pair(m, f, FALSE, [0, 1, 2, 3])
            search = bitops.PackedSearch(pair, m.perf)
            counts.append(search.count_bound([0, 1]))
        assert counts[0] == counts[1]
        stats = bitops.global_memo_stats()
        assert stats["hits"] >= 1  # second manager reused the first's count


class TestDifferentialNetworks:
    """Packed vs BDD across >= 200 seed-stamped random networks."""

    @pytest.mark.parametrize("seed_base", [2000, 2050, 2100, 2150])
    def test_select_bound_set_identical_across_modes(self, seed_base):
        for seed in range(seed_base, seed_base + 50):
            net = random_network(seed)
            gb = GlobalBdds(net)
            manager = gb.manager
            rng = random.Random(seed)
            for out in net.output_names[:2]:
                on = gb.of_output(out)
                support = sorted(manager.support(on))
                if len(support) < 3:
                    continue
                bound_size = rng.randint(2, len(support) - 1)
                picks = {}
                for mode in ("bdd", "auto", "bitpack"):
                    for use_oracle in (False, True):
                        vp = select_bound_set(
                            manager,
                            on,
                            support,
                            bound_size,
                            use_oracle=use_oracle,
                            oracle=None,
                            fast_path=mode,
                        )
                        picks[(mode, use_oracle)] = (
                            vp.bound_levels,
                            vp.free_levels,
                            vp.num_classes,
                        )
                assert len(set(picks.values())) == 1, (
                    f"seed {seed} output {out}: modes disagree: {picks}"
                )


class TestOracleBypass:
    def test_narrow_support_bypasses_oracle(self):
        m = BddManager(4)
        f = m.from_truth_table(0b1011010011001010, [0, 1, 2, 3])
        before = m.perf.oracle_bypasses
        vp = select_bound_set(
            m, f, [0, 1, 2, 3], 2, use_oracle=True, oracle_min_support=10
        )
        assert m.perf.oracle_bypasses == before + 1
        # Bypassed result equals the oracle-assisted one.
        vp_oracle = select_bound_set(
            m, f, [0, 1, 2, 3], 2, use_oracle=True, oracle_min_support=0
        )
        assert (vp.bound_levels, vp.num_classes) == (
            vp_oracle.bound_levels,
            vp_oracle.num_classes,
        )

    def test_wide_support_keeps_oracle(self):
        m = BddManager(12)
        f = m.var_at_level(0)
        for lv in range(1, 12):
            f = m.apply_xor(f, m.var_at_level(lv))
        before = m.perf.oracle_bypasses
        select_bound_set(
            m, f, list(range(12)), 3, use_oracle=True, oracle_min_support=10
        )
        assert m.perf.oracle_bypasses == before


class TestAutoSerial:
    def test_small_batch_goes_serial(self):
        from repro.circuits import build
        from repro.network.transform import extract_cone
        from repro.decompose import DecompositionOptions
        from repro.mapping.parallel import GroupTask, run_group_tasks
        from repro.network import to_blif

        net = build("misex1")
        tasks = []
        for gi, out in enumerate(net.output_names[:3]):
            cone = extract_cone(net, [out])
            tasks.append(
                GroupTask(
                    blif_text=to_blif(cone),
                    group=[out],
                    gi=gi,
                    options=DecompositionOptions(k=5),
                    base_name=f"as{gi}",
                )
            )
        results, report = run_group_tasks(tasks, jobs=2)
        assert len(results) == 3
        assert report.jobs_used == 1
        assert report.pool_fallback is not None
        assert report.pool_fallback.startswith("auto_serial")
        decision = report.details["auto_serial"]
        assert decision["serial"] is True
        assert decision["estimated_savings"] < decision["pool_setup_seconds"]

    def test_estimator_scales_with_width(self):
        from repro.decompose import DecompositionOptions
        from repro.mapping.parallel import (
            GroupTask,
            _auto_serial_decision,
            _estimate_task_seconds,
        )

        def task(inputs, nodes):
            lines = [".model t", ".inputs " + " ".join(
                f"i{j}" for j in range(inputs)
            ), ".outputs o"]
            for j in range(nodes):
                lines.append(f".names i0 i1 n{j}")
                lines.append("11 1")
            return GroupTask(
                blif_text="\n".join(lines),
                group=["o"],
                gi=0,
                options=DecompositionOptions(k=5),
            )

        narrow = _estimate_task_seconds(task(6, 20))
        wide = _estimate_task_seconds(task(20, 20))
        assert wide > narrow * 10
        serial, record = _auto_serial_decision([task(6, 5)] * 2, jobs=2)
        assert serial and record["serial"]
        big, record = _auto_serial_decision([task(22, 60)] * 4, jobs=4)
        assert not big and not record["serial"]
