"""Tests for technology-independent common-sublogic extraction."""

from __future__ import annotations

import pytest

from repro.circuits import build, popcount
from repro.mapping import extract_common_sublogic
from repro.network import check_equivalence


class TestExtractCommonSublogic:
    def test_preserves_function(self):
        net = build("rd73")
        report = extract_common_sublogic(net, k=6)
        assert check_equivalence(report.network, net) is None

    def test_reports_sharing(self):
        net = popcount(8, "pc8")
        report = extract_common_sublogic(net, k=6)
        assert len(report.groups) >= 1
        assert len(report.shared_nodes_per_group) == len(report.groups)
        assert report.total_nodes_after == report.network.num_nodes

    def test_grouping_covers_outputs(self):
        net = build("z4ml")
        report = extract_common_sublogic(net, k=6)
        grouped = sorted(o for g in report.groups for o in g)
        assert grouped == sorted(net.output_names)

    def test_broken_rewrite_detected(self):
        # verify=True is the default; with verify=False a corrupted
        # result must be caught by an external check.
        net = build("rd73")
        report = extract_common_sublogic(net, k=6, verify=False)
        assert check_equivalence(report.network, net) is None
