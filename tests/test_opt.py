"""Tests for the algebraic optimisation package (SOP covers, kernels,
division, factoring, network-level extraction)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence
from repro.opt import (
    algebraic_script,
    common_cube,
    cover_divide,
    cover_from_table,
    cover_literals,
    cube_divide,
    cube_to_str,
    extract_kernels,
    factor_node,
    is_cube_free,
    kernels,
    make_cube_free,
    table_from_cover,
)

tables = st.builds(
    TruthTable,
    st.just(4),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
)


def C(*lits):
    """Cube literal helper: C((0,1),(2,0)) etc."""
    return frozenset(lits)


class TestCovers:
    @given(tables)
    @settings(max_examples=50, deadline=None)
    def test_cover_round_trip(self, table):
        cover = cover_from_table(table)
        assert table_from_cover(cover, table.num_inputs).mask == table.mask

    def test_constant_covers(self):
        assert cover_from_table(TruthTable.constant(0, 1)) == [frozenset()]
        assert cover_from_table(TruthTable.constant(0, 0)) == []

    def test_cover_literals(self):
        cover = [C((0, 1), (1, 1)), C((2, 0))]
        assert cover_literals(cover) == 3

    def test_cube_to_str(self):
        assert cube_to_str(C((0, 1), (1, 0)), ["a", "b"]) == "a b'"
        assert cube_to_str(frozenset()) == "1"


class TestDivision:
    def test_cube_divide(self):
        assert cube_divide(C((0, 1), (1, 1)), C((0, 1))) == C((1, 1))
        assert cube_divide(C((0, 1)), C((1, 1))) is None

    def test_cover_divide_exact(self):
        # (ab + ac) / (b + c) = a, remainder empty.
        f = [C((0, 1), (1, 1)), C((0, 1), (2, 1))]
        d = [C((1, 1)), C((2, 1))]
        q, r = cover_divide(f, d)
        assert q == [C((0, 1))]
        assert r == []

    def test_cover_divide_remainder(self):
        # (ab + ac + d) / (b + c) = a, remainder d.
        f = [C((0, 1), (1, 1)), C((0, 1), (2, 1)), C((3, 1))]
        d = [C((1, 1)), C((2, 1))]
        q, r = cover_divide(f, d)
        assert q == [C((0, 1))]
        assert r == [C((3, 1))]

    def test_non_divisor(self):
        f = [C((0, 1), (1, 1))]
        d = [C((2, 1))]
        q, r = cover_divide(f, d)
        assert q == [] and r == f

    @given(tables, tables)
    @settings(max_examples=40, deadline=None)
    def test_division_identity(self, t_f, t_d):
        # f == q*d + r as functions, whenever q is non-empty.
        f = cover_from_table(t_f)
        d = cover_from_table(t_d)
        if not d or not f:
            return
        q, r = cover_divide(f, d)
        product = [qc | dc for qc in q for dc in d]
        rebuilt = table_from_cover(product + r, 4)
        assert rebuilt.mask == t_f.mask


class TestKernels:
    def test_common_cube(self):
        cover = [C((0, 1), (1, 1)), C((0, 1), (2, 1))]
        assert common_cube(cover) == C((0, 1))
        free, cube = make_cube_free(cover)
        assert cube == C((0, 1))
        assert is_cube_free(free)

    def test_textbook_kernels(self):
        # f = ab + ac + bd: kernels {b+c} (cokernel a), {a+d} (cokernel b),
        # and the cover itself (cube-free).
        t = TruthTable.from_function(
            4, lambda a, b, c, d: (a & b) | (a & c) | (b & d)
        )
        cover = cover_from_table(t)
        found = {
            tuple(sorted(tuple(sorted(c)) for c in k.kernel))
            for k in kernels(cover)
        }
        b_plus_c = tuple(sorted([((1, 1),), ((2, 1),)]))
        a_plus_d = tuple(sorted([((0, 1),), ((3, 1),)]))
        assert b_plus_c in found
        assert a_plus_d in found

    def test_kernels_are_cube_free(self):
        rng = random.Random(2)
        for _ in range(10):
            t = TruthTable(5, rng.getrandbits(32))
            cover = cover_from_table(t)
            for entry in kernels(cover):
                assert is_cube_free(entry.kernel)

    def test_single_cube_has_no_kernels(self):
        cover = [C((0, 1), (1, 1), (2, 1))]
        assert kernels(cover) == []


class TestNetworkPasses:
    def test_factor_node(self):
        t = TruthTable.from_function(
            5, lambda a, b, c, d, e: (a & b & c) | (a & b & d) | (a & b & e)
        )
        net = Network("f")
        for pi in "abcde":
            net.add_input(pi)
        net.add_node("f", list("abcde"), t)
        net.add_output("f")
        before = net.copy()
        assert factor_node(net, "f")
        assert check_equivalence(net, before) is None
        assert net.num_nodes == 2

    def test_factor_node_no_gain(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        net = Network("x")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", ["a", "b"], t)
        net.add_output("f")
        assert not factor_node(net, "f")

    def test_extract_shared_kernel(self):
        net = Network("shared")
        for pi in "abcd":
            net.add_input(pi)
        t1 = TruthTable.from_function(3, lambda a, b, c: (a & b) | (a & c))
        t2 = TruthTable.from_function(3, lambda d, b, c: (d & b) | (d & c))
        net.add_node("f", ["a", "b", "c"], t1)
        net.add_node("g", ["d", "b", "c"], t2)
        net.add_output("f")
        net.add_output("g")
        before = net.copy()
        assert extract_kernels(net) >= 1
        assert check_equivalence(net, before) is None
        # The shared (b + c) kernel should now be a single node feeding both.
        kernel_nodes = [
            n.name for n in net.nodes()
            if n.name not in ("f", "g")
        ]
        assert kernel_nodes

    def test_algebraic_script_preserves_function(self):
        rng = random.Random(4)
        net = Network("rand")
        sigs = [net.add_input(f"i{j}") for j in range(6)]
        for n in range(8):
            fanins = rng.sample(sigs, 4)
            net.add_node(f"n{n}", fanins, TruthTable(4, rng.getrandbits(16)))
            sigs.append(f"n{n}")
        for j in (9, 11, 13):
            net.add_output(sigs[j], f"o{j}")
        before = net.copy()
        algebraic_script(net)
        assert check_equivalence(net, before) is None


class TestStructuralFlow:
    def test_map_structural(self):
        from repro.circuits import build
        from repro.mapping import map_structural
        from repro.network import is_k_feasible

        result = map_structural(build("count"), k=5)
        assert is_k_feasible(result.network, 5)
        assert result.lut_count > 0

    def test_map_structural_no_preopt(self):
        from repro.circuits import build
        from repro.mapping import map_structural

        result = map_structural(build("z4ml"), k=5, preoptimize=False)
        assert result.flow == "structural"
