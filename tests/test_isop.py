"""Tests for the Minato-Morreale ISOP extraction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager
from repro.bdd.isop import cube_count, cubes_to_bdd, isop, literal_count

N = 5
TABLE_BITS = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


class TestIsop:
    @given(TABLE_BITS)
    @settings(max_examples=60, deadline=None)
    def test_exact_cover(self, bits):
        m = BddManager(N)
        f = m.from_truth_table(bits, list(range(N)))
        assert cubes_to_bdd(m, isop(m, f, f)) == f

    @given(TABLE_BITS, TABLE_BITS)
    @settings(max_examples=40, deadline=None)
    def test_interval_cover(self, bits_a, bits_b):
        m = BddManager(N)
        f = m.from_truth_table(bits_a, list(range(N)))
        g = m.from_truth_table(bits_b, list(range(N)))
        lower, upper = m.apply_and(f, g), m.apply_or(f, g)
        cover = cubes_to_bdd(m, isop(m, lower, upper))
        assert m.apply_diff(lower, cover) == FALSE
        assert m.apply_diff(cover, upper) == FALSE

    def test_constants(self):
        m = BddManager(2)
        assert isop(m, FALSE, FALSE) == []
        assert isop(m, TRUE, TRUE) == [{}]

    def test_invalid_interval(self):
        m = BddManager(2)
        a = m.var_at_level(0)
        with pytest.raises(ValueError):
            isop(m, a, FALSE)

    def test_single_cube(self):
        m = BddManager(3)
        f = m.apply_and(m.var_at_level(0), m.apply_not(m.var_at_level(2)))
        cubes = isop(m, f, f)
        assert cubes == [{0: 1, 2: 0}]
        assert cube_count(m, f) == 1
        assert literal_count(m, f) == 2

    def test_parity_needs_all_minterms(self):
        m = BddManager(4)
        f = m.var_at_level(0)
        for lv in range(1, 4):
            f = m.apply_xor(f, m.var_at_level(lv))
        # Parity has no mergeable cubes: 8 minterms, 8 cubes.
        assert cube_count(m, f) == 8

    def test_dc_reduces_cubes(self):
        m = BddManager(3)
        a, b, c = (m.var_at_level(i) for i in range(3))
        on = m.apply_and(m.apply_and(a, b), c)
        upper = m.apply_and(a, b)  # don't care when c = 0
        assert cube_count(m, on) == 1
        cubes = isop(m, on, upper)
        assert len(cubes) == 1
        assert len(cubes[0]) == 2  # literal c dropped via the interval

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_irredundant(self, bits):
        m = BddManager(N)
        f = m.from_truth_table(bits, list(range(N)))
        cubes = isop(m, f, f)
        # Dropping any cube must break the cover.
        for skip in range(len(cubes)):
            rest = cubes[:skip] + cubes[skip + 1 :]
            if cubes_to_bdd(m, rest) == f:
                pytest.fail(f"cube {skip} is redundant")


class TestCubesPolicy:
    def test_decomposition_with_cubes_policy(self):
        import random as _random
        from repro.boolfunc import TruthTable
        from repro.decompose import DecompositionOptions, decompose_to_network
        from repro.network import Network, check_equivalence

        bits = _random.Random(5).getrandbits(1 << 7)
        m = BddManager(7)
        f = m.from_truth_table(bits, list(range(7)))
        net = Network("c")
        for j in range(7):
            net.add_input(f"i{j}")
        root = decompose_to_network(
            m, f, net, {j: f"i{j}" for j in range(7)},
            DecompositionOptions(k=5, encoding_policy="cubes"),
        )
        net.add_output(root, "f")
        ref = Network("r")
        for j in range(7):
            ref.add_input(f"i{j}")
        ref.add_node("F", [f"i{j}" for j in range(7)], TruthTable(7, bits))
        ref.add_output("F", "f")
        assert check_equivalence(net, ref) is None
