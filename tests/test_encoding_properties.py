"""Property-based tests of the chart encoder over random inputs.

These complement the Example-3.2 tests with hypothesis-driven coverage:
whatever the class functions look like, the encoder must return a strict
injective encoding whose image function realises f, and the row/column
machinery must produce structurally legal charts.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, BddManager, build_cube
from repro.decompose import (
    Partition,
    combine_column_sets,
    combine_row_sets,
    compute_classes,
    encode_classes,
    pack_chart,
)

partition_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4)
    .map(lambda xs: Partition(tuple(xs))),
    min_size=3,
    max_size=10,
)


class TestColumnSetProperties:
    @given(partition_lists)
    @settings(max_examples=30, deadline=None)
    def test_column_sets_partition_classes(self, partitions):
        result = combine_column_sets(partitions, num_rows=4)
        flat = sorted(c for s in result.column_sets for c in s)
        assert flat == list(range(len(partitions)))

    @given(partition_lists)
    @settings(max_examples=30, deadline=None)
    def test_capacity_respected(self, partitions):
        result = combine_column_sets(partitions, num_rows=4)
        assert all(len(s) <= 4 for s in result.column_sets)


class TestRowSetProperties:
    @given(partition_lists)
    @settings(max_examples=20, deadline=None)
    def test_row_sets_cover_or_fail(self, partitions):
        n = len(partitions)
        num_rows = max(2, 1 << max(1, (n - 1).bit_length() - 1) >> 1)
        num_rows = 4
        num_cols = 4
        if n > num_rows * num_cols:
            return
        col_result = combine_column_sets(partitions, num_rows)
        rows = combine_row_sets(partitions, col_result, num_rows, num_cols)
        if rows is None:
            return  # legitimate fallback
        row_sets, column_set_of_class = rows
        assert sorted(c for r in row_sets for c in r) == list(range(n))
        assert len(row_sets) <= num_rows
        sizes = {}
        for cls, cs in column_set_of_class.items():
            sizes[cs] = sizes.get(cs, 0) + 1
        chart = pack_chart(row_sets, column_set_of_class, sizes,
                           num_rows, num_cols)
        if chart is not None:
            assert sorted(chart.placed_classes()) == list(range(n))


class TestChartInvariants:
    """The chart invariants as explicit properties over 200 seeded random
    partition lists (not hypothesis: the seeds double as a fixed corpus,
    replayable one at a time by inlining ``random.Random(seed)``).

    For every partition list that packs into a #R x #C chart:

    * every class occupies exactly one cell (strict encoding),
    * ``position_of`` round-trips to the cell holding the class,
    * all class codes are distinct and fit in
      ceil(log2 #R) + ceil(log2 #C) bits.

    Partition lists that fall back to the random encoding (row merging
    did not converge) are counted but not judged — the fallback is a
    legitimate outcome, the paper's Step 7 escape hatch.
    """

    NUM_SEEDS = 200
    NUM_ROWS = 4
    NUM_COLS = 4

    @staticmethod
    def _random_partitions(seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        return [
            Partition(tuple(rng.randrange(6) for _ in range(4)))
            for _ in range(n)
        ]

    def _packed_chart(self, partitions):
        col_result = combine_column_sets(partitions, self.NUM_ROWS)
        rows = combine_row_sets(
            partitions, col_result, self.NUM_ROWS, self.NUM_COLS
        )
        if rows is None:
            return None
        row_sets, column_set_of_class = rows
        sizes = {}
        for cs in column_set_of_class.values():
            sizes[cs] = sizes.get(cs, 0) + 1
        return pack_chart(
            row_sets, column_set_of_class, sizes,
            self.NUM_ROWS, self.NUM_COLS,
        )

    def test_chart_invariants_over_seeded_partitions(self):
        row_bits = max(1, math.ceil(math.log2(self.NUM_ROWS)))
        col_bits = max(1, math.ceil(math.log2(self.NUM_COLS)))
        col_alpha = list(range(col_bits))
        row_alpha = list(range(col_bits, col_bits + row_bits))

        packed = 0
        for seed in range(self.NUM_SEEDS):
            partitions = self._random_partitions(seed)
            chart = self._packed_chart(partitions)
            if chart is None:
                continue
            packed += 1
            n = len(partitions)

            # Strictness: each class in exactly one cell, nothing extra.
            placed = chart.placed_classes()
            assert sorted(placed) == list(range(n)), f"seed {seed}"
            assert len(placed) == len(set(placed)), f"seed {seed}"

            # position_of round-trips through the grid.
            for cls in range(n):
                r, c = chart.position_of(cls)
                assert 0 <= r < self.NUM_ROWS, f"seed {seed}"
                assert 0 <= c < self.NUM_COLS, f"seed {seed}"
                assert chart.cells[r][c] == cls, f"seed {seed}"

            # Codes: distinct, and exactly the budgeted bit width.
            codes = chart.codes(n, col_alpha, row_alpha)
            keyed = {tuple(sorted(code.items())) for code in codes}
            assert len(keyed) == n, f"seed {seed}: codes collide"
            for cls, code in enumerate(codes):
                assert len(code) == row_bits + col_bits, f"seed {seed}"
                assert set(code.values()) <= {0, 1}, f"seed {seed}"
                # Decoding the bits lands back on the class's cell.
                col = sum(code[a] << j for j, a in enumerate(col_alpha))
                row = sum(code[a] << j for j, a in enumerate(row_alpha))
                assert (row, col) == chart.position_of(cls), f"seed {seed}"

        # The corpus must exercise the chart path broadly, not only the
        # random-encoding fallback (143/200 pack at these parameters).
        assert packed >= 120, f"only {packed} seeds packed a chart"


class TestEncoderProperties:
    @given(st.integers(min_value=0, max_value=(1 << (1 << 7)) - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_functions_round_trip(self, bits):
        m = BddManager(7)
        f = m.from_truth_table(bits, list(range(7)))
        support = m.support(f)
        if len(support) < 6:
            return
        bound = support[:4]
        classes = compute_classes(m, f, bound)
        n = classes.num_classes
        if n < 2:
            return
        t = max(1, math.ceil(math.log2(n)))
        alpha = []
        for _ in range(t):
            m.add_var()
            alpha.append(m.num_vars - 1)
        result = encode_classes(m, classes.class_functions, alpha, k=4)

        # Strictness: injective codes.
        seen = {tuple(sorted(c.items())) for c in result.codes}
        assert len(seen) == n

        # Semantics: g(alpha(x), y) == f(x, y).
        rebuilt = FALSE
        for position, cls in enumerate(classes.class_of_position):
            cube = build_cube(
                m, {lv: (position >> j) & 1 for j, lv in enumerate(bound)}
            )
            g_slice = m.restrict(
                result.image.on,
                {alpha[j]: bit for j, bit in result.codes[cls].items()},
            )
            rebuilt = m.apply_or(rebuilt, m.apply_and(cube, g_slice))
        assert rebuilt == f

        # Step 8 guarantee: the returned encoding never loses to random.
        if (
            result.image_classes_chart is not None
            and result.image_classes_random is not None
            and result.policy_used == "chart"
        ):
            assert result.image_classes_chart <= result.image_classes_random
