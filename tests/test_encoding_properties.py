"""Property-based tests of the chart encoder over random inputs.

These complement the Example-3.2 tests with hypothesis-driven coverage:
whatever the class functions look like, the encoder must return a strict
injective encoding whose image function realises f, and the row/column
machinery must produce structurally legal charts.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, BddManager, build_cube
from repro.decompose import (
    Partition,
    combine_column_sets,
    combine_row_sets,
    compute_classes,
    encode_classes,
    pack_chart,
)

partition_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4)
    .map(lambda xs: Partition(tuple(xs))),
    min_size=3,
    max_size=10,
)


class TestColumnSetProperties:
    @given(partition_lists)
    @settings(max_examples=30, deadline=None)
    def test_column_sets_partition_classes(self, partitions):
        result = combine_column_sets(partitions, num_rows=4)
        flat = sorted(c for s in result.column_sets for c in s)
        assert flat == list(range(len(partitions)))

    @given(partition_lists)
    @settings(max_examples=30, deadline=None)
    def test_capacity_respected(self, partitions):
        result = combine_column_sets(partitions, num_rows=4)
        assert all(len(s) <= 4 for s in result.column_sets)


class TestRowSetProperties:
    @given(partition_lists)
    @settings(max_examples=20, deadline=None)
    def test_row_sets_cover_or_fail(self, partitions):
        n = len(partitions)
        num_rows = max(2, 1 << max(1, (n - 1).bit_length() - 1) >> 1)
        num_rows = 4
        num_cols = 4
        if n > num_rows * num_cols:
            return
        col_result = combine_column_sets(partitions, num_rows)
        rows = combine_row_sets(partitions, col_result, num_rows, num_cols)
        if rows is None:
            return  # legitimate fallback
        row_sets, column_set_of_class = rows
        assert sorted(c for r in row_sets for c in r) == list(range(n))
        assert len(row_sets) <= num_rows
        sizes = {}
        for cls, cs in column_set_of_class.items():
            sizes[cs] = sizes.get(cs, 0) + 1
        chart = pack_chart(row_sets, column_set_of_class, sizes,
                           num_rows, num_cols)
        if chart is not None:
            assert sorted(chart.placed_classes()) == list(range(n))


class TestEncoderProperties:
    @given(st.integers(min_value=0, max_value=(1 << (1 << 7)) - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_functions_round_trip(self, bits):
        m = BddManager(7)
        f = m.from_truth_table(bits, list(range(7)))
        support = m.support(f)
        if len(support) < 6:
            return
        bound = support[:4]
        classes = compute_classes(m, f, bound)
        n = classes.num_classes
        if n < 2:
            return
        t = max(1, math.ceil(math.log2(n)))
        alpha = []
        for _ in range(t):
            m.add_var()
            alpha.append(m.num_vars - 1)
        result = encode_classes(m, classes.class_functions, alpha, k=4)

        # Strictness: injective codes.
        seen = {tuple(sorted(c.items())) for c in result.codes}
        assert len(seen) == n

        # Semantics: g(alpha(x), y) == f(x, y).
        rebuilt = FALSE
        for position, cls in enumerate(classes.class_of_position):
            cube = build_cube(
                m, {lv: (position >> j) & 1 for j, lv in enumerate(bound)}
            )
            g_slice = m.restrict(
                result.image.on,
                {alpha[j]: bit for j, bit in result.codes[cls].items()},
            )
            rebuilt = m.apply_or(rebuilt, m.apply_and(cube, g_slice))
        assert rebuilt == f

        # Step 8 guarantee: the returned encoding never loses to random.
        if (
            result.image_classes_chart is not None
            and result.image_classes_random is not None
            and result.policy_used == "chart"
        ):
            assert result.image_classes_chart <= result.image_classes_random
