"""Fuzz round-trips: random networks through BLIF/PLA serialisation.

Plus structured-error tests: :class:`~repro.network.BlifError` must
carry the offending line number for every malformed-input class, and the
checkpoint journal's replay validation must reject corrupt fragments
built from those same malformed shapes.
"""

from __future__ import annotations

import random

import pytest

from repro.boolfunc import TruthTable
from repro.network import (
    BlifError,
    Network,
    check_equivalence,
    collapse_network,
    parse_blif,
    parse_pla,
    to_blif,
    to_pla,
)


def random_network(seed: int) -> Network:
    rng = random.Random(seed)
    net = Network(f"fuzz{seed}")
    signals = [net.add_input(f"in{j}") for j in range(rng.randint(2, 6))]
    for n in range(rng.randint(1, 12)):
        arity = rng.randint(1, min(4, len(signals)))
        fanins = rng.sample(signals, arity)
        mask = rng.getrandbits(1 << arity)
        net.add_node(f"node{n}", fanins, TruthTable(arity, mask))
        signals.append(f"node{n}")
    candidates = [s for s in signals if not net.is_input(s)]
    for i, driver in enumerate(
        rng.sample(candidates, min(3, len(candidates)))
    ):
        net.add_output(driver, f"out{i}")
    return net


@pytest.mark.parametrize("seed", range(25))
def test_blif_round_trip_fuzz(seed):
    net = random_network(seed)
    again = parse_blif(to_blif(net))
    assert check_equivalence(net, again) is None


@pytest.mark.parametrize("seed", range(10))
def test_pla_round_trip_fuzz(seed):
    net = random_network(seed + 50)
    flat = collapse_network(net)
    again = parse_pla(to_pla(flat))
    assert check_equivalence(flat, again) is None


class TestBlifErrors:
    """Malformed BLIF raises BlifError with the offending line number."""

    def parse_error(self, text: str) -> BlifError:
        with pytest.raises(BlifError) as err:
            parse_blif(text)
        return err.value

    def test_undefined_signal_cites_the_names_line(self):
        error = self.parse_error(
            ".model m\n.inputs a\n.outputs f\n"
            ".names a ghost f\n11 1\n.end\n"
        )
        assert error.line == 4
        assert "ghost" in error.reason
        assert str(error).startswith("line 4:")

    def test_duplicate_model_cites_both_lines(self):
        error = self.parse_error(
            ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n"
            ".model again\n.end\n"
        )
        assert error.line == 6
        assert "line 1" in error.reason  # points back at the first .model

    def test_duplicate_outputs_directive(self):
        error = self.parse_error(
            ".model m\n.inputs a\n.outputs f\n.outputs g\n"
            ".names a f\n1 1\n.end\n"
        )
        assert error.line == 4

    def test_missing_end_is_truncation(self):
        error = self.parse_error(
            ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n"
        )
        assert error.line is None
        assert "no .end" in error.reason

    def test_malformed_cube_cites_its_line(self):
        error = self.parse_error(
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n"
        )
        assert error.line == 5

    def test_cube_outside_names_cites_its_line(self):
        error = self.parse_error(".model m\n.inputs a\n.outputs a\n1 1\n.end\n")
        assert error.line == 4

    def test_undriven_output_cites_the_outputs_line(self):
        error = self.parse_error(".model m\n.inputs a\n.outputs f\n.end\n")
        assert error.line == 3
        assert "f" in error.reason

    def test_blif_error_is_a_value_error(self):
        # Existing recovery paths catch ValueError; the structured
        # subclass must keep flowing through them.
        assert issubclass(BlifError, ValueError)


class TestJournalRejectsCorruptFragments:
    """A journaled fragment with any malformed shape is never replayed."""

    FRAGMENT = ".model frag\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n"

    CORRUPTIONS = {
        "truncated_no_end": FRAGMENT.replace(".end\n", ""),
        "undefined_signal": FRAGMENT.replace(".names a b f", ".names a ghost f"),
        "unsupported_construct": FRAGMENT.replace(
            ".names", ".latch torn q 0\n.names"
        ),
        "torn_mid_cube": FRAGMENT[: FRAGMENT.index("11 1") + 2],
    }

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_replay_rejects(self, name):
        from repro.decompose import DecompositionOptions
        from repro.mapping.parallel import GroupTask, _replay_result

        task = GroupTask(
            blif_text=self.FRAGMENT,
            group=["f"],
            gi=0,
            options=DecompositionOptions(),
        )
        assert _replay_result(task, {"blif": self.CORRUPTIONS[name]}) is None
        # The intact fragment, by contrast, replays fine.
        assert _replay_result(task, {"blif": self.FRAGMENT}) is not None


def test_manager_stats():
    from repro.bdd import BddManager

    m = BddManager(4)
    f = m.apply_and(m.var_at_level(0), m.var_at_level(1))
    m.cofactor(f, 0, 1)
    stats = m.stats()
    assert stats["num_vars"] == 4
    assert stats["num_nodes"] >= 4
    assert stats["apply_cache"] >= 1
    m.clear_caches()
    assert m.stats()["apply_cache"] == 0
