"""Fuzz round-trips: random networks through BLIF/PLA serialisation."""

from __future__ import annotations

import random

import pytest

from repro.boolfunc import TruthTable
from repro.network import (
    Network,
    check_equivalence,
    collapse_network,
    parse_blif,
    parse_pla,
    to_blif,
    to_pla,
)


def random_network(seed: int) -> Network:
    rng = random.Random(seed)
    net = Network(f"fuzz{seed}")
    signals = [net.add_input(f"in{j}") for j in range(rng.randint(2, 6))]
    for n in range(rng.randint(1, 12)):
        arity = rng.randint(1, min(4, len(signals)))
        fanins = rng.sample(signals, arity)
        mask = rng.getrandbits(1 << arity)
        net.add_node(f"node{n}", fanins, TruthTable(arity, mask))
        signals.append(f"node{n}")
    candidates = [s for s in signals if not net.is_input(s)]
    for i, driver in enumerate(
        rng.sample(candidates, min(3, len(candidates)))
    ):
        net.add_output(driver, f"out{i}")
    return net


@pytest.mark.parametrize("seed", range(25))
def test_blif_round_trip_fuzz(seed):
    net = random_network(seed)
    again = parse_blif(to_blif(net))
    assert check_equivalence(net, again) is None


@pytest.mark.parametrize("seed", range(10))
def test_pla_round_trip_fuzz(seed):
    net = random_network(seed + 50)
    flat = collapse_network(net)
    again = parse_pla(to_pla(flat))
    assert check_equivalence(flat, again) is None


def test_manager_stats():
    from repro.bdd import BddManager

    m = BddManager(4)
    f = m.apply_and(m.var_at_level(0), m.var_at_level(1))
    m.cofactor(f, 0, 1)
    stats = m.stats()
    assert stats["num_vars"] == 4
    assert stats["num_nodes"] >= 4
    assert stats["apply_cache"] >= 1
    m.clear_caches()
    assert m.stats()["apply_cache"] == 0
