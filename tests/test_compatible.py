"""Tests for compatible class computation (paper Definition 2.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager
from repro.decompose import compute_classes, count_classes, enumerate_columns

N = 6
TABLE_BITS = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


def make(bits: int):
    m = BddManager(N)
    return m, m.from_truth_table(bits, list(range(N)))


class TestEnumerateColumns:
    def test_column_count(self):
        m, f = make(0xDEADBEEF_CAFEF00D)
        cols = enumerate_columns(m, f, [0, 1, 2])
        assert len(cols) == 8

    def test_columns_are_cofactors(self):
        m, f = make(0x0123456789ABCDEF)
        cols = enumerate_columns(m, f, [1, 4])
        for index, col in enumerate(cols):
            expected = m.restrict(f, {1: index & 1, 4: (index >> 1) & 1})
            assert col.on == expected
            assert col.dc == FALSE


class TestComputeClasses:
    def test_parity_two_classes(self):
        m = BddManager(N)
        f = m.var_at_level(0)
        for lv in range(1, N):
            f = m.apply_xor(f, m.var_at_level(lv))
        classes = compute_classes(m, f, [0, 1, 2])
        assert classes.num_classes == 2
        # Positions with even popcount share a class.
        for p in range(8):
            same = classes.class_of_position[p] == classes.class_of_position[0]
            assert same == (bin(p).count("1") % 2 == 0)

    def test_and_function(self):
        m = BddManager(N)
        f = TRUE
        for lv in range(N):
            f = m.apply_and(f, m.var_at_level(lv))
        classes = compute_classes(m, f, [0, 1, 2])
        # Only the all-ones bound assignment differs from the rest.
        assert classes.num_classes == 2
        assert classes.positions_of_class(classes.class_of_position[7]) == [7]

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_classes_partition_positions(self, bits):
        m, f = make(bits)
        classes = compute_classes(m, f, [0, 2, 4])
        assert len(classes.class_of_position) == 8
        assert set(classes.class_of_position) == set(
            range(classes.num_classes)
        )

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_class_functions_are_distinct(self, bits):
        m, f = make(bits)
        classes = compute_classes(m, f, [1, 3])
        keys = [fc.key for fc in classes.class_functions]
        assert len(keys) == len(set(keys))

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_count_matches_compute(self, bits):
        m, f = make(bits)
        assert count_classes(m, f, [0, 1]) == compute_classes(
            m, f, [0, 1]
        ).num_classes

    def test_partition_of_class(self):
        m = BddManager(4)
        # f = (a & b) | (c & d); bound {a, b}: classes {c&d, TRUE... }
        f = m.apply_or(
            m.apply_and(m.var_at_level(0), m.var_at_level(1)),
            m.apply_and(m.var_at_level(2), m.var_at_level(3)),
        )
        classes = compute_classes(m, f, [0, 1])
        assert classes.num_classes == 2
        # Partition of the c&d class w.r.t. Y1 = {c}: cofactors d-dependent.
        cd_class = classes.class_of_position[0]
        part = classes.partition_of_class(cd_class, [2])
        assert part.num_positions == 2
        assert part.multiplicity == 2  # c=0 -> 0, c=1 -> d


class TestWithDontCares:
    def test_dc_reduces_classes(self):
        m = BddManager(4)
        a, b, c, d = (m.var_at_level(i) for i in range(4))
        # on = a & c; dc = !a & !b (whole columns (a,b)=(0,0) are free).
        on = m.apply_and(a, c)
        dc = m.apply_and(m.apply_not(a), m.apply_not(b))
        with_dc = compute_classes(m, on, [0, 1], dc=dc, use_dontcares=True)
        without = compute_classes(m, on, [0, 1], dc=dc, use_dontcares=False)
        assert with_dc.num_classes <= without.num_classes
        assert with_dc.num_classes == 2  # the free column joins either class

    def test_merged_class_covers_members(self):
        m = BddManager(4)
        a, b, c, d = (m.var_at_level(i) for i in range(4))
        on = m.apply_and(a, c)
        dc = m.apply_and(m.apply_not(a), m.apply_not(b))
        classes = compute_classes(m, on, [0, 1], dc=dc, use_dontcares=True)
        for position, col in enumerate(classes.columns):
            fc = classes.class_functions[classes.class_of_position[position]]
            # Everywhere the member column is ON the class must not be OFF.
            off = m.apply_diff(m.apply_not(fc.on), fc.dc)
            assert m.apply_and(col.on, off) == FALSE
