"""Golden pins for the content-addressed task-key schema.

The journal's ``task_key`` is load-bearing far beyond the journal now:
the service's SQLite result store keys rows by it, so a *silent* change
to the key recipe (hashing a new field, dropping one, reordering the
payload) would strand every persisted cache row — or worse, alias two
different tasks onto one row.  These tests pin the current key bytes
for fixed inputs so any schema drift fails a test instead of shipping
quietly; an intentional change must update the pins *and* bump the
store's schema story (see ``repro.service.store.schema_version``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.circuits import example_4_1_ingredients
from repro.decompose import DecompositionOptions
from repro.mapping.hyde import cluster_outputs
from repro.mapping.parallel import GroupTask
from repro.network import to_blif
from repro.network.globalbdd import GlobalBdds
from repro.network.transform import extract_cone
from repro.runstate.journal import KEY_HEX_LEN, task_key
from repro.service import schema_version
from repro.testing import FaultSpec

# A hand-written cone: nothing upstream (netlist builders, BLIF
# emission) can drift under this pin, so a failure here isolates the
# key *recipe* itself.
LITERAL_CONE = """.model golden_cone
.inputs a b c d
.outputs f g
.names a b c ab
110 1
001 1
.names ab d f
11 1
.names a d g
01 1
10 1
.end
"""

GOLDEN_LITERAL = "a10b6d0b986de83606dcf902f82723d8"
GOLDEN_LITERAL_K4 = "3d136210330b29b727d398d4cc588e68"
GOLDEN_LITERAL_PER_OUTPUT = "d0fa11ae3072fc1de83bf90e771302f2"
GOLDEN_LITERAL_EXACT = "54040d2d35690e6d9b79dd67b421031c"

# The paper-example network's single ingredient-group cone, extracted
# exactly as hyde_map does it.  This pin *does* ride on the netlist
# builder and BLIF emitter — deliberately: those are part of the de
# facto key contract for persisted stores.
GOLDEN_EX41 = "bcf101396f52b92959d0a8839188d895"

#: Digest of the store's key/row schema; drifts when the key recipe,
#: the options dataclass shape, the store format or the exact oracle's
#: payload version changes.
GOLDEN_SCHEMA = "d9d33f21a4d1"


def _literal_task(**overrides) -> GroupTask:
    base = dict(
        blif_text=LITERAL_CONE,
        group=["f", "g"],
        gi=0,
        options=DecompositionOptions(),
    )
    base.update(overrides)
    return GroupTask(**base)


def test_literal_cone_keys_are_pinned():
    assert task_key(_literal_task()) == GOLDEN_LITERAL
    assert (
        task_key(_literal_task(options=DecompositionOptions(k=4)))
        == GOLDEN_LITERAL_K4
    )
    assert (
        task_key(_literal_task(mode="per_output"))
        == GOLDEN_LITERAL_PER_OUTPUT
    )
    assert task_key(_literal_task(mode="exact")) == GOLDEN_LITERAL_EXACT


def test_exact_mode_and_budget_are_content():
    """The exact rung must never share rows with heuristic strategies.

    ``mode="exact"`` and the ``exact_budget_seconds`` option both join
    the key: a fragment computed by the oracle under one budget is not
    the same contract as a heuristic fragment (or an exact one whose
    search had a different time box to prove optimality in).
    """
    base = task_key(_literal_task())
    exact = task_key(_literal_task(mode="exact"))
    assert exact != base
    assert task_key(
        _literal_task(
            mode="exact",
            options=DecompositionOptions(exact_budget_seconds=2.0),
        )
    ) not in (base, exact)


def test_exact_schema_version_feeds_store_digest(monkeypatch):
    """Bumping the NPN-cache payload version must strand service rows.

    ``schema_version`` reads ``EXACT_SCHEMA_VERSION`` at call time, so a
    bump changes the digest and every stored row stamped with the old
    one silently misses (see ``ResultStore.prune_stale``).
    """
    from repro.exact import cache as exact_cache

    assert schema_version() == GOLDEN_SCHEMA
    monkeypatch.setattr(
        exact_cache, "EXACT_SCHEMA_VERSION",
        exact_cache.EXACT_SCHEMA_VERSION + 1,
    )
    assert schema_version() != GOLDEN_SCHEMA


def test_paper_example_cone_key_is_pinned():
    net, k = example_4_1_ingredients()
    gb = GlobalBdds(net)
    manager = gb.manager
    supports = {
        out: [
            manager.name_of(lv)
            for lv in manager.support(gb.of_output(out))
        ]
        for out in net.output_names
    }
    groups = cluster_outputs(supports, 4)
    assert groups == [["f0", "f2", "f3", "f1"]]
    cone = extract_cone(net, groups[0], name=f"{net.name}_g0_cone")
    task = GroupTask(
        blif_text=to_blif(cone),
        group=list(groups[0]),
        gi=0,
        options=DecompositionOptions(k=k),
        base_name=f"{net.name}_g0",
    )
    assert task_key(task) == GOLDEN_EX41


def test_store_schema_version_is_pinned():
    assert schema_version() == GOLDEN_SCHEMA


def test_key_shape():
    key = task_key(_literal_task())
    assert len(key) == KEY_HEX_LEN
    int(key, 16)  # pure hex


def test_key_ignores_run_local_fields():
    """gi / attempt / fault injection / tracing are run-local, not content."""
    base = task_key(_literal_task())
    assert task_key(_literal_task(gi=7)) == base
    assert task_key(_literal_task(attempt=3)) == base
    assert task_key(_literal_task(trace=True)) == base
    assert (
        task_key(_literal_task(inject=FaultSpec(kind="crash"))) == base
    )


def test_key_tracks_content_fields():
    base = task_key(_literal_task())
    assert task_key(_literal_task(group=["g", "f"])) != base
    assert task_key(_literal_task(base_name="other")) != base
    assert task_key(_literal_task(ingredient_policy="greedy")) != base
    assert (
        task_key(
            _literal_task(options=DecompositionOptions(use_dontcares=False))
        )
        != base
    )
    assert (
        task_key(_literal_task(blif_text=LITERAL_CONE + "\n")) != base
    )


def test_every_options_field_feeds_the_key():
    """A new DecompositionOptions field must not silently bypass the key.

    ``task_key`` hashes ``dataclasses.asdict(options)``, so this holds by
    construction today; the test is the tripwire for a refactor that
    switches to an explicit field list and then forgets to extend it.
    """
    import dataclasses

    base = task_key(_literal_task())
    for field in dataclasses.fields(DecompositionOptions):
        current = getattr(DecompositionOptions(), field.name)
        if isinstance(current, bool):
            probe = not current
        elif isinstance(current, (int, float)):
            probe = (current or 0) + 17
        elif isinstance(current, str):
            probe = current + "-probe"
        elif isinstance(current, (tuple, list)):
            probe = type(current)([*current, 3])
        elif current is None:
            probe = 41  # Optional[int]/Optional[float] knobs
        else:  # pragma: no cover - new field type needs a probe
            raise AssertionError(
                f"add a probe for options field {field.name!r} "
                f"({type(current).__name__})"
            )
        options = replace(DecompositionOptions(), **{field.name: probe})
        assert task_key(_literal_task(options=options)) != base, (
            f"options field {field.name!r} does not influence task_key"
        )
