"""Tests for recursive decomposition into k-feasible networks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.boolfunc import TruthTable
from repro.decompose import (
    DecompositionOptions,
    DecompositionTrace,
    decompose_to_network,
)
from repro.network import Network, check_equivalence


def decompose_and_check(bits: int, n: int, k: int, policy: str = "chart") -> Network:
    m = BddManager(n)
    names = [f"i{j}" for j in range(n)]
    for j, name in enumerate(names):
        pass  # manager vars are anonymous; map levels to names below
    f = m.from_truth_table(bits, list(range(n)))

    net = Network("dec")
    for name in names:
        net.add_input(name)
    signal_of_level = {j: names[j] for j in range(n)}
    root = decompose_to_network(
        m, f, net, signal_of_level, DecompositionOptions(k=k, encoding_policy=policy)
    )
    net.add_output(root, "f")

    ref = Network("ref")
    for name in names:
        ref.add_input(name)
    ref.add_node("F", names, TruthTable(n, bits))
    ref.add_output("F", "f")
    assert check_equivalence(net, ref) is None
    for node in net.nodes():
        assert len(node.fanins) <= k
    return net


class TestRecursiveDecomposition:
    @given(st.integers(min_value=0, max_value=(1 << (1 << 7)) - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_7_input_functions(self, bits):
        decompose_and_check(bits, 7, 5)

    def test_9sym(self):
        bits = 0
        for idx in range(1 << 9):
            if bin(idx).count("1") in (3, 4, 5, 6):
                bits |= 1 << idx
        net = decompose_and_check(bits, 9, 5)
        # The paper maps 9sym into 6 LUTs; allow slack but catch blowups.
        assert net.num_nodes <= 10

    def test_parity_12(self):
        bits = 0
        for idx in range(1 << 12):
            if bin(idx).count("1") % 2:
                bits |= 1 << idx
        net = decompose_and_check(bits, 12, 5)
        # Parity decomposes into an XOR tree: ceil(11/4) = 3 LUTs suffice.
        assert net.num_nodes <= 4

    def test_constants(self):
        m = BddManager(3)
        net = Network("c")
        net.add_input("a")
        signal_of_level = {0: "a"}
        from repro.bdd import TRUE
        root = decompose_to_network(
            m, TRUE, net, signal_of_level, DecompositionOptions(k=5)
        )
        net.add_output(root, "f")
        from repro.network import simulate
        assert simulate(net, {"a": 0})["f"] == 1

    def test_buffer_returns_input_signal(self):
        m = BddManager(2)
        net = Network("b")
        net.add_input("a")
        net.add_input("b")
        root = decompose_to_network(
            m, m.var_at_level(1), net, {0: "a", 1: "b"},
            DecompositionOptions(k=5),
        )
        assert root == "b"
        assert net.num_nodes == 0

    def test_trace_records_steps(self):
        bits = random.Random(1).getrandbits(1 << 8)
        m = BddManager(8)
        f = m.from_truth_table(bits, list(range(8)))
        net = Network("t")
        for j in range(8):
            net.add_input(f"i{j}")
        trace = DecompositionTrace()
        decompose_to_network(
            m, f, net, {j: f"i{j}" for j in range(8)},
            DecompositionOptions(k=5), trace=trace,
        )
        assert trace.emitted_nodes
        # Steps may be empty when only Shannon splits were needed, but any
        # recorded step must have a sensible shape.
        for step in trace.steps:
            assert len(step.alpha_tables) < len(step.bound_levels) or not step.alpha_tables

    def test_random_policy_also_correct(self):
        bits = random.Random(2).getrandbits(1 << 7)
        decompose_and_check(bits, 7, 5, policy="random")

    def test_k4(self):
        bits = random.Random(3).getrandbits(1 << 7)
        decompose_and_check(bits, 7, 4)
