"""Tests for bit-parallel simulation."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import TruthTable
from repro.network import (
    Network,
    exhaustive_vectors,
    random_vectors,
    simulate,
    simulate_vectors,
)
from repro.network.simulate import simulate_all_signals


def adder_net() -> Network:
    net = Network("fa")
    for pi in ("a", "b", "cin"):
        net.add_input(pi)
    net.add_node("s", ["a", "b", "cin"], TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c))
    net.add_node("co", ["a", "b", "cin"], TruthTable.from_function(3, lambda a, b, c: 1 if a + b + c >= 2 else 0))
    net.add_output("s")
    net.add_output("co")
    return net


class TestSimulate:
    def test_full_adder_exhaustive(self):
        net = adder_net()
        for a, b, c in itertools.product([0, 1], repeat=3):
            out = simulate(net, {"a": a, "b": b, "cin": c})
            total = a + b + c
            assert out["s"] == total & 1
            assert out["co"] == total >> 1

    def test_vectors_match_scalar(self):
        net = adder_net()
        rng = random.Random(7)
        vectors = [
            {pi: rng.randint(0, 1) for pi in net.inputs} for _ in range(17)
        ]
        patterns = {
            pi: [v[pi] for v in vectors] for pi in net.inputs
        }
        packed = simulate_vectors(net, patterns, len(vectors))
        for k, v in enumerate(vectors):
            scalar = simulate(net, v)
            for out in net.output_names:
                assert packed[out][k] == scalar[out]

    def test_constant_nodes(self):
        net = Network("c")
        net.add_input("a")
        net.add_constant("one", 1)
        net.add_node("f", ["a", "one"], TruthTable.from_function(2, lambda a, o: a & o))
        net.add_output("f")
        assert simulate(net, {"a": 1})["f"] == 1
        assert simulate(net, {"a": 0})["f"] == 0

    def test_exhaustive_vectors_shape(self):
        net = adder_net()
        patterns = exhaustive_vectors(net)
        assert len(patterns["a"]) == 8
        # Vector k must spell k in binary across the PIs.
        for k in range(8):
            bits = (patterns["a"][k], patterns["b"][k], patterns["cin"][k])
            assert bits == ((k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1)

    def test_exhaustive_vectors_limit(self):
        net = Network("big")
        for j in range(21):
            net.add_input(f"i{j}")
        with pytest.raises(ValueError):
            exhaustive_vectors(net)

    def test_random_vectors_deterministic(self):
        net = adder_net()
        assert random_vectors(net, 32, seed=3) == random_vectors(net, 32, seed=3)
        assert random_vectors(net, 32, seed=3) != random_vectors(net, 32, seed=4)

    def test_simulate_all_signals_internal(self):
        net = adder_net()
        patterns = exhaustive_vectors(net)
        words = simulate_all_signals(net, patterns, 8)
        assert set(words) == {"a", "b", "cin", "s", "co"}
        for k in range(8):
            a, b, c = (k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1
            assert ((words["s"] >> k) & 1) == (a ^ b ^ c)
