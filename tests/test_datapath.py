"""Tests for the extended datapath generators."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.circuits.datapath import (
    barrel_shifter,
    bin_to_bcd,
    crc_step,
    lfsr_next,
    priority_encoder,
    saturating_adder,
)
from repro.network import simulate


class TestPriorityEncoder:
    def test_semantics(self):
        net = priority_encoder(6)
        for v in range(1 << 6):
            out = simulate(net, {f"r{j}": (v >> j) & 1 for j in range(6)})
            if v == 0:
                assert out["valid"] == 0
                continue
            expected = v.bit_length() - 1  # highest set bit
            assert out["valid"] == 1
            idx = sum(out[f"idx{b}"] << b for b in range(3))
            assert idx == expected


class TestBarrelShifter:
    def test_rotation(self):
        width = 8
        net = barrel_shifter(width)
        rng = random.Random(1)
        for _ in range(25):
            data = rng.randrange(1 << width)
            amount = rng.randrange(width)
            assignment = {f"d{j}": (data >> j) & 1 for j in range(width)}
            assignment.update({f"s{b}": (amount >> b) & 1 for b in range(3)})
            out = simulate(net, assignment)
            got = sum(out[f"q{j}"] << j for j in range(width))
            expected = ((data << amount) | (data >> (width - amount))) & (
                (1 << width) - 1
            ) if amount else data
            assert got == expected


class TestCrcAndLfsr:
    def test_crc_step_reference(self):
        # CRC-4 with polynomial x^4 + x + 1 (taps 0b0011).
        width, poly = 4, 0b0011
        net = crc_step(width, poly)
        rng = random.Random(2)
        for _ in range(30):
            state = rng.randrange(1 << width)
            din = rng.randrange(2)
            assignment = {f"c{j}": (state >> j) & 1 for j in range(width)}
            assignment["din"] = din
            out = simulate(net, assignment)
            feedback = ((state >> (width - 1)) & 1) ^ din
            expected = ((state << 1) & ((1 << width) - 1))
            if feedback:
                expected ^= poly
            got = sum(out[f"q{j}"] << j for j in range(width))
            assert got == expected

    def test_lfsr_shifts(self):
        net = lfsr_next(5, taps=[4, 2])
        state = 0b10110
        out = simulate(net, {f"s{j}": (state >> j) & 1 for j in range(5)})
        feedback = ((state >> 4) & 1) ^ ((state >> 2) & 1)
        expected = ((state << 1) | feedback) & 0b11111
        got = sum(out[f"q{j}"] << j for j in range(5))
        assert got == expected

    def test_lfsr_needs_taps(self):
        with pytest.raises(ValueError):
            lfsr_next(4, taps=[])


class TestBcd:
    def test_all_values(self):
        net = bin_to_bcd(7)
        for v in range(128):
            out = simulate(net, {f"b{j}": (v >> j) & 1 for j in range(7)})
            for d in range(3):
                digit = sum(out[f"bcd{d}_{b}"] << b for b in range(4))
                assert digit == (v // (10 ** d)) % 10

    def test_width_limit(self):
        with pytest.raises(ValueError):
            bin_to_bcd(11)


class TestSaturatingAdder:
    def test_saturation(self):
        width = 4
        net = saturating_adder(width)
        for a, b in itertools.product(range(16), repeat=2):
            assignment = {f"a{j}": (a >> j) & 1 for j in range(width)}
            assignment.update({f"b{j}": (b >> j) & 1 for j in range(width)})
            out = simulate(net, assignment)
            got = sum(out[f"o{j}"] << j for j in range(width))
            expected = min(a + b, 15)
            assert got == expected
            assert out["sat"] == (1 if a + b > 15 else 0)
