"""Generators, metamorphic invariants, the repro validator, and the
verify wiring into the task runner / resume gate / CLI."""

from __future__ import annotations

import os

import pytest

from repro.mapping import hyde_map, map_per_output
from repro.network import check_equivalence
from repro.verify import (
    metamorphic_check,
    negate_outputs,
    permute_inputs,
    random_network,
    shuffle_nodes,
    validate_repro,
)


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #


def test_random_network_matches_historical_corpus():
    """The consolidated generator is bit-identical to the old inline one
    (changing it would invalidate every historical repro seed)."""
    from repro.circuits.synthetic import layered_network, windowed_network
    from repro.network import to_blif

    for seed in range(6):
        if seed % 2 == 0:
            legacy = layered_network(
                f"fuzz{seed}",
                num_inputs=6 + seed % 3,
                num_outputs=3 + seed % 2,
                nodes_per_layer=4,
                num_layers=2 + seed % 2,
                fanin=3 + seed % 3,
                seed=seed,
            )
        else:
            legacy = windowed_network(
                f"fuzz{seed}",
                num_inputs=7 + seed % 3,
                num_outputs=3 + seed % 3,
                window=5,
                seed=seed,
            )
        assert to_blif(random_network(seed)) == to_blif(legacy)


def test_repro_seed_env_override(monkeypatch):
    from repro.network import to_blif

    monkeypatch.setenv("REPRO_SEED", "7")
    overridden = random_network(3)
    monkeypatch.delenv("REPRO_SEED")
    assert to_blif(overridden) == to_blif(random_network(7))


def test_seed_log_records_generations():
    from repro.verify import clear_seed_log, seed_log

    clear_seed_log()
    random_network(5)
    random_network(2)
    log = seed_log()
    assert log == [("random_network", 5), ("random_network", 2)]


def test_random_multi_output_reference_matches_ingredients():
    from repro.verify import random_multi_output

    manager, names, ingredients, ref = random_multi_output(11, 7, 2)
    assert [o for o, _ in ingredients] == ["o0", "o1"]
    assert ref.output_names == ["o0", "o1"]
    for (out, bdd), node in zip(ingredients, ("n0", "n1")):
        mask = manager.to_truth_table(bdd, list(range(len(names))))
        assert ref.node(node).table.mask == mask


# --------------------------------------------------------------------- #
# Transforms and metamorphic invariants
# --------------------------------------------------------------------- #


def test_transforms_preserve_functions():
    source = random_network(6)
    for transform in (permute_inputs, shuffle_nodes):
        variant = transform(source, seed=1)
        assert sorted(variant.inputs) == sorted(source.inputs)
        assert variant.output_names == source.output_names
        assert check_equivalence(source, variant) is None


def test_negate_outputs_complements_exactly_the_chosen():
    from repro.network.simulate import random_vectors, simulate_all_signals

    source = random_network(6)
    which = [source.output_names[0]]
    negated, names = negate_outputs(source, which=which)
    assert names == which
    patterns = random_vectors(source, 64, 0)
    a = simulate_all_signals(source, patterns, 64)
    b = simulate_all_signals(negated, patterns, 64)
    ones = (1 << 64) - 1
    for out in source.output_names:
        da, db = source.output_driver(out), negated.output_driver(out)
        if out in which:
            assert b[db] == a[da] ^ ones
        else:
            assert b[db] == a[da]


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_metamorphic_invariants_hold(seed):
    source = random_network(seed)
    for flow in (hyde_map, map_per_output):
        report = metamorphic_check(
            source,
            lambda n: flow(n, k=4, verify="none", pack_clbs=False).network,
            seed=seed,
        )
        assert report.ok, report.summary()
        for outcome in report.outcomes:
            # Declaration-order shuffling and output negation are
            # count-preserving for these flows (empirically pinned);
            # input permutation legitimately is not — BDD variable
            # order feeds bound-set selection.
            if outcome.transform in ("shuffle_nodes", "negate_outputs"):
                assert outcome.same_luts, report.summary()


# --------------------------------------------------------------------- #
# Repro validator + shrinker output order (the satellite bugfix)
# --------------------------------------------------------------------- #


def test_validate_repro_accepts_generated_networks():
    for seed in range(4):
        assert validate_repro(random_network(seed)) == []


def test_reorder_outputs_roundtrip():
    net = random_network(2)
    names = net.output_names
    net.reorder_outputs(list(reversed(names)))
    assert net.output_names == list(reversed(names))
    with pytest.raises(ValueError):
        net.reorder_outputs(names[:-1])


def test_shrinker_preserves_output_order():
    """Surviving outputs keep the source's relative order, whatever the
    predicate lets the shrinker remove."""
    from repro.testing import shrink_network

    source = random_network(0)  # layered, 3 outputs
    order = source.output_names

    def keeps_last_two(net):
        return set(order[1:]) <= set(net.output_names)

    shrunk = shrink_network(source, keeps_last_two)
    surviving = [o for o in order if o in set(shrunk.output_names)]
    assert shrunk.output_names == surviving
    assert validate_repro(shrunk) == []


def test_shrunk_witness_passes_replay_validator():
    from repro.testing import shrink_network
    from repro.verify import build_miter, miter_satisfiable
    from repro.verify import apply_mutation, sample_mutations

    source = random_network(4)
    mapped = hyde_map(source, k=4, verify="none", pack_clbs=False).network
    for mutation in sample_mutations(mapped, 10, seed=3):
        mutant = apply_mutation(mapped, mutation)
        bad = check_equivalence(mapped, mutant)
        if bad is None:
            continue
        miter = build_miter(mapped, mutant, bad)
        shrunk = shrink_network(miter, miter_satisfiable)
        assert miter_satisfiable(shrunk)
        assert validate_repro(shrunk) == []
        assert shrunk.num_nodes <= miter.num_nodes
        return
    pytest.fail("no unmasked mutant found")


# --------------------------------------------------------------------- #
# Wiring: task-runner reply validation, resume gate, CLI
# --------------------------------------------------------------------- #


def test_finegrain_reply_validation_journals_failing_cone(tmp_path):
    from repro.decompose import DecompositionOptions
    from repro.mapping.parallel import (
        GroupResult,
        GroupTask,
        TaskPolicy,
        _validate_reply,
    )
    from repro.network import extract_cone, to_blif
    from repro.runstate import load_journal, open_journal, validate_journal
    from repro.verify import apply_mutation, sample_mutations

    source = random_network(6)
    out = source.output_names[0]
    cone = extract_cone(source, [out], name="cone")
    frag = hyde_map(cone, k=4, verify="none", pack_clbs=False).network
    bad = apply_mutation(frag, sample_mutations(frag, 1, seed=1)[0])

    journal = open_journal(tmp_path, circuit="c", flow="hyde", k=4)
    task = GroupTask(
        blif_text=to_blif(cone), group=[out], gi=0,
        options=DecompositionOptions(k=4), base_name="c_g0",
    )
    policy = TaskPolicy(verify_mode="finegrain")

    ok = _validate_reply(
        task, GroupResult(gi=0, blif_text=to_blif(frag), info={}),
        policy, journal=journal,
    )
    assert ok is None

    cause = _validate_reply(
        task, GroupResult(gi=0, blif_text=to_blif(bad), info={}),
        policy, journal=journal,
    )
    assert cause is not None and cause.startswith("nonequivalent_reply")
    assert "cone at" in cause and "counterexample" in cause

    records, problems = load_journal(journal.path)
    assert problems == [] and validate_journal(records) == []
    events = [
        r for r in records
        if r.get("type") == "event" and r.get("kind") == "failing_cone"
    ]
    assert len(events) == 1
    event = events[0]
    assert event["output"] == out and event["confirmed"]
    assert isinstance(event["counterexample"], dict)


def test_finegrain_resume_gate_records_verdict(tmp_path):
    from repro.runstate import load_journal, open_journal

    source = random_network(2)
    j1 = open_journal(tmp_path, circuit="c", flow="hyde", k=4)
    first = hyde_map(
        source, k=4, verify="finegrain", pack_clbs=False, journal=j1
    )
    j2 = open_journal(tmp_path, circuit="c", flow="hyde", k=4, resume=True)
    second = hyde_map(
        source, k=4, verify="finegrain", pack_clbs=False, journal=j2
    )
    assert second.details["journal"]["replayed"] >= 1
    records, _ = load_journal(j2.path)
    verdicts = [r for r in records if r.get("type") == "verdict"]
    assert verdicts[-1]["engine"] == "finegrain"
    assert verdicts[-1]["equivalent"]
    assert first.network.num_nodes == second.network.num_nodes


def test_cli_verify_roundtrip(tmp_path):
    from repro.cli import main
    from repro.network import write_blif
    from repro.verify import apply_mutation, sample_mutations

    source = random_network(4)
    mapped = hyde_map(source, k=4, verify="none", pack_clbs=False).network
    golden_path = os.path.join(tmp_path, "g.blif")
    mapped_path = os.path.join(tmp_path, "m.blif")
    write_blif(source, golden_path)
    write_blif(mapped, mapped_path)

    assert main(["verify", golden_path, mapped_path]) == 0
    assert main(["verify", golden_path, mapped_path, "--finegrain"]) == 0
    assert main(
        ["verify", golden_path, mapped_path, "--mutants", "5"]
    ) == 0

    bad = apply_mutation(mapped, sample_mutations(mapped, 1, seed=9)[0])
    bad_path = os.path.join(tmp_path, "bad.blif")
    write_blif(bad, bad_path)
    repro_dir = os.path.join(tmp_path, "repros")
    rc = main(
        [
            "verify", golden_path, bad_path,
            "--finegrain", "--repro-dir", repro_dir,
        ]
    )
    assert rc == 1
    witnesses = [
        f for f in os.listdir(repro_dir) if f.endswith(".blif")
    ]
    assert witnesses, "shrunk miter witness not saved"
    from repro.network import read_blif
    from repro.verify import miter_satisfiable

    for name in witnesses:
        witness = read_blif(os.path.join(repro_dir, name))
        assert miter_satisfiable(witness)
        assert validate_repro(witness) == []
