"""Tests for network statistics."""

from __future__ import annotations

from repro.boolfunc import TruthTable
from repro.network import Network, is_k_feasible, network_stats, node_depths

AND2 = TruthTable.from_function(2, lambda a, b: a & b)


def chain_net(length: int) -> Network:
    net = Network("chain")
    net.add_input("a")
    net.add_input("b")
    prev = "a"
    for j in range(length):
        net.add_node(f"n{j}", [prev, "b"], AND2)
        prev = f"n{j}"
    net.add_output(prev)
    return net


class TestStats:
    def test_depths(self):
        net = chain_net(3)
        depths = node_depths(net)
        assert depths["a"] == 0
        assert depths["n0"] == 1
        assert depths["n2"] == 3

    def test_constant_nodes_sit_at_depth_zero(self):
        # Constants occupy no LUT (count_luts costs them 0), so they must
        # not contribute a logic level either.
        net = Network("n")
        net.add_input("a")
        net.add_constant("one", 1)
        net.add_node("f", ["a", "one"], AND2)
        net.add_output("f")
        depths = node_depths(net)
        assert depths["one"] == 0
        assert depths["f"] == 1
        net2 = Network("n2")
        net2.add_constant("zero", 0)
        net2.add_output("zero", "f")
        assert network_stats(net2).depth == 0

    def test_network_stats(self):
        net = chain_net(4)
        stats = network_stats(net, k=5)
        assert stats.num_nodes == 4
        assert stats.depth == 4
        assert stats.max_fanin == 2
        assert stats.k_feasible_nodes == 4
        assert "4 nodes" in str(stats)

    def test_is_k_feasible(self):
        net = Network("w")
        for j in range(6):
            net.add_input(f"i{j}")
        net.add_node("f", [f"i{j}" for j in range(6)],
                     TruthTable.constant(6, 1))
        net.add_output("f")
        assert not is_k_feasible(net, 5)
        assert is_k_feasible(net, 6)

    def test_empty_network(self):
        net = Network("e")
        net.add_input("a")
        net.add_output("a")
        stats = network_stats(net, k=5)
        assert stats.num_nodes == 0
        assert stats.depth == 0
