"""Tests for the memoized class-count oracle (repro.decompose.oracle).

The oracle must be *invisible* apart from speed: every count it serves
has to equal what the uncached :func:`count_classes` computes on the same
``(on, dc, bound)`` triple.  The tests drive it with seeded random truth
tables — with and without don't-care sets — and also pin down the sharing
and ablation contracts (per-manager singleton, sorted-key permutation
hits, ``use_oracle=False`` bound-set equivalence).
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import FALSE, BddManager
from repro.decompose import (
    ClassCountOracle,
    DecompositionOptions,
    count_classes,
    decompose_step,
    select_bound_set,
)

N = 6


def random_function(m: BddManager, rng: random.Random) -> int:
    bits = rng.getrandbits(1 << N)
    return m.from_truth_table(bits, list(range(N)))


def random_bound(rng: random.Random, size: int):
    return tuple(rng.sample(range(N), size))


class TestSyntacticCount:
    def test_matches_uncached_no_dontcares(self):
        rng = random.Random(1)
        m = BddManager(N)
        oracle = ClassCountOracle.for_manager(m)
        for _ in range(25):
            f = random_function(m, rng)
            bound = random_bound(rng, rng.randint(1, 4))
            expected = count_classes(m, f, list(bound))
            assert oracle.syntactic_count(f, FALSE, bound) == expected
            # Second query must hit the memo and return the same value.
            hits_before = oracle.hits
            assert oracle.syntactic_count(f, FALSE, bound) == expected
            assert oracle.hits == hits_before + 1

    def test_matches_uncached_with_dontcares(self):
        rng = random.Random(2)
        m = BddManager(N)
        oracle = ClassCountOracle.for_manager(m)
        for _ in range(25):
            f = random_function(m, rng)
            dc = random_function(m, rng)
            dc = m.apply_and(dc, m.apply_not(f))  # disjoint dc-set
            bound = random_bound(rng, rng.randint(1, 4))
            # Syntactic tier: distinct (on, dc) pairs == count_classes
            # with don't-care merging disabled.
            expected = count_classes(
                m, f, list(bound), dc, use_dontcares=False
            )
            assert oracle.syntactic_count(f, dc, bound) == expected

    def test_permutations_share_an_entry(self):
        rng = random.Random(3)
        m = BddManager(N)
        oracle = ClassCountOracle.for_manager(m)
        f = random_function(m, rng)
        assert oracle.syntactic_count(f, FALSE, (2, 0, 3)) == \
            oracle.syntactic_count(f, FALSE, (3, 2, 0))
        assert oracle.stats()["syntactic_entries"] == 1
        assert oracle.hits == 1


class TestExactCount:
    def test_matches_uncached_with_dontcares(self):
        rng = random.Random(4)
        m = BddManager(N)
        oracle = ClassCountOracle.for_manager(m)
        for _ in range(15):
            f = random_function(m, rng)
            dc = m.apply_and(random_function(m, rng), m.apply_not(f))
            bound = random_bound(rng, rng.randint(1, 4))
            expected = count_classes(m, f, list(bound), dc)
            assert oracle.exact_count(f, dc, bound) == expected
            assert oracle.exact_count(f, dc, bound) == expected  # memo hit

    def test_degenerates_to_syntactic_without_dc(self):
        m = BddManager(N)
        f = m.apply_and(m.var_at_level(0), m.var_at_level(1))
        oracle = ClassCountOracle.for_manager(m)
        assert oracle.exact_count(f, FALSE, (0, 1)) == \
            oracle.syntactic_count(f, FALSE, (0, 1))
        # The dc-free exact query shares the syntactic memo.
        assert oracle.stats()["exact_entries"] == 0


class TestSharing:
    def test_for_manager_is_singleton(self):
        m = BddManager(N)
        assert ClassCountOracle.for_manager(m) is \
            ClassCountOracle.for_manager(m)
        assert m._class_oracle is ClassCountOracle.for_manager(m)

    def test_managers_do_not_share(self):
        m1, m2 = BddManager(N), BddManager(N)
        assert ClassCountOracle.for_manager(m1) is not \
            ClassCountOracle.for_manager(m2)

    def test_select_bound_set_populates_shared_oracle(self):
        rng = random.Random(5)
        m = BddManager(N)
        f = random_function(m, rng)
        select_bound_set(m, f, list(range(N)), 3)
        oracle = ClassCountOracle.for_manager(m)
        assert oracle.stats()["syntactic_entries"] > 0

    def test_clear_drops_entries(self):
        m = BddManager(N)
        oracle = ClassCountOracle.for_manager(m)
        oracle.syntactic_count(m.var_at_level(0), FALSE, (1,))
        oracle.clear()
        assert oracle.stats()["syntactic_entries"] == 0


class TestAblation:
    """use_oracle=False must reproduce the oracle-enabled results."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_select_bound_set_equivalent(self, seed):
        rng = random.Random(seed)
        bits = rng.getrandbits(1 << N)
        m_on = BddManager(N)
        f_on = m_on.from_truth_table(bits, list(range(N)))
        m_off = BddManager(N)
        f_off = m_off.from_truth_table(bits, list(range(N)))
        vp_on = select_bound_set(m_on, f_on, list(range(N)), 3)
        vp_off = select_bound_set(
            m_off, f_off, list(range(N)), 3, use_oracle=False
        )
        assert vp_on.bound_levels == vp_off.bound_levels
        assert vp_on.num_classes == vp_off.num_classes

    def test_decompose_step_equivalent(self):
        rng = random.Random(21)
        bits = rng.getrandbits(1 << N)
        results = []
        for use_oracle in (True, False):
            m = BddManager(N)
            f = m.from_truth_table(bits, list(range(N)))
            step = decompose_step(
                m, f, list(range(N)),
                DecompositionOptions(k=4, use_oracle=use_oracle),
            )
            results.append(
                (step.bound_levels, step.num_classes,
                 len(step.alpha_tables))
            )
        assert results[0] == results[1]
