"""Tests for the single Roth-Karp decomposition step."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, BddManager, build_cube
from repro.decompose import DecompositionOptions, decompose_step

N = 7
TABLE_BITS = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


def verify_step(m: BddManager, f: int, step) -> None:
    """Check f(x, y) == g(alpha(x), y) for every bound assignment."""
    rebuilt = FALSE
    for position in range(1 << len(step.bound_levels)):
        bound_assign = {
            lv: (position >> j) & 1 for j, lv in enumerate(step.bound_levels)
        }
        alpha_assign = {
            alv: step.alpha_tables[j].eval_index(position)
            for j, alv in enumerate(step.alpha_levels)
        }
        g_slice = m.restrict(step.image.on, alpha_assign)
        cube = build_cube(m, bound_assign)
        rebuilt = m.apply_or(rebuilt, m.apply_and(cube, g_slice))
    assert rebuilt == f


class TestDecomposeStep:
    @given(TABLE_BITS)
    @settings(max_examples=15, deadline=None)
    def test_round_trip_random_functions(self, bits):
        m = BddManager(N)
        f = m.from_truth_table(bits, list(range(N)))
        support = m.support(f)
        if len(support) <= 4:
            return
        step = decompose_step(
            m, f, support, DecompositionOptions(k=4, encoding_policy="chart")
        )
        if step.num_classes < 2:
            return
        verify_step(m, f, step)

    def test_alpha_tables_match_classes(self):
        m = BddManager(N)
        f = m.from_truth_table(0x5A5A_F0F0_3C3C_9696, list(range(6)))
        support = m.support(f)
        step = decompose_step(
            m, f, support, DecompositionOptions(k=4)
        )
        # Strict encoding: positions in one class share all alpha values.
        for p1 in range(1 << len(step.bound_levels)):
            for p2 in range(p1 + 1, 1 << len(step.bound_levels)):
                same_class = (
                    step.classes.class_of_position[p1]
                    == step.classes.class_of_position[p2]
                )
                same_code = all(
                    t.eval_index(p1) == t.eval_index(p2)
                    for t in step.alpha_tables
                )
                assert same_class == same_code

    def test_alpha_count_is_rigid(self):
        import math
        m = BddManager(N)
        f = m.from_truth_table(0x0123_4567_89AB_CDEF, list(range(6)))
        step = decompose_step(m, f, m.support(f), DecompositionOptions(k=4))
        assert len(step.alpha_tables) == max(
            1, math.ceil(math.log2(step.num_classes))
        )

    def test_forced_bound_set(self):
        m = BddManager(N)
        f = m.from_truth_table(0xFEDC_BA98_7654_3210, list(range(6)))
        step = decompose_step(
            m, f, m.support(f), DecompositionOptions(k=4),
            bound_levels=[0, 1, 2, 3],
        )
        assert step.bound_levels == (0, 1, 2, 3)
        verify_step(m, f, step)

    def test_feasible_function_rejected(self):
        m = BddManager(3)
        f = m.apply_and(m.var_at_level(0), m.var_at_level(1))
        with pytest.raises(ValueError):
            decompose_step(m, f, m.support(f), DecompositionOptions(k=5))

    def test_policies_agree_semantically(self):
        m = BddManager(N)
        bits = random.Random(0).getrandbits(1 << 6)
        f = m.from_truth_table(bits, list(range(6)))
        support = m.support(f)
        if len(support) <= 4:
            pytest.skip("degenerate draw")
        for policy in ("chart", "random", "worst"):
            step = decompose_step(
                m, f, support,
                DecompositionOptions(k=4, encoding_policy=policy),
                bound_levels=support[:4],
            )
            if step.num_classes >= 2:
                verify_step(m, f, step)

    def test_bound_size_search_round_trip(self):
        m = BddManager(N)
        f = m.from_truth_table(0x8241_1824_4218_1842, list(range(6)))
        support = m.support(f)
        step = decompose_step(
            m, f, support,
            DecompositionOptions(k=4, bound_size_search=True),
        )
        if step.num_classes >= 2:
            verify_step(m, f, step)
        # The searched bound set may legitimately be smaller than k.
        assert 2 <= len(step.bound_levels) <= 4

    def test_dc_step_covers_care_set(self):
        m = BddManager(N)
        a = [m.var_at_level(i) for i in range(6)]
        on = m.apply_and(m.apply_and(a[0], a[1]), m.apply_or(a[4], a[5]))
        dc = m.apply_and(m.apply_not(a[0]), a[2])
        support = sorted(set(m.support(on)) | set(m.support(dc)))
        step = decompose_step(
            m, on, support, DecompositionOptions(k=4), dc=dc,
            bound_levels=support[:4],
        )
        if step.num_classes < 2:
            return
        # For every bound position, the g-slice must agree with the
        # column's care set.
        for position in range(1 << len(step.bound_levels)):
            alpha_assign = {
                alv: step.alpha_tables[j].eval_index(position)
                for j, alv in enumerate(step.alpha_levels)
            }
            g_on = m.restrict(step.image.on, alpha_assign)
            g_dc = m.restrict(step.image.dc, alpha_assign)
            col = step.classes.columns[position]
            col_off = m.apply_diff(m.apply_not(col.on), col.dc)
            # g must be 1 where the column is ON, 0 where OFF.
            assert m.apply_diff(col.on, m.apply_or(g_on, g_dc)) == FALSE
            assert m.apply_and(col_off, g_on) == FALSE
