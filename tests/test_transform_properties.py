"""Property-based tests: every network transform preserves functionality
on randomly generated networks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import TruthTable
from repro.mapping import absorb_inverters, cleanup_for_lut_count, dedup_nodes
from repro.network import Network, check_equivalence, sweep
from repro.opt import algebraic_script


def random_network(seed: int, num_inputs: int = 5, num_nodes: int = 10) -> Network:
    """A random DAG with some buffers/inverters/constants mixed in."""
    rng = random.Random(seed)
    net = Network(f"rand{seed}")
    signals = [net.add_input(f"i{j}") for j in range(num_inputs)]
    net.add_constant("konst", rng.randint(0, 1))
    signals.append("konst")
    for n in range(num_nodes):
        kind = rng.random()
        name = f"n{n}"
        if kind < 0.15:
            src = rng.choice(signals)
            table = TruthTable.from_function(1, lambda v: 1 - v)  # inverter
            net.add_node(name, [src], table)
        elif kind < 0.25:
            src = rng.choice(signals)
            table = TruthTable.from_function(1, lambda v: v)  # buffer
            net.add_node(name, [src], table)
        else:
            arity = rng.randint(2, min(4, len(signals)))
            fanins = rng.sample(signals, arity)
            net.add_node(name, fanins, TruthTable(arity, rng.getrandbits(1 << arity)))
        signals.append(name)
    outputs = rng.sample([s for s in signals if not net.is_input(s)], 3)
    for i, driver in enumerate(outputs):
        net.add_output(driver, f"o{i}")
    return net


@pytest.mark.parametrize("seed", range(12))
def test_sweep_preserves_function(seed):
    net = random_network(seed)
    before = net.copy()
    sweep(net)
    assert check_equivalence(net, before) is None


@pytest.mark.parametrize("seed", range(12))
def test_dedup_preserves_function(seed):
    net = random_network(seed + 100)
    before = net.copy()
    dedup_nodes(net)
    assert check_equivalence(net, before) is None


@pytest.mark.parametrize("seed", range(12))
def test_absorb_inverters_preserves_function(seed):
    net = random_network(seed + 200)
    before = net.copy()
    absorb_inverters(net)
    assert check_equivalence(net, before) is None


@pytest.mark.parametrize("seed", range(8))
def test_cleanup_pipeline_preserves_function(seed):
    net = random_network(seed + 300)
    before = net.copy()
    cleanup_for_lut_count(net)
    assert check_equivalence(net, before) is None


@pytest.mark.parametrize("seed", range(6))
def test_algebraic_script_preserves_function(seed):
    net = random_network(seed + 400, num_inputs=6, num_nodes=8)
    before = net.copy()
    algebraic_script(net)
    assert check_equivalence(net, before) is None


@pytest.mark.parametrize("seed", range(4))
def test_cleanup_idempotent(seed):
    net = random_network(seed + 500)
    cleanup_for_lut_count(net)
    snapshot = [(n.name, tuple(n.fanins), n.table.mask) for n in net.nodes()]
    cleanup_for_lut_count(net)
    again = [(n.name, tuple(n.fanins), n.table.mask) for n in net.nodes()]
    assert snapshot == again
