"""Tests for clique-partitioning don't-care assignment (Section 3.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager
from repro.decompose import assign_dontcares, clique_partition, compatibility_graph
from repro.decompose.compatible import Column


class TestCliquePartition:
    def test_complete_graph_one_clique(self):
        cliques = clique_partition(5, lambda i, j: True)
        assert len(cliques) == 1
        assert sorted(cliques[0]) == [0, 1, 2, 3, 4]

    def test_empty_graph_singletons(self):
        cliques = clique_partition(4, lambda i, j: False)
        assert len(cliques) == 4

    def test_two_components(self):
        edges = {(0, 1), (1, 2), (0, 2), (3, 4)}
        compat = lambda i, j: tuple(sorted((i, j))) in edges
        cliques = clique_partition(5, compat)
        assert sorted(map(sorted, cliques)) == [[0, 1, 2], [3, 4]]

    def test_each_vertex_exactly_once(self):
        rng = random.Random(5)
        n = 12
        edges = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.4
        }
        cliques = clique_partition(n, lambda i, j: tuple(sorted((i, j))) in edges)
        flat = sorted(v for c in cliques for v in c)
        assert flat == list(range(n))

    def test_result_is_cliques(self):
        rng = random.Random(9)
        n = 10
        edges = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.5
        }
        compat = lambda i, j: tuple(sorted((i, j))) in edges
        for clique in clique_partition(n, compat):
            for a in clique:
                for b in clique:
                    if a < b:
                        assert compat(a, b)

    def test_path_graph(self):
        # 0-1-2 path: cannot be one clique (0 and 2 not adjacent).
        cliques = clique_partition(3, lambda i, j: abs(i - j) == 1)
        assert len(cliques) == 2


class TestCompatibilityGraph:
    def test_specified_columns(self):
        m = BddManager(2)
        a = m.var_at_level(0)
        cols = [Column(a), Column(a), Column(m.apply_not(a))]
        adj = compatibility_graph(m, cols)
        assert 1 in adj[0]
        assert 2 not in adj[0]

    def test_fully_unspecified_compatible_with_all(self):
        m = BddManager(2)
        a = m.var_at_level(0)
        cols = [Column(a), Column(FALSE, TRUE), Column(m.apply_not(a))]
        adj = compatibility_graph(m, cols)
        assert adj[1] == {0, 2}


class TestAssignDontcares:
    def test_no_dc_identity(self):
        m = BddManager(3)
        a, b = m.var_at_level(0), m.var_at_level(1)
        cols = [Column(a), Column(b), Column(a)]
        class_of, functions = assign_dontcares(m, cols)
        assert class_of[0] == class_of[2] != class_of[1]
        assert len(functions) == 2

    def test_dc_columns_absorbed(self):
        m = BddManager(3)
        a = m.var_at_level(0)
        cols = [Column(a), Column(FALSE, TRUE), Column(m.apply_not(a))]
        class_of, functions = assign_dontcares(m, cols)
        assert len(functions) == 2  # the free column joins one of the two

    def test_merged_function_consistent(self):
        m = BddManager(3)
        a, b = m.var_at_level(0), m.var_at_level(1)
        # col0: on=a, dc=!a&b (off=!a&!b); col1: on=a&b dc=!b.
        col0 = Column(a, m.apply_and(m.apply_not(a), b))
        col1 = Column(m.apply_and(a, b), m.apply_not(b))
        class_of, functions = assign_dontcares(m, cols := [col0, col1])
        for position, col in enumerate(cols):
            fc = functions[class_of[position]]
            off = m.apply_diff(m.apply_not(fc.on), fc.dc)
            col_off = m.apply_diff(m.apply_not(col.on), col.dc)
            assert m.apply_and(col.on, off) == FALSE
            assert m.apply_and(col_off, fc.on) == FALSE

    def test_pairwise_but_not_jointly_compatible(self):
        # Three columns, pairwise compatible through don't cares, but not
        # all three mergeable: the greedy-verify split must handle it.
        m = BddManager(2)
        a, b = m.var_at_level(0), m.var_at_level(1)
        na, nb = m.apply_not(a), m.apply_not(b)
        # col0: ON at a&b, OFF at !a&!b, dc elsewhere.
        col0 = Column(m.apply_and(a, b), m.apply_xor(a, b))
        # col1: ON at !a&!b, OFF at a&b, dc elsewhere -> conflicts with col0.
        col1 = Column(m.apply_and(na, nb), m.apply_xor(a, b))
        # col2: fully unspecified, compatible with both.
        col2 = Column(FALSE, TRUE)
        class_of, functions = assign_dontcares(m, [col0, col1, col2])
        assert class_of[0] != class_of[1]
        assert len(functions) == 2
