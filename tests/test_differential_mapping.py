"""Differential fuzzing of the mapping flows on seeded random networks.

Every flow under test — HYDE serial, HYDE through the task runner
(``jobs=2``), per-output, and the structural baseline — must produce a
network equivalent to the same source and k-feasible.  Running them on
the *same* seeded random inputs makes any disagreement a one-command
repro: a failure shrinks the witness with :mod:`repro.testing.shrink`
and writes it to ``tests/_repros/`` before failing the test, so CI
leaves behind a minimized BLIF instead of just a seed number.

Seeds are fixed (this is the CI ``fuzz-smoke`` suite, not an open-ended
fuzzer); widen ``SEEDS`` locally for a deeper sweep.  The corpus itself
lives in :func:`repro.verify.random_network` (seed-logged, replayable
via ``REPRO_SEED``) and is shared with the metamorphic fuzz.
"""

from __future__ import annotations

import os

import pytest

from repro.mapping import hyde_map, map_per_output, map_structural
from repro.network import Network, check_equivalence
from repro.testing import save_repro, shrink_network
from repro.verify import random_network

pytestmark = pytest.mark.slow

K = 4
SEEDS = range(30)
REPRO_DIR = os.path.join(os.path.dirname(__file__), "_repros")


def _k_feasible(net: Network, k: int) -> bool:
    return all(len(node.fanins) <= k for node in net.nodes())


FLOWS = {
    "hyde": lambda net: hyde_map(net, k=K, verify="none", pack_clbs=False),
    "hyde-jobs2": lambda net: hyde_map(
        net, k=K, verify="none", pack_clbs=False, jobs=2
    ),
    "per-output": lambda net: map_per_output(
        net, k=K, verify="none", pack_clbs=False
    ),
    "structural": lambda net: map_structural(
        net, k=K, verify="none", pack_clbs=False
    ),
}


def _run_and_check(flow_label: str, source: Network) -> None:
    """Run one flow; on any failure shrink the witness and save a repro."""

    def fails(net: Network) -> bool:
        try:
            result = FLOWS[flow_label](net.copy())
        except Exception:
            return True  # the crash itself is the failure to preserve
        if not _k_feasible(result.network, K):
            return True
        return check_equivalence(net, result.network) is not None

    if not fails(source):
        return
    shrunk = shrink_network(source, fails)
    path = save_repro(
        shrunk,
        REPRO_DIR,
        f"{source.name}_{flow_label}",
        note=(
            f"flow {flow_label} (k={K}) fails on this network\n"
            f"shrunk from {source.name} "
            f"({source.num_nodes} nodes -> {shrunk.num_nodes})"
        ),
    )
    pytest.fail(
        f"flow {flow_label!r} failed on {source.name}; "
        f"minimized repro written to {path}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_flows_agree_on_seeded_network(seed):
    source = random_network(seed)
    for label in FLOWS:
        # jobs=2 on every seed would fork ~2 pools per case; sample it.
        if label == "hyde-jobs2" and seed % 3 != 0:
            continue
        _run_and_check(label, source)


def test_repro_dir_artifacts_parse_back():
    """Anything a failed run left behind must itself be a valid witness."""
    from repro.network import read_blif

    if not os.path.isdir(REPRO_DIR):
        pytest.skip("no repro artifacts")
    blifs = [f for f in os.listdir(REPRO_DIR) if f.endswith(".blif")]
    for name in blifs:
        net = read_blif(os.path.join(REPRO_DIR, name))
        assert net.inputs and net.outputs
