"""Tests for LUT costing, cleanup passes and XC3000 CLB packing."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence
from repro.mapping import (
    absorb_inverters,
    can_pair,
    cleanup_for_lut_count,
    count_luts,
    dedup_nodes,
    pack_xc3000,
)

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
INV = TruthTable.from_function(1, lambda a: 1 - a)


class TestCountLuts:
    def test_counts_nonconstant_nodes(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_constant("one", 1)
        net.add_node("f", ["a", "b"], AND2)
        net.add_output("f")
        assert count_luts(net, 5) == 1

    def test_rejects_infeasible(self):
        net = Network("n")
        for j in range(6):
            net.add_input(f"i{j}")
        net.add_node("f", [f"i{j}" for j in range(6)], TruthTable.constant(6, 1) )
        net.add_output("f")
        with pytest.raises(ValueError):
            count_luts(net, 5)


class TestAbsorbInverters:
    def test_inverter_folded(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("na", ["a"], INV)
        net.add_node("f", ["na", "b"], AND2)
        net.add_output("f")
        before = net.copy()
        removed = absorb_inverters(net)
        assert removed == 1
        assert check_equivalence(net, before) is None
        assert "na" not in net.node_names()

    def test_output_inverter_kept(self):
        net = Network("n")
        net.add_input("a")
        net.add_node("na", ["a"], INV)
        net.add_output("na")
        assert absorb_inverters(net) == 0
        assert "na" in net.node_names()

    def test_inverter_chain(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("n1", ["a"], INV)
        net.add_node("n2", ["n1"], INV)
        net.add_node("f", ["n2", "b"], AND2)
        net.add_output("f")
        before = net.copy()
        absorb_inverters(net)
        assert check_equivalence(net, before) is None

    def test_double_inversion_at_output_is_a_wire(self):
        # inv → inv → PO used to survive as two LUTs (or, collapsed, as a
        # PO-driving buffer counted as one LUT); it is a plain wire.
        net = Network("n")
        net.add_input("a")
        net.add_node("n1", ["a"], INV)
        net.add_node("n2", ["n1"], INV)
        net.add_output("n2", "f")
        before = net.copy()
        removed = absorb_inverters(net)
        assert removed == 2
        assert check_equivalence(net, before) is None
        assert net.output_driver("f") == "a"
        assert count_luts(net, 5) == 0

    def test_odd_inverter_chain_at_output_keeps_one(self):
        net = Network("n")
        net.add_input("a")
        net.add_node("n1", ["a"], INV)
        net.add_node("n2", ["n1"], INV)
        net.add_node("n3", ["n2"], INV)
        net.add_output("n3", "f")
        before = net.copy()
        absorb_inverters(net)
        assert check_equivalence(net, before) is None
        assert count_luts(net, 5) == 1
        assert net.node(net.output_driver("f")).fanins == ["a"]

    def test_po_driving_buffer_collapsed(self):
        buf = TruthTable(1, 0b10)
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("bufx", ["x"], buf)
        net.add_output("bufx", "f")
        before = net.copy()
        absorb_inverters(net)
        assert check_equivalence(net, before) is None
        assert net.output_driver("f") == "x"
        assert count_luts(net, 5) == 1


class TestDedup:
    def test_identical_nodes_merged(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("y", ["a", "b"], AND2)
        net.add_node("f", ["x", "y"], XOR2)  # == 0
        net.add_output("f")
        before = net.copy()
        merged = dedup_nodes(net)
        assert merged >= 1
        assert check_equivalence(net, before) is None

    def test_commutative_duplicates_merged(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("y", ["b", "a"], AND2)  # same function, swapped pins
        net.add_node("f", ["x", "y"], XOR2)
        net.add_output("f")
        before = net.copy()
        assert dedup_nodes(net) == 1
        assert check_equivalence(net, before) is None

    def test_cascading_dedup(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x1", ["a", "b"], AND2)
        net.add_node("x2", ["a", "b"], AND2)
        net.add_node("y1", ["x1", "b"], XOR2)
        net.add_node("y2", ["x2", "b"], XOR2)
        net.add_node("f", ["y1", "y2"], AND2)
        net.add_output("f")
        before = net.copy()
        merged = dedup_nodes(net)
        assert merged >= 2
        assert check_equivalence(net, before) is None

    def test_cleanup_pipeline(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("na", ["a"], INV)
        net.add_node("x", ["na", "b"], AND2)
        net.add_node("dead", ["a", "b"], XOR2)
        net.add_output("x")
        before = net.copy()
        cleanup_for_lut_count(net)
        # Equivalence on the surviving outputs.
        assert net.output_names == ["x"]
        assert "dead" not in net.node_names()


class TestClbPacking:
    def test_can_pair_rules(self):
        assert can_pair(["a", "b", "c"], ["a", "b", "d"])       # union 4
        assert can_pair(["a", "b", "c", "d"], ["a", "b", "c", "e"])  # union 5
        assert not can_pair(["a", "b", "c", "d"], ["e", "f"])   # union 6
        assert not can_pair(["a", "b", "c", "d", "e"], ["a"])   # 5-input node

    def test_packing_counts(self):
        net = Network("p")
        for pi in ("a", "b", "c", "d", "e"):
            net.add_input(pi)
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("y", ["a", "c"], XOR2)       # pairs with x (union 3)
        net.add_node(
            "z", ["a", "b", "c", "d", "e"], TruthTable.constant(5, 1)
        )  # 5-input: must be alone
        net.add_output("x")
        net.add_output("y")
        net.add_output("z")
        packing = pack_xc3000(net)
        assert packing.num_clbs == 2
        assert ("x", "y") in packing.pairs
        assert "z" in packing.singles

    def test_packing_rejects_wide_nodes(self):
        net = Network("w")
        for j in range(6):
            net.add_input(f"i{j}")
        net.add_node("f", [f"i{j}" for j in range(6)], TruthTable.constant(6, 0))
        net.add_output("f")
        with pytest.raises(ValueError):
            pack_xc3000(net)

    def test_constants_free(self):
        net = Network("c")
        net.add_input("a")
        net.add_constant("one", 1)
        net.add_node("f", ["a", "one"], AND2)
        net.add_output("f")
        assert pack_xc3000(net).num_clbs == 1
