"""Shared test helpers."""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

import pytest

from repro.bdd import BddManager
from repro.boolfunc import TruthTable
from repro.network import Network


def bruteforce_equal(net_a: Network, net_b: Network) -> bool:
    """Exhaustively compare two small networks output-by-output."""
    from repro.network import simulate

    assert sorted(net_a.inputs) == sorted(net_b.inputs)
    for bits in itertools.product([0, 1], repeat=len(net_a.inputs)):
        assignment = dict(zip(net_a.inputs, bits))
        if simulate(net_a, assignment) != simulate(net_b, assignment):
            return False
    return True


def random_bdd(manager: BddManager, num_vars: int, rng: random.Random) -> int:
    """A random function over the first ``num_vars`` manager variables."""
    mask = rng.getrandbits(1 << num_vars)
    return manager.from_truth_table(mask, list(range(num_vars)))


def table_network(name: str, tables: Dict[str, TruthTable], num_inputs: int) -> Network:
    """A flat network: every table reads all ``num_inputs`` PIs."""
    net = Network(name)
    inputs = [net.add_input(f"i{j}") for j in range(num_inputs)]
    for out, table in tables.items():
        net.add_node(f"{out}_n", inputs[: table.num_inputs], table)
        net.add_output(f"{out}_n", out)
    return net


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


# --------------------------------------------------------------------- #
# Replayable randomness: every generation through repro.verify.generators
# is seed-logged; a failing test prints the seeds in its failure header
# so the CI line itself says how to replay (REPRO_SEED=<n> pytest -k ...).
# --------------------------------------------------------------------- #


@pytest.fixture(autouse=True)
def _fresh_seed_log():
    from repro.verify.generators import clear_seed_log

    clear_seed_log()
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    from repro.verify.generators import seed_log

    seeds = seed_log()
    if not seeds:
        return
    lines = ", ".join(f"{gen}(seed={seed})" for gen, seed in seeds)
    header = (
        f"replay: {lines} — rerun with REPRO_SEED=<seed> "
        f"pytest {item.nodeid!r}"
    )
    report.sections.append(("seeds", header))
    report.longrepr = f"{report.longrepr}\n{header}"
