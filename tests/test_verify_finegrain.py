"""The fine-grained checker: pairing, localization, counterexamples."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.mapping import hyde_map, map_per_output
from repro.network import Network, check_equivalence
from repro.verify import (
    Mutation,
    apply_mutation,
    assert_finegrain,
    build_miter,
    finegrain_check,
    miter_satisfiable,
    random_network,
)
from repro.verify.finegrain import DEFAULT_VECTORS


def _mapped(seed: int, flow=hyde_map):
    source = random_network(seed)
    return source, flow(source, k=4, verify="none", pack_clbs=False).network


def test_equivalent_mapping_passes():
    source, mapped = _mapped(2)
    report = finegrain_check(source, mapped)
    assert report.equivalent
    assert not report.failing_outputs and not report.failing_cones
    assert report.outputs == source.output_names
    assert report.num_vectors == DEFAULT_VECTORS


def test_cutpoints_are_real_equivalences():
    """Every reported cut-point must hold as a monolithic equivalence."""
    from repro.network import GlobalBdds

    source, mapped = _mapped(4)
    report = finegrain_check(source, mapped)
    assert report.proven == len(report.cutpoints) > 0
    ga = GlobalBdds(source)
    padded = mapped.copy()
    for pi in source.inputs:
        if not padded.has_signal(pi):
            padded.add_input(pi)
    gm = GlobalBdds(padded, pi_order=source.inputs, manager=ga.manager)
    for cp in report.cutpoints:
        golden_bdd = ga.of(cp.golden)
        mapped_bdd = gm.of(cp.mapped)
        if cp.negated:
            mapped_bdd = ga.manager.apply_not(mapped_bdd)
        assert golden_bdd == mapped_bdd, cp


@pytest.mark.parametrize("seed", [1, 3, 6])
def test_single_fault_localized_with_confirmed_counterexample(seed):
    source, mapped = _mapped(seed)
    mutation = None
    from repro.verify import sample_mutations

    for candidate in sample_mutations(mapped, 10, seed=seed):
        mutant = apply_mutation(mapped, candidate)
        if check_equivalence(mapped, mutant) is not None:
            mutation = candidate
            break
    assert mutation is not None, "could not find an unmasked fault"
    mutant = apply_mutation(mapped, mutation)
    report = finegrain_check(mapped, mutant, seed=seed)
    assert not report.equivalent
    assert report.failing_cones
    for cone in report.failing_cones:
        # Localized: the blamed cone contains the mutated node.
        assert (
            cone.root == mutation.node or mutation.node in cone.cone_nodes
        )
        # Counterexample is a full PI assignment and simulation-confirmed.
        assert set(cone.counterexample) == set(mapped.inputs)
        assert cone.confirmed
        assert cone.golden_value != cone.mapped_value


def test_interface_mismatches_raise():
    source, mapped = _mapped(2)
    extra = mapped.copy()
    extra.add_input("alien_pi")
    extra_node = extra.add_node(
        "alien", [extra.inputs[0], "alien_pi"], TruthTable(2, 0b1000)
    )
    extra.reroute_output(extra.output_names[0], extra_node)
    with pytest.raises(ValueError):
        finegrain_check(source, extra)

    renamed = Network("renamed")
    for pi in source.inputs:
        renamed.add_input(pi)
    renamed.add_node("n", [source.inputs[0]], TruthTable(1, 0b10))
    renamed.add_output("n", "not_an_output")
    with pytest.raises(ValueError):
        finegrain_check(source, renamed)


def test_vacuous_inputs_are_padded():
    """A mapped network that dropped unused PIs still checks cleanly."""
    source = Network("vac")
    for j in range(3):
        source.add_input(f"i{j}")
    source.add_node("n", ["i0"], TruthTable(1, 0b10))
    source.add_output("n", "o")
    mapped = Network("vac_m")
    mapped.add_input("i0")  # i1/i2 dropped as vacuous
    mapped.add_node("m", ["i0"], TruthTable(1, 0b10))
    mapped.add_output("m", "o")
    report = finegrain_check(source, mapped)
    assert report.equivalent


def test_assert_finegrain_raises_with_report():
    source, mapped = _mapped(5, flow=map_per_output)
    assert_finegrain(source, mapped)  # passes silently
    mutant = apply_mutation(
        mapped, Mutation("stuck_output", mapped.node_names()[0], (0,))
    )
    if check_equivalence(mapped, mutant) is None:
        mutant = apply_mutation(
            mapped, Mutation("stuck_output", mapped.node_names()[0], (1,))
        )
    with pytest.raises(AssertionError) as excinfo:
        assert_finegrain(mapped, mutant)
    assert hasattr(excinfo.value, "report")
    assert not excinfo.value.report.equivalent
    assert "cone" in str(excinfo.value)


def test_miter_is_satisfiable_exactly_on_difference():
    source, mapped = _mapped(3)
    out = source.output_names[0]
    clean = build_miter(source, mapped, out)
    assert not miter_satisfiable(clean)
    from repro.verify import sample_mutations

    for candidate in sample_mutations(mapped, 10, seed=7):
        mutant = apply_mutation(mapped, candidate)
        bad_out = check_equivalence(mapped, mutant)
        if bad_out is not None:
            dirty = build_miter(mapped, mutant, bad_out)
            assert miter_satisfiable(dirty)
            return
    pytest.fail("no unmasked mutant found")
