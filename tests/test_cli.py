"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_circuits_listing(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "9sym" in out and "exact" in out

    def test_map_circuit(self, capsys):
        assert main(["map", "z4ml", "--flow", "hyde"]) == 0
        out = capsys.readouterr().out
        assert "z4ml" in out and "LUTs" in out

    def test_map_writes_blif(self, tmp_path, capsys):
        target = tmp_path / "out.blif"
        assert main(
            ["map", "rd73", "--flow", "shannon", "-o", str(target)]
        ) == 0
        text = target.read_text()
        assert ".model" in text and ".end" in text
        from repro.network import check_equivalence, read_blif
        from repro.circuits import build
        assert check_equivalence(read_blif(str(target)), build("rd73")) is None

    def test_blif_round_trip(self, tmp_path, capsys):
        from repro.circuits import build
        from repro.network import write_blif
        source = tmp_path / "in.blif"
        write_blif(build("z4ml"), str(source))
        assert main(["blif", str(source), "--flow", "random"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "nonesuch"])
