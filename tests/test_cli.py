"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_circuits_listing(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "9sym" in out and "exact" in out

    def test_map_circuit(self, capsys):
        assert main(["map", "z4ml", "--flow", "hyde"]) == 0
        out = capsys.readouterr().out
        assert "z4ml" in out and "LUTs" in out

    def test_map_writes_blif(self, tmp_path, capsys):
        target = tmp_path / "out.blif"
        assert main(
            ["map", "rd73", "--flow", "shannon", "-o", str(target)]
        ) == 0
        text = target.read_text()
        assert ".model" in text and ".end" in text
        from repro.network import check_equivalence, read_blif
        from repro.circuits import build
        assert check_equivalence(read_blif(str(target)), build("rd73")) is None

    def test_blif_round_trip(self, tmp_path, capsys):
        from repro.circuits import build
        from repro.network import write_blif
        source = tmp_path / "in.blif"
        write_blif(build("z4ml"), str(source))
        assert main(["blif", str(source), "--flow", "random"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "nonesuch"])


class TestCheckpointCli:
    def test_interrupt_resume_and_journal_subcommand(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        # parent_kill@1 stops after one journaled group -> exit 75.
        assert main(
            ["map", "misex1", "--flow", "hyde", "--checkpoint", ckpt,
             "--inject-faults", "parent_kill@1"]
        ) == 75
        out = capsys.readouterr().out
        assert "interrupted" in out and "--resume" in out

        assert main(
            ["map", "misex1", "--flow", "hyde", "--checkpoint", ckpt,
             "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "[resumed: 1 group(s) replayed" in out

        import glob
        (journal,) = glob.glob(f"{ckpt}/*.journal.jsonl")
        assert main(["journal", journal]) == 0
        out = capsys.readouterr().out
        assert "interrupted (injected_parent_kill)" in out
        assert "verdict: equivalent" in out
        assert main(["journal", journal, "--check"]) == 0
        out = capsys.readouterr().out
        assert "journal ok" in out and "run complete" in out

    def test_journal_check_rejects_corruption(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["map", "z4ml", "--flow", "hyde", "--checkpoint", ckpt,
             "--verify", "none"]
        ) == 0
        capsys.readouterr()
        import glob
        (journal,) = glob.glob(f"{ckpt}/*.journal.jsonl")
        lines = open(journal).read().splitlines()
        # Change a value without refreshing the integrity hash.
        lines[1] = lines[1].replace('"mode":"hyper"', '"mode":"hacked"')
        assert '"hacked"' in lines[1]
        with open(journal, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["journal", journal, "--check"]) == 1
        out = capsys.readouterr().out
        assert "journal:" in out
