"""Tests for duplication analysis and ingredient recovery (Defs 4.2-4.5)."""

from __future__ import annotations

import itertools

import pytest

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence, simulate
from repro.hyper import analyze_duplication, recover_ingredients

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
MUX = TruthTable.from_function(3, lambda s, x, y: y if s else x)


def hyper_like_net() -> Network:
    """A hand-built decomposed hyper-function over PIs {a,b,c} + PPI eta.

    H = eta ? (a & b) : (a ^ c); shared node 'sh' = a & b feeds the
    PPI-dependent mux.
    """
    net = Network("H")
    for pi in ("a", "b", "c", "eta"):
        net.add_input(pi)
    net.add_node("sh", ["a", "b"], AND2)       # shared (no PPI in cone)
    net.add_node("x", ["a", "c"], XOR2)        # shared
    net.add_node("top", ["eta", "x", "sh"], MUX)  # in DS and DC
    net.add_output("top", "H")
    return net


class TestAnalyzeDuplication:
    def test_ds_dc(self):
        net = hyper_like_net()
        info = analyze_duplication(net, ["eta"])
        assert info.duplication_source == {"top"}
        assert info.duplication_cone == {"top"}

    def test_deeper_cone(self):
        net = hyper_like_net()
        net.add_node("post", ["top", "c"], AND2)
        net.add_output("post", "P")
        info = analyze_duplication(net, ["eta"])
        assert info.duplication_cone == {"top", "post"}
        assert info.duplication_source == {"top"}

    def test_dset_layers(self):
        net = Network("two_ppi")
        for pi in ("a", "e0", "e1"):
            net.add_input(pi)
        net.add_node("u", ["a", "e0"], AND2)      # reaches e0 only
        net.add_node("v", ["u", "e1"], XOR2)      # reaches both
        net.add_node("w", ["a", "a" if False else "u"], AND2)  # reaches e0
        net.add_output("v", "H")
        info = analyze_duplication(net, ["e0", "e1"])
        assert info.dset[1] >= {"u"}
        assert "v" in info.dset[2]

    def test_duplication_cost(self):
        net = Network("cost")
        for pi in ("a", "e0", "e1"):
            net.add_input(pi)
        net.add_node("u", ["a", "e0"], AND2)
        net.add_node("v", ["u", "e1"], XOR2)
        net.add_output("v", "H")
        info = analyze_duplication(net, ["e0", "e1"])
        # u in DSet_1 -> 1 extra copy; v in DSet_2 -> (i-1) extra copies
        # with i = 4 ingredients -> 3.
        assert info.duplication_cost(num_ingredients=4) == 1 + 3


class TestRecoverIngredients:
    def test_two_ingredients(self):
        net = hyper_like_net()
        rec = recover_ingredients(
            net,
            "top",
            ["eta"],
            [{"eta": 0}, {"eta": 1}],
            ["f_xor", "f_and"],
        )
        assert sorted(rec.output_names) == ["f_and", "f_xor"]
        assert "eta" not in rec.inputs
        for a, b, c in itertools.product([0, 1], repeat=3):
            out = simulate(rec, {"a": a, "b": b, "c": c})
            assert out["f_and"] == (a & b)
            assert out["f_xor"] == (a ^ c)

    def test_shared_nodes_not_duplicated(self):
        net = hyper_like_net()
        rec = recover_ingredients(
            net, "top", ["eta"], [{"eta": 0}, {"eta": 1}], ["f0", "f1"],
            do_sweep=False,
        )
        # 'sh' and 'x' appear once; 'top' twice (specialised copies).
        names = rec.node_names()
        assert names.count("sh") == 1
        assert "top__f0" in names and "top__f1" in names

    def test_ppi_independent_hyper(self):
        net = Network("noppi")
        for pi in ("a", "b", "eta"):
            net.add_input(pi)
        net.add_node("f", ["a", "b"], AND2)
        net.add_output("f", "H")
        rec = recover_ingredients(
            net, "f", ["eta"], [{"eta": 0}, {"eta": 1}], ["g0", "g1"]
        )
        for a, b in itertools.product([0, 1], repeat=2):
            out = simulate(rec, {"a": a, "b": b})
            assert out["g0"] == out["g1"] == (a & b)

    def test_hyper_output_is_ppi(self):
        net = Network("degenerate")
        net.add_input("a")
        net.add_input("eta")
        rec = recover_ingredients(
            net, "eta", ["eta"], [{"eta": 0}, {"eta": 1}], ["z", "o"]
        )
        out = simulate(rec, {"a": 0})
        assert out["z"] == 0 and out["o"] == 1
