"""Interrupted-then-resumed runs: the headline crash-safety contract.

The acceptance bar from the issue, verified end to end for both
journaled flows at ``jobs=1`` and ``jobs=2``:

* a run stopped by ``parent_kill@N`` (the deterministic stand-in for a
  real SIGTERM — same ``ShutdownRequested`` path, no delivery race)
  raises :class:`~repro.runstate.RunInterrupted` with the journal path;
* resuming produces a network **byte-identical** to an uninterrupted
  journaled run, replays every journaled group, re-executes zero of
  them, and records a positive equivalence verdict;
* changing the decomposition options between runs invalidates every
  task key, so a resume re-executes everything instead of splicing
  stale fragments.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import build
from repro.mapping import hyde_map, map_per_output
from repro.network import check_equivalence, to_blif
from repro.runstate import RunInterrupted, load_journal, open_journal
from repro.testing import FaultPlan

CIRCUIT = "misex1"


def run_flow(flow, journal, jobs=1, faults=None, **kwargs):
    net = build(CIRCUIT)
    return flow(
        net, k=5, jobs=jobs, journal=journal, faults=faults,
        pack_clbs=False, **kwargs,
    )


def journal_records(journal):
    records, problems = load_journal(journal.path)
    assert problems == []
    return records


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize(
    "flow,label",
    [(hyde_map, "hyde"), (map_per_output, "per-output")],
    ids=["hyde", "per-output"],
)
class TestInterruptedThenResumed:
    def test_resume_is_byte_identical(self, tmp_path, flow, label, jobs):
        # Reference: an uninterrupted journaled run (the journal forces
        # the task path, so naming matches what a resumed run produces).
        ref = run_flow(
            flow, open_journal(tmp_path / "ref", CIRCUIT, label, 5), jobs=jobs
        )
        total = len([g for g in ref.groups if g]) if label == "hyde" else None

        # Interrupt after the first journaled group.
        journal = open_journal(tmp_path / "ckpt", CIRCUIT, label, 5)
        with pytest.raises(RunInterrupted) as err:
            run_flow(
                flow, journal, jobs=jobs,
                faults=FaultPlan(parent_kill_after=1),
            )
        assert err.value.journal_path == journal.path
        assert err.value.completed == 1
        records = journal_records(journal)
        groups_before = sum(1 for r in records if r["type"] == "group")
        assert groups_before == 1
        assert any(
            r["type"] == "event" and r["kind"] == "interrupted"
            for r in records
        )
        assert not any(r["type"] == "done" for r in records)

        # Resume: replay the journaled group, execute only the rest.
        resumed_journal = open_journal(
            tmp_path / "ckpt", CIRCUIT, label, 5, resume=True
        )
        assert resumed_journal.num_groups == 1
        result = run_flow(flow, resumed_journal, jobs=jobs)

        assert to_blif(result.network) == to_blif(ref.network)
        assert check_equivalence(build(CIRCUIT), result.network) is None
        info = result.details["journal"]
        assert info["replayed"] == 1  # zero journaled groups re-executed
        if total is not None:
            assert info["executed"] == total - 1

        records = journal_records(resumed_journal)
        verdicts = [r for r in records if r["type"] == "verdict"]
        assert verdicts and verdicts[-1]["equivalent"] is True
        assert verdicts[-1]["replayed"] == 1
        assert verdicts[-1]["engine"] == "bdd"
        assert any(r["type"] == "done" for r in records)

    def test_completed_run_resumes_with_zero_execution(
        self, tmp_path, flow, label, jobs
    ):
        first = run_flow(
            flow, open_journal(tmp_path, CIRCUIT, label, 5), jobs=jobs
        )
        again = run_flow(
            flow,
            open_journal(tmp_path, CIRCUIT, label, 5, resume=True),
            jobs=jobs,
        )
        assert to_blif(again.network) == to_blif(first.network)
        info = again.details["journal"]
        assert info["executed"] == 0
        assert info["replayed"] >= 1


class TestKeyInvalidation:
    def test_option_change_forces_reexecution(self, tmp_path):
        run_flow(hyde_map, open_journal(tmp_path, CIRCUIT, "hyde", 5))
        # Same circuit, same journal — but different decomposition
        # options, so every content-addressed key misses.
        result = run_flow(
            hyde_map,
            open_journal(tmp_path, CIRCUIT, "hyde", 5, resume=True),
            use_dontcares=False,
        )
        info = result.details["journal"]
        assert info["replayed"] == 0
        assert info["executed"] >= 1
        assert check_equivalence(build(CIRCUIT), result.network) is None

    def test_tampered_fragment_forces_reexecution(self, tmp_path):
        journal = open_journal(tmp_path, CIRCUIT, "hyde", 5)
        run_flow(hyde_map, journal)
        # Corrupt one journaled fragment *and* fix up its integrity hash
        # (simulating a plausible-looking but wrong record): the replay
        # validation layer must still reject it and re-execute.
        from repro.runstate.journal import _record_hash

        lines = open(journal.path, encoding="utf-8").read().splitlines()
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record["type"] == "group":
                record["blif"] = record["blif"][: len(record["blif"]) // 2]
                record.pop("h")
                record["h"] = _record_hash(record)
                lines[index] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
                break
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        result = run_flow(
            hyde_map,
            open_journal(tmp_path, CIRCUIT, "hyde", 5, resume=True),
        )
        info = result.details["journal"]
        assert info["executed"] >= 1  # the corrupt record was not spliced
        assert check_equivalence(build(CIRCUIT), result.network) is None


class TestHarnessResume:
    def test_sweep_skips_completed_runs(self, tmp_path):
        from repro.harness import run_experiment

        calls = {"n": 0}

        def counted_hyde(net, k, verify="bdd", **kw):
            calls["n"] += 1
            return hyde_map(net, k, verify=verify, pack_clbs=False, **kw)

        flows = {"hyde": counted_hyde}
        first = run_experiment(
            "exp", flows, ["z4ml"], checkpoint_dir=str(tmp_path)
        )
        assert calls["n"] == 1
        rec = first.circuits[0].flows["hyde"]
        assert rec.error is None

        again = run_experiment(
            "exp", flows, ["z4ml"], checkpoint_dir=str(tmp_path), resume=True
        )
        assert calls["n"] == 1  # journaled run skipped outright
        skipped = again.circuits[0].flows["hyde"]
        assert skipped.lut_count == rec.lut_count
        assert skipped.error is None
