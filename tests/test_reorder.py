"""Tests for BDD variable-order optimisation."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, sift_order, size_with_order, window_permute


def interleaved_and(m: BddManager, pairs: int) -> int:
    """(x0 & x_n) | (x1 & x_{n+1}) | ... — order-sensitive function.

    With the variables interleaved (xi next to its partner) the BDD is
    linear; with partners far apart it is exponential in the pair count.
    """
    from repro.bdd import FALSE
    f = FALSE
    for j in range(pairs):
        f = m.apply_or(
            f, m.apply_and(m.var_at_level(j), m.var_at_level(pairs + j))
        )
    return f


class TestSizeWithOrder:
    def test_good_vs_bad_order(self):
        m = BddManager(8)
        f = interleaved_and(m, 4)
        bad = list(range(8))  # partners 4 apart
        good = [0, 4, 1, 5, 2, 6, 3, 7]  # partners adjacent
        assert size_with_order(m, f, good) < size_with_order(m, f, bad)


class TestSiftOrder:
    def test_reduces_size(self):
        m = BddManager(8)
        f = interleaved_and(m, 4)
        before = m.size(f)
        dst, g, order = sift_order(m, f)
        assert dst.size(g) <= before
        # Sifting should find a near-linear order for this function.
        assert dst.size(g) <= 2 * 4 + 2

    def test_function_preserved(self):
        m = BddManager(6)
        f = interleaved_and(m, 3)
        dst, g, order = sift_order(m, f)
        for bits in range(1 << 6):
            src_assign = {lv: (bits >> lv) & 1 for lv in range(6)}
            dst_assign = {
                dst.level_of(m.name_of(lv)): v for lv, v in src_assign.items()
            }
            assert m.eval(f, src_assign) == dst.eval(g, dst_assign)


class TestWindowPermute:
    def test_window_validation(self):
        m = BddManager(4)
        with pytest.raises(ValueError):
            window_permute(m, m.var_at_level(0), window=1)

    def test_never_worse(self):
        m = BddManager(8)
        f = interleaved_and(m, 4)
        before = m.size(f)
        dst, g, order = window_permute(m, f, window=3)
        assert dst.size(g) <= before

    def test_function_preserved(self):
        m = BddManager(6)
        f = interleaved_and(m, 3)
        dst, g, order = window_permute(m, f, window=3)
        for bits in range(1 << 6):
            src_assign = {lv: (bits >> lv) & 1 for lv in range(6)}
            dst_assign = {
                dst.level_of(m.name_of(lv)): v for lv, v in src_assign.items()
            }
            assert m.eval(f, src_assign) == dst.eval(g, dst_assign)
