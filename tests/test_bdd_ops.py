"""Tests for derived BDD operations, cross-manager transfer and export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    FALSE,
    TRUE,
    BddManager,
    conjoin,
    count_distinct_cofactors,
    cube_of_levels,
    disjoin,
    implies,
    is_contradiction,
    is_tautology,
    minterm,
    reorder,
    swap_rename,
    transfer,
)
from repro.bdd.io import format_cubes, to_cubes, to_dot

N = 4
TABLE_BITS = st.integers(min_value=0, max_value=(1 << (1 << N)) - 1)


class TestDerivedOps:
    def test_conjoin_disjoin_empty(self):
        m = BddManager(2)
        assert conjoin(m, []) == TRUE
        assert disjoin(m, []) == FALSE

    def test_conjoin_chain(self):
        m = BddManager(3)
        literals = [m.var_at_level(i) for i in range(3)]
        f = conjoin(m, literals)
        assert m.sat_count(f, 3) == 1

    def test_disjoin_short_circuit(self):
        m = BddManager(2)
        assert disjoin(m, [TRUE, m.var_at_level(0)]) == TRUE

    def test_minterm_lsb_first(self):
        m = BddManager(3)
        f = minterm(m, [0, 1, 2], 0b101)  # level0=1, level1=0, level2=1
        assert m.eval(f, {0: 1, 1: 0, 2: 1}) == 1
        assert m.sat_count(f, 3) == 1

    def test_cube_of_levels(self):
        m = BddManager(4)
        f = cube_of_levels(m, [1, 3])
        assert m.support(f) == [1, 3]
        assert m.sat_count(f, 4) == 4

    def test_predicates(self):
        m = BddManager(2)
        a = m.var_at_level(0)
        assert is_tautology(m.apply_or(a, m.apply_not(a)))
        assert is_contradiction(m.apply_and(a, m.apply_not(a)))
        assert implies(m, m.apply_and(a, m.var_at_level(1)), a)
        assert not implies(m, a, m.var_at_level(1))

    def test_swap_rename(self):
        m = BddManager(3)
        a, c = m.var_at_level(0), m.var_at_level(2)
        f = m.apply_and(a, m.apply_not(c))
        g = swap_rename(m, f, {0: 2, 2: 0})
        assert g == m.apply_and(c, m.apply_not(a))

    def test_count_distinct_cofactors_parity(self):
        # Parity has exactly 2 distinct cofactors for any bound set.
        m = BddManager(6)
        f = FALSE
        parity = m.var_at_level(0)
        for lv in range(1, 6):
            parity = m.apply_xor(parity, m.var_at_level(lv))
        for bound in ([0, 1], [2, 3, 4], [0, 5]):
            assert count_distinct_cofactors(m, parity, bound) == 2


class TestTransfer:
    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_transfer_identity(self, bits):
        src = BddManager(N)
        dst = BddManager(N)
        f = src.from_truth_table(bits, list(range(N)))
        g = transfer(src, dst, f)
        assert dst.to_truth_table(g, list(range(N))) == bits

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_reorder_preserves_function(self, bits):
        src = BddManager(N)
        f = src.from_truth_table(bits, list(range(N)))
        new_order = [3, 1, 0, 2]
        dst, g = reorder(src, f, new_order)
        # Evaluate both under the same named assignment.
        for bits_a in range(1 << N):
            src_assign = {lv: (bits_a >> lv) & 1 for lv in range(N)}
            dst_assign = {
                dst.level_of(src.name_of(lv)): v for lv, v in src_assign.items()
            }
            assert src.eval(f, src_assign) == dst.eval(g, dst_assign)

    def test_transfer_with_level_map(self):
        src = BddManager(2)
        dst = BddManager(4)
        f = src.apply_and(src.var_at_level(0), src.var_at_level(1))
        g = transfer(src, dst, f, {0: 2, 1: 3})
        assert dst.support(g) == [2, 3]


class TestIo:
    def test_to_dot_mentions_vars(self):
        m = BddManager(0)
        m.add_var("sel")
        m.add_var("data")
        f = m.apply_and(m.var("sel"), m.var("data"))
        dot = to_dot(m, f)
        assert "sel" in dot and "data" in dot and "digraph" in dot

    def test_format_cubes(self):
        m = BddManager(0)
        m.add_var("a")
        m.add_var("b")
        assert format_cubes(m, TRUE) == "1"
        assert format_cubes(m, FALSE) == "0"
        text = format_cubes(m, m.apply_diff(m.var("a"), m.var("b")))
        assert "a" in text and "!b" in text

    def test_to_cubes_disjoint_cover(self):
        m = BddManager(3)
        f = m.apply_or(m.var_at_level(0), m.var_at_level(1))
        cubes = to_cubes(m, f)
        total = sum(1 << (3 - len(c)) for c in cubes)
        assert total == m.sat_count(f, 3)
