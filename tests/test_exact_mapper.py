"""Differential battery for the exact-mapping optimality oracle.

Four layers of evidence that :func:`repro.exact.exact_map` is what it
claims — a *proof procedure*, not a heuristic:

1. An exhaustive sweep over all 222 NPN classes of ≤4-input functions
   (the orbit enumeration covers every one of the 65536 truth tables):
   at ``k >= 4`` every non-trivial class costs exactly one LUT, and the
   constant / projection classes cost zero.
2. Random hyde-mapped cones cross-checked three ways: the oracle never
   exceeds the heuristic, its witness is BDD-equivalent to the cone,
   and an NPN-cache hit reconstructs a byte-identical witness.
3. Cache semantics: hit and miss byte-identical, NPN variants of one
   class share a single stored row.
4. A mutation battery (``repro.verify.mutate``): perturbing a cone
   either shifts the proven optimum or fails equivalence — a fault is
   never silent on both channels at once.
"""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.exact import (
    ExactCache,
    cone_spec,
    exact_map,
)
from repro.mapping import hyde_map
from repro.mapping.lut import count_luts
from repro.network import check_equivalence, parse_blif, to_blif
from repro.network.transform import extract_cone
from repro.verify.generators import random_network, resolve_seed
from repro.verify.mutate import apply_mutation, sample_mutations

# ------------------------------------------------------------------ #
# 1. Exhaustive NPN sweep of every ≤4-input function
# ------------------------------------------------------------------ #

# Projection masks for 4 inputs: PROJ4[j] is the table of f = x_j.
_PROJ4 = [
    sum(((m >> j) & 1) << m for m in range(16)) for j in range(4)
]


def _npn_representatives_4():
    """Minimal representative of every NPN orbit of 4-input functions.

    Orbit BFS over cheap mask-level generators (single input flips,
    adjacent input transpositions, output complement) — these generate
    the full ``4! * 2^4 * 2`` group, and walking orbits over all 65536
    masks is far cheaper than canonicalizing each mask independently.
    """
    flips = [[m ^ (1 << j) for m in range(16)] for j in range(4)]
    swaps = []
    for i in range(3):
        pos = []
        for m in range(16):
            lo, hi = (m >> i) & 1, (m >> (i + 1)) & 1
            pos.append(m if lo == hi else m ^ (1 << i) ^ (1 << (i + 1)))
        swaps.append(pos)
    generators = flips + swaps

    def shuffle(mask, pos):
        out = 0
        for m in range(16):
            if (mask >> m) & 1:
                out |= 1 << pos[m]
        return out

    seen = bytearray(1 << 16)
    reps = []
    for mask in range(1 << 16):
        if seen[mask]:
            continue
        seen[mask] = 1
        frontier = [mask]
        smallest = mask
        while frontier:
            cur = frontier.pop()
            neighbours = [shuffle(cur, pos) for pos in generators]
            neighbours.append(cur ^ 0xFFFF)
            for nb in neighbours:
                if not seen[nb]:
                    seen[nb] = 1
                    frontier.append(nb)
                    if nb < smallest:
                        smallest = nb
        reps.append(smallest)
    return reps


def _expected_luts_4(mask: int) -> int:
    """Ground truth for the sweep: 0 LUTs iff constant or a *positive*
    wire.  A negated wire costs one LUT — the one class where the LUT
    count is not NPN-invariant, which is exactly why the oracle resolves
    trivial cases before canonical keying."""
    if mask in (0, 0xFFFF):
        return 0
    if mask in _PROJ4:
        return 0
    return 1


def test_npn_sweep_all_222_classes():
    reps = _npn_representatives_4()
    assert len(reps) == 222  # the classical count of 4-input NPN classes
    with ExactCache(":memory:") as cache:
        zero = 0
        for mask in reps:
            spec = TruthTable(4, mask)
            res = exact_map(spec, 4, cache=cache, name=f"npn_{mask:04x}")
            expected = _expected_luts_4(mask)
            assert res.luts == expected, (
                f"class {mask:#06x}: exact says {res.luts} LUTs, "
                f"ground truth {expected}"
            )
            assert res.depth == expected
            if expected == 0:
                zero += 1
        # Exactly one representative is free: the constant class.  The
        # wire class's minimal representative is the *negated* wire
        # (0x00ff = !x3), which costs one LUT.
        assert zero == 1
    # The polarity asymmetry, spelled out: a wire is free, its
    # complement is not — same NPN class, different LUT count.
    assert exact_map(TruthTable(4, _PROJ4[0]), 4).luts == 0
    assert exact_map(TruthTable(4, _PROJ4[0] ^ 0xFFFF), 4).luts == 1


# ------------------------------------------------------------------ #
# 2. Random hyde cones, cross-checked three ways
# ------------------------------------------------------------------ #

_CONE_SEEDS = (3, 6, 11, 14)


def test_random_hyde_cones_never_beat_the_oracle():
    """exact ≤ heuristic, witness equivalent, on seeded fuzz networks.

    Scoring is gated to cones the deepening decides without reaching a
    DPLL search (``heuristic_luts <= 3`` under an upper bound only ever
    exercises the trivial N=1 and bipartite N=2 rungs), so the test is
    budget-free and deterministic on any machine.  ``REPRO_SEED``
    overrides the seed list through :func:`resolve_seed` as usual.
    """
    scored = 0
    with ExactCache(":memory:") as cache:
        for seed in _CONE_SEEDS:
            net = random_network(seed)
            mapped = hyde_map(
                net, k=5, verify="none", pack_clbs=False
            ).network
            for out in mapped.output_names:
                cone = extract_cone(mapped, [out], name=f"{out}_cone")
                if len(cone.inputs) > 8:
                    continue
                heuristic = count_luts(cone, 5)
                if not 1 <= heuristic <= 3:
                    continue
                spec, support = cone_spec(cone, out)
                res = exact_map(
                    spec,
                    5,
                    cache=cache,
                    upper_bound=heuristic,
                    upper_witness=cone,
                    input_names=support,
                    output_name=out,
                )
                assert res.luts <= heuristic
                padded = res.network.copy()
                for pi in cone.inputs:
                    if not padded.has_signal(pi):
                        padded.add_input(pi)
                assert check_equivalence(cone, padded) is None
                scored += 1
    assert scored >= 8  # the gate must not silently skip everything


# ------------------------------------------------------------------ #
# 3. Cache semantics
# ------------------------------------------------------------------ #

_XOR6 = TruthTable.from_function(
    6, lambda a, b, c, d, e, f: a ^ b ^ c ^ d ^ e ^ f
)


def test_cache_hit_witness_is_byte_identical(tmp_path):
    names = list("abcdef")
    with ExactCache(str(tmp_path / "exact.db")) as cache:
        first = exact_map(
            _XOR6, 5, cache=cache, input_names=names, name="xor6"
        )
        assert first.source == "search" and not first.cache_hit
        assert first.luts == 2  # 6 inputs cannot fit one 5-LUT
        second = exact_map(
            _XOR6, 5, cache=cache, input_names=names, name="xor6"
        )
        assert second.cache_hit and second.source == "cache"
        assert (second.luts, second.depth) == (first.luts, first.depth)
        assert to_blif(second.network) == to_blif(first.network)
        stats = cache.stats()
    assert stats["hits"] == 1


def test_npn_variants_share_one_cached_class():
    """Permuting / negating inputs must hit the same stored row."""
    xor5 = TruthTable.from_function(
        5, lambda a, b, c, d, e: a ^ b ^ c ^ d ^ e
    )
    # Same class: permuted inputs and a complemented input (for XOR,
    # flipping one input complements the output — an N·P·N move).
    variant = TruthTable.from_function(
        5, lambda a, b, c, d, e: e ^ d ^ c ^ b ^ (1 - a)
    )
    with ExactCache(":memory:") as cache:
        first = exact_map(xor5, 4, cache=cache, name="xor5")
        second = exact_map(variant, 4, cache=cache, name="xor5var")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.luts == first.luts
        assert cache.stats()["rows"] == 1


# ------------------------------------------------------------------ #
# 4. Mutation battery: faults are never silent on both channels
# ------------------------------------------------------------------ #

# A 5-input cone whose exact cost at k=4 is 2 LUTs:
# f = (a ^ b ^ c) ^ (d & e).
_MUT_CONE = """.model mutcone
.inputs a b c d e
.outputs f
.names a b c t1
100 1
010 1
001 1
111 1
.names t1 d e f
10- 1
1-0 1
011 1
.end
"""


def test_mutations_shift_optimum_or_fail_equivalence():
    cone = parse_blif(_MUT_CONE)
    out = cone.output_names[0]
    spec, support = cone_spec(cone, out)
    base = exact_map(spec, 4, input_names=support, output_name=out)
    assert base.luts == 2  # 5 inputs cannot fit one 4-LUT

    seed = resolve_seed(5, "exact_mutation_battery")
    detected = 0
    for mutation in sample_mutations(cone, 12, seed=seed):
        mutant = apply_mutation(cone, mutation)
        mspec, msupport = cone_spec(mutant, out)
        res = exact_map(
            mspec, 4, input_names=msupport, output_name=out,
            budget_seconds=60.0,
        )
        padded = res.network.copy()
        for pi in cone.inputs:
            if not padded.has_signal(pi):
                padded.add_input(pi)
        if check_equivalence(cone, mutant) is None:
            # Function-preserving fault: the oracle must be oblivious —
            # same proven optimum, witness equivalent to the original.
            assert (res.luts, res.depth) == (base.luts, base.depth), (
                mutation.describe()
            )
            assert check_equivalence(cone, padded) is None
        else:
            # Function-changing fault: the witness follows the mutant,
            # so checking it against the *original* must fail.  A fault
            # that changed the function but produced a witness equal to
            # the original would be silent on both channels — the bug
            # this battery exists to catch.
            detected += 1
            assert check_equivalence(mutant, padded) is None, (
                mutation.describe()
            )
            assert check_equivalence(cone, padded) is not None, (
                mutation.describe()
            )
    assert detected >= 6  # most single-point faults change the function


# ------------------------------------------------------------------ #
# Guard rails
# ------------------------------------------------------------------ #

def test_rejects_overwide_specs():
    wide = TruthTable.constant(11, 0)
    with pytest.raises(ValueError, match="at most"):
        exact_map(wide, 5)


def test_delay_cost_is_a_separate_cache_row():
    with ExactCache(":memory:") as cache:
        exact_map(_XOR6, 5, cache=cache, cost="area")
        exact_map(_XOR6, 5, cache=cache, cost="delay")
        assert cache.stats()["rows"] == 2
