"""Additional rendering tests for the harness report module."""

from __future__ import annotations

from repro.harness import (
    CircuitRecord,
    ExperimentRecord,
    FlowRecord,
    render_comparison,
    render_table,
)


def test_table_alignment_and_missing():
    text = render_table(
        "title",
        ["name", "value"],
        [["abc", 1], ["defgh", None], ["x", 123456]],
    )
    lines = text.splitlines()
    assert lines[0] == "title"
    # All data rows share the same width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_comparison_marks_standins():
    rec = ExperimentRecord("exp", "lut_count")
    exact = CircuitRecord("9sym", 9, 1, True)
    exact.flows["hyde"] = FlowRecord("hyde", lut_count=6)
    standin = CircuitRecord("vg2", 25, 8, False)
    standin.flows["hyde"] = FlowRecord("hyde", lut_count=15)
    rec.circuits.extend([exact, standin])
    text = render_comparison(
        rec, ["hyde"], {"9sym": {"hyde": 6}, "vg2": {"hyde": 18}},
        {"hyde": "hyde"}, "cmp",
    )
    assert "vg2*" in text
    assert "9sym" in text and "9sym*" not in text


def test_comparison_partial_paper_data():
    rec = ExperimentRecord("exp", "lut_count")
    crec = CircuitRecord("novel", 4, 1, True)
    crec.flows["hyde"] = FlowRecord("hyde", lut_count=3)
    rec.circuits.append(crec)
    text = render_comparison(rec, ["hyde"], {}, {"hyde": "hyde"}, "cmp")
    assert "novel" in text and "-" in text
