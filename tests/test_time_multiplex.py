"""Tests for the time-multiplexed mapping API."""

from __future__ import annotations

import itertools

import pytest

from repro.bdd import BddManager, build_cube
from repro.mapping import map_time_multiplexed
from repro.network import is_k_feasible, simulate


def _contexts(manager: BddManager, names):
    v = [manager.var(n) for n in names]
    parity = v[0]
    for x in v[1:]:
        parity = manager.apply_xor(parity, x)
    conj = v[0]
    for x in v[1:]:
        conj = manager.apply_and(conj, x)
    mux_like = manager.ite(
        v[0], manager.apply_and(v[1], v[2]), manager.apply_or(v[3], v[4])
    )
    return [("parity", parity), ("conj", conj), ("mux", mux_like)]


class TestTimeMultiplex:
    def _build(self, k=5):
        manager = BddManager()
        names = [f"d{j}" for j in range(5)]
        for n in names:
            manager.add_var(n)
        contexts = _contexts(manager, names)
        result = map_time_multiplexed(manager, contexts, names, k=k)
        return manager, names, contexts, result

    def test_network_is_feasible(self):
        _, _, _, result = self._build()
        assert is_k_feasible(result.network, 5)

    def test_mode_codes_distinct(self):
        _, _, _, result = self._build()
        seen = {
            tuple(sorted(code.items()))
            for code in result.context_codes.values()
        }
        assert len(seen) == 3

    def test_each_context_recovered_by_simulation(self):
        manager, names, contexts, result = self._build()
        for cname, bdd in contexts:
            code = result.mode_assignment(cname)
            for bits in itertools.product([0, 1], repeat=len(names)):
                assignment = dict(zip(names, bits))
                assignment.update(code)
                want = manager.eval(
                    bdd, {manager.level_of(n): v for n, v in zip(names, bits)}
                )
                assert simulate(result.network, assignment)["y"] == want

    def test_duplication_avoided_reported(self):
        _, _, _, result = self._build()
        assert result.spatial_duplication_avoided >= 1

    def test_verification_catches_corruption(self):
        manager = BddManager()
        names = [f"d{j}" for j in range(5)]
        for n in names:
            manager.add_var(n)
        contexts = _contexts(manager, names)[:2]
        result = map_time_multiplexed(
            manager, contexts, names, k=5, verify=False
        )
        # Corrupt one LUT, then re-run the internal verifier.
        from repro.mapping.time_multiplex import _verify_contexts
        victim = next(n for n in result.network.nodes() if n.table.num_inputs)
        result.network.replace_node(
            victim.name, victim.fanins, ~victim.table
        )
        with pytest.raises(AssertionError):
            _verify_contexts(
                manager, result.network, contexts, names, result.context_codes
            )
