"""Service-grade battery for the mapping daemon.

Covers the wire protocol end to end (socket round trip, fragment
streaming), the result store's trust boundaries (corrupt and stale rows
must be rejected and recomputed, never spliced), concurrency
determinism, drain-on-signal semantics, and the warm-pool hygiene rule
that request N's faults and counters must not leak into request N+1.

Most tests run the daemon in a background thread of this process
(``graceful_shutdown`` is a deliberate no-op off the main thread, so
signal handling simply stays disabled); the signal-semantics tests use
a real subprocess, because exit codes and SIGTERM delivery are the
thing under test there.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time

import pytest

from repro.circuits import build
from repro.mapping import hyde_map
from repro.network import parse_blif, to_blif
from repro.service import (
    MappingDaemon,
    MappingService,
    ResultStore,
    ServiceClient,
    ServiceError,
    WarmPool,
    schema_version,
)
from repro.service.store import _row_hash
from repro.testing import hold_store_lock

MISEX1 = to_blif(build("misex1"))
RD73 = to_blif(build("rd73"))


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


class _DaemonThread:
    """An in-process daemon on a background thread, torn down reliably."""

    def __init__(self, tmp_path, jobs: int = 1, **kwargs):
        self.daemon = MappingDaemon(
            str(tmp_path / "cache.db"), jobs=jobs, **kwargs
        )
        self.thread = threading.Thread(
            target=self.daemon.serve, kwargs={"quiet": True}, daemon=True
        )
        self.thread.start()
        self.client = ServiceClient(
            self.daemon.host, self.daemon.port, timeout=120.0
        )

    def stop(self) -> None:
        try:
            self.client.shutdown()
        except (ServiceError, OSError):
            pass  # already stopped by the test body
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon failed to stop"


@pytest.fixture
def serial_daemon(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=1)
    yield harness
    harness.stop()


def _serve_argv(store, info, *extra):
    return [
        sys.executable, "-m", "repro.cli", "serve",
        "--store", str(store), "--info", str(info), "--quiet", *extra,
    ]


def _subprocess_env(**overrides):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(overrides)
    return env


def _wait_for_info(path, proc, timeout=30.0) -> ServiceClient:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early with {proc.returncode}"
            )
        if os.path.exists(path):
            return ServiceClient.from_info(str(path), timeout=120.0)
        time.sleep(0.05)
    raise AssertionError("daemon never published its endpoint")


# --------------------------------------------------------------------- #
# End-to-end round trip and cache semantics
# --------------------------------------------------------------------- #


def test_socket_round_trip_misex1(serial_daemon):
    pong = serial_daemon.client.ping()
    assert pong["type"] == "pong"
    assert pong["schema"] == schema_version()

    result = serial_daemon.client.submit_blif(MISEX1)
    local = hyde_map(parse_blif(MISEX1), 5, verify="bdd")
    assert result["ok"] is True
    assert result["luts"] == local.lut_count
    assert result["clbs"] == local.clb_count
    # The mapped network itself travels back and parses.
    assert parse_blif(result["blif"]).output_names == [
        out for out, _ in local.network.outputs
    ] or sorted(parse_blif(result["blif"]).output_names) == sorted(
        o for o, _ in local.network.outputs
    )
    # Fragment stream: one record per group, keys are real task keys.
    assert result["fragments"], "no fragment records streamed"
    for fragment in result["fragments"]:
        assert fragment["cached"] is False
        assert len(fragment["key"]) == 32
        int(fragment["key"], 16)
        parse_blif(fragment["blif"])
    assert result["cache"] == {
        "hits": 0, "misses": len(result["fragments"]), "rejected": 0,
    }


def test_repeat_submission_hits_cache_byte_identical(serial_daemon):
    first = serial_daemon.client.submit_blif(MISEX1)
    second = serial_daemon.client.submit_blif(MISEX1)
    groups = len(first["fragments"])
    assert second["cache"] == {"hits": groups, "misses": 0, "rejected": 0}
    assert all(f["cached"] is True for f in second["fragments"])
    # The cache-hit path must be indistinguishable from the miss path:
    # same fragment bytes, same keys, same final network bytes.
    assert [f["key"] for f in second["fragments"]] == [
        f["key"] for f in first["fragments"]
    ]
    assert [f["blif"] for f in second["fragments"]] == [
        f["blif"] for f in first["fragments"]
    ]
    assert second["blif"] == first["blif"]
    assert second["luts"] == first["luts"]

    stats = serial_daemon.client.stats()
    assert stats["cache"]["hits"] == groups
    assert stats["cache"]["misses"] == groups
    assert stats["latency"]["maps"] == 2
    assert stats["store"]["current_rows"] == groups


def test_unknown_ops_and_bad_requests_get_error_records(serial_daemon):
    records = list(serial_daemon.client.request({"op": "frobnicate"}))
    assert records[-1]["type"] == "error"
    with pytest.raises(ServiceError, match="blif"):
        serial_daemon.client.submit_blif("")
    with pytest.raises(ServiceError, match="flow"):
        serial_daemon.client.submit_blif(MISEX1, flow="nope")
    with pytest.raises(ServiceError, match="policy"):
        serial_daemon.client.submit_blif(
            MISEX1, policy={"not_a_field": 1}
        )
    # The daemon survives all of that.
    assert serial_daemon.client.ping()["type"] == "pong"


# --------------------------------------------------------------------- #
# Store trust boundaries
# --------------------------------------------------------------------- #


def test_torn_row_is_rejected_and_recomputed(tmp_path):
    path = str(tmp_path / "store.db")
    with ResultStore(path) as store:
        before = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        keys = [f["key"] for f in before.details["fragments"]]
        # Tear one row: flip its payload without fixing the row hash.
        store._conn.execute(
            "UPDATE results SET blif = blif || '\n' WHERE key = ?",
            (keys[0],),
        )
        store._conn.commit()

        after = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        assert after.lut_count == before.lut_count
        # The torn row failed its integrity hash: deleted, recomputed.
        assert store.rejected_rows == 1
        assert after.details["cache"]["misses"] == 1
        assert after.details["cache"]["hits"] == len(keys) - 1
    # Third run: the recomputed row serves cleanly again.
    with ResultStore(path) as store:
        final = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        assert final.details["cache"] == {
            "hits": len(keys), "misses": 0, "rejected": 0,
        }
        assert final.lut_count == before.lut_count


def test_wrong_content_row_is_rejected_by_revalidation(tmp_path):
    """A hash-consistent row with the *wrong fragment* must not splice.

    This models a buggy writer rather than bit rot: the integrity hash
    passes, so only the replay validation in the dispatch loop stands
    between the bad row and the output network.
    """
    path = str(tmp_path / "store.db")
    with ResultStore(path) as store:
        before = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        frags = before.details["fragments"]
        assert len(frags) >= 2, "need two groups to cross-plant rows"
        # Plant group 1's fragment under group 0's key, with a valid
        # row hash and the verified flag cleared.
        row = store._conn.execute(
            "SELECT info, seconds FROM results WHERE key = ?",
            (frags[0]["key"],),
        ).fetchone()
        wrong_blif = frags[1]["blif"]
        h = _row_hash(
            frags[0]["key"], store.schema, wrong_blif, row[0], row[1]
        )
        store._conn.execute(
            "UPDATE results SET blif = ?, verified = 0, h = ? "
            "WHERE key = ?",
            (wrong_blif, h, frags[0]["key"]),
        )
        store._conn.commit()

        after = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        assert after.lut_count == before.lut_count
        assert after.details["cache"]["rejected"] == 1
        assert after.details["cache"]["misses"] == 1
        assert to_blif(after.network) == to_blif(before.network)


def test_stale_schema_rows_miss_and_prune(tmp_path):
    path = str(tmp_path / "store.db")
    with ResultStore(path) as store:
        hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        rows = store.stats()["current_rows"]
        assert rows > 0
        # Pretend every row was written by an older key schema.
        store._conn.execute("UPDATE results SET schema = 'ancient'")
        store._conn.commit()

        stats = store.stats()
        assert stats["stale_rows"] == rows
        assert stats["current_rows"] == 0

        again = hyde_map(parse_blif(MISEX1), 5, verify="none", cache=store)
        assert again.details["cache"]["hits"] == 0
        assert again.details["cache"]["misses"] == rows
        # The recompute re-stamped every key with the current schema.
        stats = store.stats()
        assert stats["stale_rows"] == 0
        assert stats["current_rows"] == rows

        # prune_stale reclaims rows that nothing recomputes.
        store._conn.execute("UPDATE results SET schema = 'ancient'")
        store._conn.commit()
        assert store.prune_stale() == rows
        assert store.stats()["rows"] == 0


def test_store_validate_flags_corruption(tmp_path):
    path = str(tmp_path / "store.db")
    with ResultStore(path) as store:
        hyde_map(parse_blif(RD73), 5, verify="none", cache=store)
        assert store.validate() == []
        store._conn.execute(
            "UPDATE results SET blif = 'not blif at all' "
            "WHERE key = (SELECT key FROM results LIMIT 1)"
        )
        store._conn.commit()
        problems = store.validate()
        assert problems, "corruption went undetected"


def test_eviction_keeps_most_recent_rows(tmp_path):
    with ResultStore(str(tmp_path / "s.db"), max_rows=2) as store:
        store.put("a" * 32, ".model m\n.end\n")
        store.put("b" * 32, ".model m\n.end\n")
        assert store.get("a" * 32) is not None  # refresh a's recency
        store.put("c" * 32, ".model m\n.end\n")
        assert store.stats()["rows"] == 2
        assert store.get("b" * 32) is None  # LRU victim
        assert store.get("a" * 32) is not None
        assert store.get("c" * 32) is not None


def test_concurrent_writers_racing_same_key_under_lock_pressure(tmp_path):
    """Independent store connections hammering ``put`` on one key.

    This is the service-layer race: several daemon requests (or a
    daemon plus a CLI run) land the same content-addressed fragment at
    once while a third connection holds SQLite's write lock.  Every
    writer must come out clean — ``put`` either retries through the
    ``database is locked`` window or counts the failure — and the row
    that survives must be intact and servable.
    """
    path = str(tmp_path / "race.db")
    key = "d" * 32
    blif = ".model race\n.end\n"
    # Tiny busy_timeout so lock contention actually surfaces as
    # OperationalError instead of being absorbed by sqlite's own wait.
    stores = [
        ResultStore(path, busy_timeout=0.005, put_retries=8)
        for _ in range(3)
    ]
    acquired = threading.Event()
    locker = threading.Thread(
        target=hold_store_lock, args=(path, 0.6, acquired)
    )
    locker.start()
    assert acquired.wait(timeout=10.0), "lock holder never got the lock"

    failures = []

    def _hammer(store):
        for _ in range(20):
            try:
                store.put(key, blif)
            except sqlite3.OperationalError as exc:
                # Allowed only if the store *counted* it (budget spent);
                # a silent raw escape is the bug under test.
                failures.append(exc)

    threads = [
        threading.Thread(target=_hammer, args=(s,)) for s in stores
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    locker.join(timeout=10)

    assert not failures, f"put leaked raw lock errors: {failures}"
    retried = sum(s.lock_retries for s in stores)
    assert retried >= 1, "no writer ever saw the held write lock"
    # Whoever won, the row must be whole: correct bytes, clean hash.
    for store in stores:
        row = store.get(key)
        assert row is not None and row["blif"] == blif
    assert stores[0].validate() == []
    for store in stores:
        store.close()


# --------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------- #


def test_concurrent_clients_get_deterministic_results(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=1, max_concurrent=2)
    try:
        results = [None] * 6
        errors = []

        def _client(i, blif):
            try:
                client = ServiceClient(
                    harness.daemon.host, harness.daemon.port, timeout=120.0
                )
                results[i] = client.submit_blif(blif)
            except Exception as exc:  # noqa: BLE001 - collected for report
                errors.append((i, exc))

        # Six clients, two circuits, racing onto a 2-slot daemon: the
        # extra clients must queue, not fail, and every client of the
        # same circuit must get byte-identical output.
        threads = [
            threading.Thread(
                target=_client, args=(i, MISEX1 if i % 2 == 0 else RD73)
            )
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not errors, f"client failures: {errors}"
        assert all(r is not None for r in results)
        misex = [r for i, r in enumerate(results) if i % 2 == 0]
        rd73 = [r for i, r in enumerate(results) if i % 2 == 1]
        assert len({r["blif"] for r in misex}) == 1
        assert len({r["blif"] for r in rd73}) == 1
        assert len({r["luts"] for r in misex}) == 1
        assert len({r["luts"] for r in rd73}) == 1
        # And the daemon is still coherent afterwards.
        stats = harness.client.stats()
        assert stats["requests"] >= 6
        assert stats["errors"] == 0
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Warm-pool hygiene: no fault or counter leakage between requests
# --------------------------------------------------------------------- #


def test_back_to_back_requests_do_not_leak_faults_or_counters(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=2)
    try:
        # Request 1: sabotage group 0.  The ladder recovers it, but the
        # pool is now suspect and must be recycled before reuse.
        hurt = harness.client.submit_blif(MISEX1, faults="crash@0")
        assert hurt["degraded"], "injected crash left no degraded record"
        assert hurt["luts"] == hyde_map(parse_blif(MISEX1), 5).lut_count
        pool_stats = harness.client.stats()["pool"]
        assert pool_stats["recycles"] >= 1, (
            "fault-injected request did not recycle the warm pool"
        )

        # Request 2, different circuit: a leaked fault plan would crash
        # group 0 again; leaked counters would show cache hits from
        # request 1.  Both must read fresh.
        clean = harness.client.submit_blif(RD73)
        assert clean["degraded"] == []
        assert clean["cache"]["hits"] == 0
        assert clean["cache"]["rejected"] == 0
        assert clean["luts"] == hyde_map(parse_blif(RD73), 5).lut_count

        # Request 3, repeat: pure cache hits, zero executions, and the
        # per-request counters again start from zero rather than
        # accumulating across the warm pool's lifetime.
        repeat = harness.client.submit_blif(RD73)
        assert repeat["degraded"] == []
        assert repeat["cache"]["misses"] == 0
        assert repeat["cache"]["hits"] == len(repeat["fragments"])
        assert all(f["cached"] for f in repeat["fragments"])
        assert repeat["blif"] == clean["blif"]
    finally:
        harness.stop()


def test_warm_pool_recycles_only_when_idle():
    pool = WarmPool(workers=2)
    try:
        first = pool.acquire()
        second = pool.acquire()
        assert second is first or (first is None and second is None)
        pool.mark_dirty()
        assert pool.recycles == 0, "recycled under an in-flight request"
        pool.release()
        assert pool.recycles == 0
        pool.release()  # last checkout returns -> now it may recycle
        if first is not None:
            assert pool.recycles == 1
            third = pool.acquire()
            assert third is not first
            pool.release()
    finally:
        pool.close()
    with pytest.raises(RuntimeError):
        pool.acquire()


# --------------------------------------------------------------------- #
# Signal semantics (real subprocesses: exit codes are the contract)
# --------------------------------------------------------------------- #


def test_client_shutdown_op_exits_zero(tmp_path):
    info = tmp_path / "svc.json"
    proc = subprocess.Popen(
        _serve_argv(tmp_path / "cache.db", info, "--jobs", "1"),
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        client = _wait_for_info(info, proc)
        result = client.submit_blif(RD73)
        assert result["ok"] is True
        client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert not info.exists(), "endpoint file not cleaned up"


def test_sigterm_mid_request_drains_and_exits_75(tmp_path):
    info = tmp_path / "svc.json"
    proc = subprocess.Popen(
        _serve_argv(tmp_path / "cache.db", info, "--jobs", "1"),
        # The delay hook holds every map request open for one second —
        # a deterministic window to land the signal mid-request.
        env=_subprocess_env(REPRO_SERVICE_DELAY="1.0"),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        client = _wait_for_info(info, proc)
        outcome = {}

        def _submit():
            try:
                outcome["result"] = client.submit_blif(MISEX1)
            except Exception as exc:  # noqa: BLE001 - asserted below
                outcome["error"] = exc

        worker = threading.Thread(target=_submit)
        worker.start()
        time.sleep(0.4)  # request is admitted and sitting in the delay
        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=60)
        assert proc.wait(timeout=60) == 75  # EX_TEMPFAIL after drain
        # The in-flight request ran to completion before exit: the
        # client holds a full result, not a torn connection.
        assert "error" not in outcome, outcome.get("error")
        result = outcome["result"]
        assert result["ok"] is True
        assert result["luts"] == hyde_map(parse_blif(MISEX1), 5).lut_count
        assert result["fragments"]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # The drained request's work was persisted on the way out.
    with ResultStore(str(tmp_path / "cache.db")) as store:
        assert store.stats()["current_rows"] >= 1
        assert store.validate() == []
