"""Tests for the encoding chart and packing."""

from __future__ import annotations

import pytest

from repro.decompose import EncodingChart, pack_chart


class TestEncodingChart:
    def test_place_and_lookup(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 1)
        chart.place(1, 1, 0)
        assert chart.position_of(0) == (0, 1)
        assert chart.position_of(1) == (1, 0)
        assert sorted(chart.placed_classes()) == [0, 1]

    def test_double_placement_rejected(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 0)
        with pytest.raises(ValueError):
            chart.place(1, 0, 0)

    def test_missing_class_rejected(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 0)
        with pytest.raises(KeyError):
            chart.position_of(3)

    def test_codes(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 0)
        chart.place(1, 0, 1)
        chart.place(2, 1, 0)
        # alpha 0 carries the column bit, alpha 1 the row bit.
        codes = chart.codes(3, [0], [1])
        assert codes[0] == {0: 0, 1: 0}
        assert codes[1] == {0: 1, 1: 0}
        assert codes[2] == {0: 0, 1: 1}

    def test_codes_injective(self):
        chart = EncodingChart.empty(2, 4)
        for i in range(6):
            chart.place(i, i // 4, i % 4)
        codes = chart.codes(6, [0, 1], [2])
        seen = {tuple(sorted(c.items())) for c in codes}
        assert len(seen) == 6

    def test_codes_missing_class(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 0)
        with pytest.raises(ValueError):
            chart.codes(2, [0], [1])

    def test_insufficient_bits(self):
        chart = EncodingChart.empty(4, 2)
        with pytest.raises(ValueError):
            chart.codes(0, [0], [])  # 1 row bit cannot address 4 rows

    def test_render(self):
        chart = EncodingChart.empty(2, 2)
        chart.place(0, 0, 0)
        text = chart.render(labels=["fc0"])
        assert "fc0" in text and "-" in text


class TestPackChart:
    def test_paper_final_layout(self):
        # Example 3.2's final state: 4 row sets, column sets A (4 members)
        # and B (4 members) plus singletons {0} and {9}.
        row_sets = [[7, 8], [5, 6], [2, 4], [0, 1, 3, 9]]
        column_set_of_class = {
            3: 0, 4: 0, 6: 0, 8: 0,
            1: 1, 2: 1, 5: 1, 7: 1,
            0: 2, 9: 3,
        }
        sizes = {0: 4, 1: 4, 2: 1, 3: 1}
        chart = pack_chart(row_sets, column_set_of_class, sizes, 4, 4)
        assert chart is not None
        # Column-set members occupy a consistent column.
        cols = {cls: chart.position_of(cls)[1] for cls in range(10)}
        assert len({cols[c] for c in (3, 4, 6, 8)}) == 1
        assert len({cols[c] for c in (1, 2, 5, 7)}) == 1
        # All ten classes placed in distinct cells.
        assert sorted(chart.placed_classes()) == list(range(10))

    def test_too_many_rows(self):
        assert pack_chart([[0], [1], [2]], {}, {}, 2, 2) is None

    def test_row_wider_than_cols(self):
        assert pack_chart([[0, 1, 2]], {}, {}, 1, 2) is None

    def test_collision_resolved_greedily(self):
        # Two classes of the same column set forced into one row: the
        # second must take another column.
        row_sets = [[0, 1]]
        chart = pack_chart(row_sets, {0: 0, 1: 0}, {0: 2}, 1, 2)
        assert chart is not None
        assert chart.position_of(0)[1] != chart.position_of(1)[1]
