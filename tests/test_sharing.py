"""Tests for pliable-encoding sharing (Theorems 4.3/4.4, Example 4.2)."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager
from repro.circuits import example_4_2_partitions
from repro.decompose import Partition, conjunction, contains
from repro.hyper import partition_of_function, pliable_sharing_plan


class TestExample42:
    def test_paper_numbers(self):
        plan = pliable_sharing_plan(example_4_2_partitions())
        assert plan.multiplicities == [4, 6, 6]
        assert plan.conjunction_multiplicity == 8
        # Figure 10(a): three shared decomposition functions.
        assert plan.shared_alpha_count == 3
        # Figure 10(b): rigid encoding consumes two more LUTs (5 total).
        assert plan.rigid_alpha_count == 5
        assert plan.lut_savings == 2

    def test_containment_matrix(self):
        p0, p1, p2 = example_4_2_partitions()
        plan = pliable_sharing_plan([p0, p1, p2])
        # Every partition contained by itself.
        for i in range(3):
            assert plan.containment[i][i]


class TestSharingPlan:
    def test_identical_partitions_share_rigidly(self):
        p = Partition((0, 1, 2, 3, 0, 1, 2, 3))
        plan = pliable_sharing_plan([p, p, p])
        assert plan.rigid_alpha_count == 2
        assert plan.shared_alpha_count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pliable_sharing_plan([])

    def test_shared_counts_conjunction(self):
        a = Partition((0, 0, 1, 1))
        b = Partition((0, 1, 0, 1))
        plan = pliable_sharing_plan([a, b])
        # Conjunction multiplicity 4 -> 2 shared bits; rigid: each needs
        # 1 bit but cannot share one bit (conj mult 4 > 2) -> 2 total.
        assert plan.shared_alpha_count == 2
        assert plan.rigid_alpha_count == 2


class TestPartitionOfFunction:
    def test_symbols_are_global(self):
        m = BddManager(4)
        a, b, c, d = (m.var_at_level(i) for i in range(4))
        f = m.apply_and(a, c)
        g = m.apply_or(m.apply_and(a, c), m.apply_and(m.apply_not(a), d))
        pf = partition_of_function(m, f, [0, 1])
        pg = partition_of_function(m, g, [0, 1])
        # Where a=1 both functions reduce to c: the symbol must coincide.
        assert pf.symbols[1] == pg.symbols[1]

    def test_containment_transfers_alpha(self):
        # Theorem 4.4 in action: if A contained by B, B's alpha functions
        # (which distinguish B's column patterns) also distinguish A's.
        m = BddManager(6)
        a_vars = [m.var_at_level(i) for i in range(4)]
        fb = m.apply_or(
            m.apply_and(a_vars[0], m.var_at_level(4)),
            m.apply_and(a_vars[1], m.var_at_level(5)),
        )
        fa = m.apply_and(a_vars[0], m.var_at_level(4))
        pa = partition_of_function(m, fa, [0, 1])
        pb = partition_of_function(m, fb, [0, 1])
        if contains(pb, pa):
            # Blocks of B refine blocks of A.
            assert conjunction([pa, pb]).multiplicity == pb.multiplicity
