"""Unit and property tests for the core ROBDD manager."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BddManager, build_cube

N_VARS = 4
TABLE_BITS = st.integers(min_value=0, max_value=(1 << (1 << N_VARS)) - 1)


def eval_mask(mask: int, assignment_bits: int) -> int:
    return (mask >> assignment_bits) & 1


def all_assignments(n: int):
    for bits in range(1 << n):
        yield bits, {lv: (bits >> lv) & 1 for lv in range(n)}


class TestConstruction:
    def test_terminals(self):
        m = BddManager(2)
        assert m.is_terminal(FALSE) and m.is_terminal(TRUE)
        assert not m.is_terminal(m.var_at_level(0))

    def test_var_literals(self):
        m = BddManager(3)
        a = m.var_at_level(0)
        for bits, assignment in all_assignments(3):
            assert m.eval(a, assignment) == assignment[0]

    def test_negative_literal(self):
        m = BddManager(2)
        na = m.nvar_at_level(0)
        assert m.eval(na, {0: 0, 1: 0}) == 1
        assert m.eval(na, {0: 1, 1: 0}) == 0

    def test_named_vars(self):
        m = BddManager()
        m.add_var("alpha")
        m.add_var("beta")
        assert m.level_of("beta") == 1
        assert m.name_of(0) == "alpha"
        assert m.var("alpha") == m.var_at_level(0)

    def test_duplicate_name_rejected(self):
        m = BddManager()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_var("x")

    def test_hash_consing(self):
        m = BddManager(3)
        f1 = m.apply_and(m.var_at_level(0), m.var_at_level(1))
        f2 = m.apply_and(m.var_at_level(1), m.var_at_level(0))
        assert f1 == f2

    def test_reduction_rule(self):
        # mk(v, t, t) must not create a node.
        m = BddManager(2)
        f = m.ite(m.var_at_level(0), TRUE, TRUE)
        assert f == TRUE


class TestBooleanOps:
    @given(TABLE_BITS, TABLE_BITS)
    @settings(max_examples=60, deadline=None)
    def test_binary_ops_match_masks(self, bits_f, bits_g):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits_f, levels)
        g = m.from_truth_table(bits_g, levels)
        full = (1 << (1 << N_VARS)) - 1
        assert m.to_truth_table(m.apply_and(f, g), levels) == bits_f & bits_g
        assert m.to_truth_table(m.apply_or(f, g), levels) == bits_f | bits_g
        assert m.to_truth_table(m.apply_xor(f, g), levels) == bits_f ^ bits_g
        assert m.to_truth_table(m.apply_not(f), levels) == bits_f ^ full

    @given(TABLE_BITS)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, bits):
        m = BddManager(N_VARS)
        f = m.from_truth_table(bits, list(range(N_VARS)))
        assert m.apply_not(m.apply_not(f)) == f

    @given(TABLE_BITS, TABLE_BITS, TABLE_BITS)
    @settings(max_examples=40, deadline=None)
    def test_ite_semantics(self, bf, bg, bh):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bf, levels)
        g = m.from_truth_table(bg, levels)
        h = m.from_truth_table(bh, levels)
        expected = (bf & bg) | (~bf & bh) & ((1 << (1 << N_VARS)) - 1)
        expected = (bf & bg) | ((bf ^ ((1 << (1 << N_VARS)) - 1)) & bh)
        assert m.to_truth_table(m.ite(f, g, h), levels) == expected

    def test_implies_and_diff(self):
        m = BddManager(2)
        a, b = m.var_at_level(0), m.var_at_level(1)
        assert m.apply_implies(m.apply_and(a, b), a) == TRUE
        assert m.apply_diff(a, a) == FALSE

    def test_xnor(self):
        m = BddManager(2)
        a, b = m.var_at_level(0), m.var_at_level(1)
        f = m.apply_xnor(a, b)
        assert m.eval(f, {0: 1, 1: 1}) == 1
        assert m.eval(f, {0: 1, 1: 0}) == 0


class TestCofactorsAndQuantifiers:
    @given(TABLE_BITS, st.integers(min_value=0, max_value=N_VARS - 1),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_restrict_semantics(self, bits, level, value):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits, levels)
        r = m.restrict(f, {level: value})
        for abits, assignment in all_assignments(N_VARS):
            fixed = dict(assignment)
            fixed[level] = value
            fixed_bits = sum(v << lv for lv, v in fixed.items())
            assert m.eval(r, assignment) == eval_mask(bits, fixed_bits)

    @given(TABLE_BITS, st.sets(st.integers(0, N_VARS - 1), max_size=N_VARS))
    @settings(max_examples=40, deadline=None)
    def test_exists_forall(self, bits, qlevels):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits, levels)
        ex = m.exists(f, qlevels)
        fa = m.forall(f, qlevels)
        free = [lv for lv in levels if lv not in qlevels]
        for _, assignment in all_assignments(N_VARS):
            sub_values = []
            for qbits in range(1 << len(qlevels)):
                full = dict(assignment)
                for j, lv in enumerate(sorted(qlevels)):
                    full[lv] = (qbits >> j) & 1
                full_bits = sum(v << lv for lv, v in full.items())
                sub_values.append(eval_mask(bits, full_bits))
            assert m.eval(ex, assignment) == (1 if any(sub_values) else 0)
            assert m.eval(fa, assignment) == (1 if all(sub_values) else 0)

    def test_compose(self):
        m = BddManager(3)
        a, b, c = (m.var_at_level(i) for i in range(3))
        f = m.apply_or(a, b)  # a | b
        g = m.compose(f, 1, m.apply_and(a, c))  # a | (a & c) == a
        assert g == a

    @given(TABLE_BITS, TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_vector_compose_identity(self, bits, sub_bits):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits, levels)
        identity = {lv: m.var_at_level(lv) for lv in levels}
        assert m.vector_compose(f, identity) == f

    def test_vector_compose_swap(self):
        m = BddManager(2)
        a, b = m.var_at_level(0), m.var_at_level(1)
        f = m.apply_diff(a, b)  # a & !b
        swapped = m.vector_compose(f, {0: b, 1: a})
        assert swapped == m.apply_diff(b, a)


class TestAnalysis:
    @given(TABLE_BITS)
    @settings(max_examples=40, deadline=None)
    def test_sat_count(self, bits):
        m = BddManager(N_VARS)
        f = m.from_truth_table(bits, list(range(N_VARS)))
        assert m.sat_count(f, N_VARS) == bin(bits).count("1")

    @given(TABLE_BITS)
    @settings(max_examples=30, deadline=None)
    def test_sat_iter_covers_on_set(self, bits):
        m = BddManager(N_VARS)
        f = m.from_truth_table(bits, list(range(N_VARS)))
        covered = set()
        for cube in m.sat_iter(f):
            free = [lv for lv in range(N_VARS) if lv not in cube]
            for fill in range(1 << len(free)):
                full = dict(cube)
                for j, lv in enumerate(free):
                    full[lv] = (fill >> j) & 1
                covered.add(sum(v << lv for lv, v in full.items()))
        expected = {i for i in range(1 << N_VARS) if (bits >> i) & 1}
        assert covered == expected

    def test_support(self):
        m = BddManager(4)
        f = m.apply_and(m.var_at_level(1), m.var_at_level(3))
        assert m.support(f) == [1, 3]
        assert m.support(TRUE) == []

    def test_size(self):
        m = BddManager(3)
        assert m.size(TRUE) == 0
        chain = m.apply_and(
            m.apply_and(m.var_at_level(0), m.var_at_level(1)), m.var_at_level(2)
        )
        assert m.size(chain) == 3

    def test_pick_one(self):
        m = BddManager(2)
        assert m.pick_one(FALSE) is None
        cube = m.pick_one(m.apply_and(m.var_at_level(0), m.var_at_level(1)))
        assert cube == {0: 1, 1: 1}


class TestTruthTableBridge:
    @given(TABLE_BITS)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, bits):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits, levels)
        assert m.to_truth_table(f, levels) == bits

    def test_to_truth_table_rejects_extra_support(self):
        m = BddManager(3)
        f = m.var_at_level(2)
        with pytest.raises(ValueError):
            m.to_truth_table(f, [0, 1])

    def test_level_permutation(self):
        m = BddManager(2)
        # bits over [levels[0]=1, levels[1]=0]: index bit0 -> level 1.
        f = m.from_truth_table(0b0010, [1, 0])  # on minterm index 1: level1=1
        assert m.eval(f, {0: 0, 1: 1}) == 1
        assert m.eval(f, {0: 1, 1: 0}) == 0


class TestCofactorEnumerate:
    @given(TABLE_BITS)
    @settings(max_examples=40, deadline=None)
    def test_matches_restrict(self, bits):
        m = BddManager(N_VARS)
        levels = list(range(N_VARS))
        f = m.from_truth_table(bits, levels)
        cofs = m.cofactor_enumerate(f, [0, 2])
        for index in range(4):
            expected = m.restrict(f, {0: index & 1, 2: (index >> 1) & 1})
            assert cofs[index] == expected


def test_build_cube():
    m = BddManager(3)
    cube = build_cube(m, {0: 1, 2: 0})
    assert m.eval(cube, {0: 1, 1: 0, 2: 0}) == 1
    assert m.eval(cube, {0: 1, 1: 1, 2: 1}) == 0
    assert build_cube(m, {}) == TRUE
