"""Unit tests for the failing-case shrinker (repro.testing.shrink).

A synthetic "known-bad" property — the network contains a wide XOR node
— stands in for a real mapper bug: the shrinker must strip everything
that is not needed to keep the property true, and the saved repro must
round-trip through BLIF.
"""

from __future__ import annotations

import os

import pytest

from repro.boolfunc import TruthTable
from repro.circuits.synthetic import layered_network
from repro.network import Network, read_blif
from repro.testing import save_repro, shrink_network


def _wide_xor(n: int) -> TruthTable:
    return TruthTable.from_function(n, lambda *bits: sum(bits) % 2)


def _bad_network() -> Network:
    """Lots of irrelevant logic around one 5-input XOR node."""
    net = layered_network(
        "bad", num_inputs=8, num_outputs=3, nodes_per_layer=5, seed=7
    )
    xor = net.add_node("wide_xor", net.inputs[:5], _wide_xor(5))
    net.add_output(xor, "bug_out")
    return net


def _has_wide_xor(net: Network) -> bool:
    return any(
        node.table.num_inputs >= 5 and node.table == _wide_xor(5)
        for node in net.nodes()
    )


class TestShrinkNetwork:
    def test_shrinks_to_essential_core(self):
        net = _bad_network()
        assert _has_wide_xor(net)
        shrunk = shrink_network(net, _has_wide_xor)
        assert _has_wide_xor(shrunk)  # property preserved
        # Everything unrelated to the XOR is gone: the three random
        # outputs dropped, unread inputs removed.
        assert shrunk.num_nodes < net.num_nodes
        assert len(shrunk.output_names) == 1
        assert len(shrunk.inputs) <= 5

    def test_shrunk_inputs_keep_source_relative_order(self):
        """Surviving PIs must appear in the source's declaration order.

        The shrinker deletes and re-adds signals while minimizing, which
        used to leave the witness's ``.inputs`` in discovery order — so
        a replay that zips witness inputs against source inputs (or a
        ``cone_spec`` whose truth-table variable order is PI declaration
        order) silently permuted the function.  ``holds()`` now restores
        the source-relative order before every probe.
        """
        net = _bad_network()
        shrunk = shrink_network(net, _has_wide_xor)
        source_order = {name: i for i, name in enumerate(net.inputs)}
        positions = [source_order[name] for name in shrunk.inputs]
        assert positions == sorted(positions), (
            f"shrunk inputs {shrunk.inputs} out of source order "
            f"{net.inputs}"
        )

    def test_predicate_must_hold_on_input(self):
        net = layered_network("ok", 4, 2, 3, seed=1)
        with pytest.raises(ValueError, match="does not hold"):
            shrink_network(net, lambda n: False)

    def test_raising_predicate_counts_as_not_failing(self):
        net = _bad_network()

        def fragile(candidate: Network) -> bool:
            if len(candidate.output_names) < 2:
                raise RuntimeError("flow crashed on candidate")
            return _has_wide_xor(candidate)

        shrunk = shrink_network(net, fragile)
        # Candidates on which the predicate raised were discarded, so
        # the invariant the predicate enforces still holds at the end.
        assert len(shrunk.output_names) >= 2
        assert _has_wide_xor(shrunk)


class TestSaveRepro:
    def test_round_trips_with_note(self, tmp_path):
        net = _bad_network()
        shrunk = shrink_network(net, _has_wide_xor)
        path = save_repro(
            shrunk, str(tmp_path), "wide_xor_case", note="flow X, seed 7"
        )
        assert os.path.basename(path) == "wide_xor_case.blif"
        with open(path, encoding="utf-8") as handle:
            assert handle.readline().startswith("# flow X")
        replayed = read_blif(path)
        assert _has_wide_xor(replayed)
        assert sorted(replayed.output_names) == sorted(shrunk.output_names)
