"""Tests for hyper-function construction (paper Definition 4.1)."""

from __future__ import annotations

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.hyper import build_hyper_function


def three_functions(m: BddManager):
    a, b, c, d = (m.var_at_level(i) for i in range(4))
    return [
        ("f0", m.apply_and(a, b)),
        ("f1", m.apply_xor(a, c)),
        ("f2", m.apply_or(b, d)),
    ]


class TestBuildHyperFunction:
    def test_single_ingredient_trivial(self):
        m = BddManager(4)
        f = m.apply_and(m.var_at_level(0), m.var_at_level(1))
        hyper = build_hyper_function(m, [("f", f)], k=5)
        assert hyper.num_ppis == 0
        assert hyper.on == f

    def test_ppi_count(self):
        m = BddManager(4)
        hyper = build_hyper_function(m, three_functions(m), k=5)
        assert hyper.num_ppis == 2  # ceil(log2 3)

    def test_ingredient_recovery(self):
        m = BddManager(4)
        ingredients = three_functions(m)
        hyper = build_hyper_function(m, ingredients, k=5)
        for index, (name, on) in enumerate(ingredients):
            rec = hyper.recover_ingredient(index)
            # Where the recovered slice is specified it must equal the
            # ingredient; dc only on unused codes (none per ingredient).
            assert rec.on == on
            assert rec.dc == FALSE

    def test_unused_code_is_dc(self):
        m = BddManager(4)
        hyper = build_hyper_function(m, three_functions(m), k=5)
        used = {tuple(sorted(code.items())) for code in hyper.codes}
        for code_bits in range(4):
            code = {0: code_bits & 1, 1: (code_bits >> 1) & 1}
            if tuple(sorted(code.items())) in used:
                continue
            assignment = {
                hyper.ppi_levels[a]: bit for a, bit in code.items()
            }
            assert m.restrict(hyper.dc, assignment) == TRUE

    def test_codes_strict(self):
        m = BddManager(4)
        hyper = build_hyper_function(m, three_functions(m), k=5)
        seen = {tuple(sorted(code.items())) for code in hyper.codes}
        assert len(seen) == 3

    def test_random_policy(self):
        m = BddManager(4)
        hyper = build_hyper_function(m, three_functions(m), k=5, policy="random")
        assert hyper.codes[1] == {0: 1, 1: 0}
        for index, (name, on) in enumerate(three_functions(m)):
            assert hyper.recover_ingredient(index).on == on

    def test_duplicate_names_rejected(self):
        m = BddManager(4)
        f = m.var_at_level(0)
        with pytest.raises(ValueError):
            build_hyper_function(m, [("f", f), ("f", f)], k=5)

    def test_supports_include_ppis(self):
        m = BddManager(4)
        hyper = build_hyper_function(m, three_functions(m), k=5)
        support = set(m.support(hyper.on)) | set(m.support(hyper.dc))
        assert set(hyper.ppi_levels) <= support
