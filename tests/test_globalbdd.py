"""Tests for global-BDD construction over networks."""

from __future__ import annotations

import itertools

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.boolfunc import TruthTable
from repro.network import GlobalBdds, Network, build_global_bdds, simulate

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)


def demo_net() -> Network:
    net = Network("g")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_node("t", ["a", "b"], AND2)
    net.add_node("u", ["t", "c"], XOR2)
    net.add_output("u")
    net.add_output("t", "tout")
    return net


class TestGlobalBdds:
    def test_matches_simulation(self):
        net = demo_net()
        gb = GlobalBdds(net)
        for bits in itertools.product([0, 1], repeat=3):
            assignment = dict(zip(net.inputs, bits))
            sim = simulate(net, assignment)
            levels = {gb.manager.level_of(k): v for k, v in assignment.items()}
            for out in net.output_names:
                assert sim[out] == gb.manager.eval(gb.of_output(out), levels)

    def test_lazy_cache(self):
        net = demo_net()
        gb = GlobalBdds(net)
        first = gb.of("t")
        second = gb.of("t")
        assert first == second

    def test_custom_pi_order(self):
        net = demo_net()
        gb = GlobalBdds(net, pi_order=["c", "b", "a"])
        assert gb.manager.name_of(0) == "c"
        # Function value must be order independent.
        f = gb.of_output("u")
        levels = {gb.manager.level_of(n): v
                  for n, v in {"a": 1, "b": 1, "c": 0}.items()}
        assert gb.manager.eval(f, levels) == 1

    def test_bad_pi_order_rejected(self):
        with pytest.raises(ValueError):
            GlobalBdds(demo_net(), pi_order=["a", "b"])

    def test_shared_manager(self):
        net = demo_net()
        gb1 = GlobalBdds(net)
        gb2 = GlobalBdds(net.copy(), manager=gb1.manager)
        assert gb1.of_output("u") == gb2.of_output("u")

    def test_constant_node(self):
        net = Network("c")
        net.add_input("a")
        net.add_constant("one", 1)
        net.add_node("f", ["a", "one"], AND2)
        net.add_output("f")
        manager, outs = build_global_bdds(net)
        assert outs["f"] == manager.var("a")

    def test_pi_output(self):
        net = Network("p")
        net.add_input("a")
        net.add_output("a")
        manager, outs = build_global_bdds(net)
        assert outs["a"] == manager.var("a")
