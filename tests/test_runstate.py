"""Crash-safety substrate: atomic writes, the run journal, task keys.

The invariants under test are the ones ISSUE acceptance hangs on:

* an interrupted/crashed write NEVER leaves a truncated artifact — the
  previous file survives byte for byte and no temp litter remains;
* journal task keys are content-addressed: change the options or the
  cone BLIF and the key changes (stale records can't be replayed);
* a corrupt journaled fragment is rejected at replay time, degrading to
  recomputation instead of splicing garbage;
* the loader tolerates exactly one torn trailing line (the crash-mid-
  append signature) and skips integrity-hash mismatches elsewhere.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.decompose import DecompositionOptions
from repro.harness import (
    CircuitRecord,
    ExperimentRecord,
    FlowRecord,
    load_record,
    save_record,
)
from repro.mapping.parallel import GroupResult, GroupTask, _replay_result
from repro.runstate import (
    JournalError,
    RunJournal,
    atomic_write,
    load_journal,
    open_journal,
    task_key,
    validate_journal,
)

CONE_BLIF = """.model cone
.inputs a b
.outputs f
.names a b f
11 1
.end
"""

FRAGMENT_BLIF = """.model frag
.inputs a b
.outputs f
.names a b f
11 1
.end
"""


def make_task(blif: str = CONE_BLIF, **option_kwargs) -> GroupTask:
    return GroupTask(
        blif_text=blif,
        group=["f"],
        gi=0,
        options=DecompositionOptions(**option_kwargs),
    )


def make_result() -> GroupResult:
    return GroupResult(gi=0, blif_text=FRAGMENT_BLIF, info={"mode": "hyper"})


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as handle:
            handle.write("hello\n")
        assert path.read_text() == "hello\n"

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_write(path, mode="wb") as handle:
            handle.write(b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_failure_mid_write_preserves_old_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious\n")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("half-done")
                raise RuntimeError("crash mid-serialization")
        assert path.read_text() == "precious\n"

    def test_failure_leaves_no_temp_litter(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("x")
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []

    def test_rejects_non_truncating_modes(self, tmp_path):
        for mode in ("a", "r", "w+"):
            with pytest.raises(ValueError):
                with atomic_write(tmp_path / "f", mode=mode):
                    pass


class TestArtifactWritersAreAtomic:
    """The shared-writer satellites: save_record and write_trace."""

    def make_record(self) -> ExperimentRecord:
        rec = ExperimentRecord("exp", "lut_count")
        crec = CircuitRecord("a", 4, 1, True)
        crec.flows["hyde"] = FlowRecord("hyde", lut_count=5)
        rec.circuits.append(crec)
        return rec

    def test_save_record_failure_preserves_old_archive(self, tmp_path):
        path = tmp_path / "run.json"
        save_record(self.make_record(), path)
        before = path.read_bytes()

        class Exploding(ExperimentRecord):
            def to_json(self) -> str:
                raise RuntimeError("serializer died mid-save")

        with pytest.raises(RuntimeError):
            save_record(Exploding("exp", "lut_count"), path)
        assert path.read_bytes() == before
        assert load_record(path).totals("hyde") == 5
        assert os.listdir(tmp_path) == ["run.json"]

    def test_write_trace_failure_preserves_old_trace(self, tmp_path):
        from repro import obs

        path = tmp_path / "trace.jsonl"
        recorder = obs.TraceRecorder()
        with obs.installed(recorder):
            with obs.span("root"):
                pass
        obs.write_trace(str(path), recorder, {"run": 1})
        before = path.read_bytes()
        # A meta value json.dumps cannot serialize fails mid-stream —
        # after some records were already written to the temp file.
        with pytest.raises(TypeError):
            obs.write_trace(str(path), recorder, {"bad": {1, 2, 3}})
        assert path.read_bytes() == before
        assert os.listdir(tmp_path) == ["trace.jsonl"]


class TestTaskKey:
    def test_stable_for_identical_tasks(self):
        assert task_key(make_task()) == task_key(make_task())

    def test_position_and_runtime_fields_do_not_split_the_key(self):
        base = make_task()
        moved = dataclasses.replace(base, gi=7, attempt=3, trace=True)
        assert task_key(base) == task_key(moved)

    def test_changing_options_changes_the_key(self):
        assert task_key(make_task()) != task_key(make_task(k=4))
        assert task_key(make_task()) != task_key(
            make_task(encoding_policy="random")
        )

    def test_changing_cone_blif_changes_the_key(self):
        other = CONE_BLIF.replace("11 1", "1- 1")
        assert task_key(make_task()) != task_key(make_task(blif=other))

    def test_changing_group_policy_changes_the_key(self):
        base = make_task()
        assert task_key(base) != task_key(
            dataclasses.replace(base, ppi_placement="force_free")
        )
        assert task_key(base) != task_key(
            dataclasses.replace(base, mode="per_output")
        )


class TestRunJournal:
    def test_round_trip_and_validation(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        task = make_task()
        journal.record_group(task_key(task), task, make_result(), 0.25)
        journal.record_verdict(equivalent=True, replayed=0, executed=1)
        journal.record_done(flow="hyde", lut_count=1, seconds=0.3)

        records, problems = load_journal(journal.path)
        assert problems == []
        assert validate_journal(records) == []
        kinds = [r["type"] for r in records]
        assert kinds == ["meta", "group", "verdict", "done"]

        resumed = open_journal(tmp_path, "cone", "hyde", 5, resume=True)
        assert resumed.num_groups == 1
        assert resumed.lookup(task_key(task))["blif"] == FRAGMENT_BLIF
        assert resumed.completed_run()["lut_count"] == 1

    def test_resume_rejects_mismatched_identity(self, tmp_path):
        open_journal(tmp_path, "cone", "hyde", 5)
        with pytest.raises(JournalError, match="different run"):
            RunJournal(
                os.path.join(tmp_path, "cone.hyde.k5.journal.jsonl"),
                circuit="other",
                flow="hyde",
                k=5,
                resume=True,
            )

    def test_fresh_open_truncates_previous_journal(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        task = make_task()
        journal.record_group(task_key(task), task, make_result(), 0.1)
        fresh = open_journal(tmp_path, "cone", "hyde", 5, resume=False)
        assert fresh.num_groups == 0
        records, _ = load_journal(fresh.path)
        assert [r["type"] for r in records] == ["meta"]

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        task = make_task()
        journal.record_group(task_key(task), task, make_result(), 0.1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "group", "key": "dead')  # crash here
        records, problems = load_journal(journal.path)
        assert [r["type"] for r in records] == ["meta", "group"]
        assert any("torn" in p for p in problems)

    def test_tampered_record_is_skipped(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        task = make_task()
        journal.record_group(task_key(task), task, make_result(), 0.1)
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        tampered = json.loads(lines[1])
        tampered["blif"] = tampered["blif"].replace("11 1", "00 1")
        lines[1] = json.dumps(tampered)  # body changed, hash not updated
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        records, problems = load_journal(journal.path)
        assert [r["type"] for r in records] == ["meta"]
        assert any("integrity" in p for p in problems)

    def test_completed_run_requires_positive_verdict(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        journal.record_done(flow="hyde", seconds=0.1)
        journal.record_verdict(equivalent=False, replayed=1, executed=0)
        resumed = open_journal(tmp_path, "cone", "hyde", 5, resume=True)
        assert resumed.completed_run() is None


class TestReplayValidation:
    def test_replay_round_trip(self):
        task = make_task()
        record = {"blif": FRAGMENT_BLIF, "info": {"mode": "hyper"},
                  "seconds": 0.5}
        result = _replay_result(task, record)
        assert result is not None
        assert result.info["replayed"] is True
        assert result.seconds == 0.5

    def test_corrupt_fragment_is_rejected(self):
        from repro.testing.faults import corrupt_blif_text

        task = make_task()
        corrupt = corrupt_blif_text(FRAGMENT_BLIF, seed=1)  # truncation
        assert _replay_result(task, {"blif": corrupt}) is None

    def test_wrong_outputs_are_rejected(self):
        task = make_task()
        wrong = FRAGMENT_BLIF.replace(".outputs f", ".outputs g").replace(
            "a b f", "a b g"
        )
        assert _replay_result(task, {"blif": wrong}) is None

    def test_missing_blif_is_rejected(self):
        assert _replay_result(make_task(), {"info": {}}) is None

    def test_validate_journal_flags_corrupt_fragment(self, tmp_path):
        journal = open_journal(tmp_path, "cone", "hyde", 5)
        task = make_task()
        result = make_result()
        result.blif_text = FRAGMENT_BLIF.replace(".end", "")  # truncated
        journal.record_group(task_key(task), task, result, 0.1)
        records, _ = load_journal(journal.path)
        problems = validate_journal(records)
        assert any("fragment BLIF rejected" in p for p in problems)
