"""Tests for bound-set selection."""

from __future__ import annotations

import pytest

from repro.bdd import FALSE, BddManager
from repro.decompose import count_classes, select_bound_set


def adder_like(m: BddManager):
    # f = (a0 & b0) | (a1 & b1) | (a2 & b2): pairing ai with bi decomposes
    # beautifully; splitting the pairs does not.
    pairs = []
    for j in range(3):
        pairs.append(m.apply_and(m.var_at_level(2 * j), m.var_at_level(2 * j + 1)))
    f = pairs[0]
    for p in pairs[1:]:
        f = m.apply_or(f, p)
    return f


class TestSelectBoundSet:
    def test_finds_good_pairing(self):
        m = BddManager(6)
        f = adder_like(m)
        vp = select_bound_set(m, f, list(range(6)), 2)
        # Any {2j, 2j+1} pair yields exactly 2 classes.
        assert vp.num_classes == 2
        assert vp.bound_levels in {(0, 1), (2, 3), (4, 5)}

    def test_free_levels_complement(self):
        m = BddManager(6)
        f = adder_like(m)
        vp = select_bound_set(m, f, list(range(6)), 2)
        assert sorted(vp.bound_levels + vp.free_levels) == list(range(6))

    def test_greedy_path(self):
        m = BddManager(6)
        f = adder_like(m)
        vp = select_bound_set(
            m, f, list(range(6)), 2, exhaustive_limit=1
        )
        # Greedy + swap still find an optimal pair here.
        assert vp.num_classes == 2

    def test_forbidden_levels_respected(self):
        m = BddManager(6)
        f = adder_like(m)
        vp = select_bound_set(m, f, list(range(6)), 2, forbidden=[0, 1])
        assert 0 not in vp.bound_levels and 1 not in vp.bound_levels

    def test_forbidden_relaxed_when_starved(self):
        m = BddManager(4)
        f = adder_like_sub = m.apply_and(m.var_at_level(0), m.var_at_level(1))
        f = m.apply_or(f, m.apply_and(m.var_at_level(2), m.var_at_level(3)))
        # Forbid almost everything: selection must still succeed.
        vp = select_bound_set(m, f, [0, 1, 2, 3], 2, forbidden=[0, 1, 2])
        assert len(vp.bound_levels) == 2

    def test_preferred_free_breaks_ties(self):
        m = BddManager(6)
        f = adder_like(m)
        # All three pairs tie at 2 classes; penalising {0,1} should move
        # the choice to another pair.
        vp = select_bound_set(
            m, f, list(range(6)), 2, preferred_free=[0, 1]
        )
        assert vp.bound_levels != (0, 1)

    def test_bound_size_too_large(self):
        m = BddManager(3)
        f = m.var_at_level(0)
        with pytest.raises(ValueError):
            select_bound_set(m, f, [0, 1, 2], 3)

    def test_reported_count_is_truthful(self):
        m = BddManager(6)
        f = adder_like(m)
        vp = select_bound_set(m, f, list(range(6)), 3)
        assert vp.num_classes == count_classes(m, f, list(vp.bound_levels))
