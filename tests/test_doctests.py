"""Run the doctests embedded in module/class docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.bdd.manager
import repro.boolfunc.truthtable
import repro.network.netlist

MODULES = [
    repro.bdd.manager,
    repro.boolfunc.truthtable,
    repro.network.netlist,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} has no doctests"
