"""Randomised end-to-end property tests of hyper-function decomposition:
arbitrary multi-output functions in, equivalent k-feasible logic out.

The generator lives in :func:`repro.verify.random_multi_output`
(seed-logged, replayable via ``REPRO_SEED``)."""

from __future__ import annotations

import pytest

from repro.decompose import DecompositionOptions
from repro.hyper import decompose_hyper_function
from repro.network import check_equivalence, is_k_feasible
from repro.verify import random_multi_output

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", range(8))
def test_random_groups_recover_equivalent(seed):
    manager, names, ingredients, ref = random_multi_output(seed, 8, 3)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5)
    )
    recovered = result.recovered
    assert sorted(recovered.output_names) == ["o0", "o1", "o2"]
    assert check_equivalence(recovered, ref) is None


@pytest.mark.parametrize("seed", range(4))
def test_random_groups_k4(seed):
    manager, names, ingredients, ref = random_multi_output(seed + 50, 7, 2)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=4)
    )
    # Hyper network must be k-feasible; recovered network too after the
    # PPI constants are folded in.
    assert is_k_feasible(result.hyper_network, 4)
    assert check_equivalence(result.recovered, ref) is None


@pytest.mark.parametrize("policy", ["chart", "random"])
def test_ingredient_policies_equivalent(policy):
    manager, names, ingredients, ref = random_multi_output(99, 8, 4)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5),
        ingredient_policy=policy,
    )
    assert check_equivalence(result.recovered, ref) is None


@pytest.mark.parametrize("placement", ["prefer_free", "force_free", "unrestricted"])
def test_ppi_placements_equivalent(placement):
    manager, names, ingredients, ref = random_multi_output(123, 8, 3)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5),
        ppi_placement=placement,
    )
    assert check_equivalence(result.recovered, ref) is None
