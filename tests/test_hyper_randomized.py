"""Randomised end-to-end property tests of hyper-function decomposition:
arbitrary multi-output functions in, equivalent k-feasible logic out."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BddManager
from repro.boolfunc import TruthTable
from repro.decompose import DecompositionOptions
from repro.hyper import decompose_hyper_function
from repro.network import Network, check_equivalence, is_k_feasible


def random_multi_output(seed: int, num_inputs: int, num_outputs: int):
    """(manager, names, ingredients, reference network)."""
    rng = random.Random(seed)
    manager = BddManager()
    names = [f"i{j}" for j in range(num_inputs)]
    for name in names:
        manager.add_var(name)
    ref = Network(f"ref{seed}")
    for name in names:
        ref.add_input(name)
    ingredients = []
    for o in range(num_outputs):
        # Structured random: OR of a few random sub-functions on subsets,
        # so the functions are decomposable like real logic.
        parts = []
        for _ in range(rng.randint(2, 3)):
            subset = rng.sample(range(num_inputs), rng.randint(3, 4))
            mask = rng.getrandbits(1 << len(subset))
            parts.append(
                manager.from_truth_table(mask, subset)
            )
        f = parts[0]
        for p in parts[1:]:
            f = (
                manager.apply_and(f, p)
                if rng.random() < 0.5
                else manager.apply_xor(f, p)
            )
        ingredients.append((f"o{o}", f))
        table_mask = manager.to_truth_table(f, list(range(num_inputs)))
        ref.add_node(f"n{o}", names, TruthTable(num_inputs, table_mask))
        ref.add_output(f"n{o}", f"o{o}")
    return manager, names, ingredients, ref


@pytest.mark.parametrize("seed", range(8))
def test_random_groups_recover_equivalent(seed):
    manager, names, ingredients, ref = random_multi_output(seed, 8, 3)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5)
    )
    recovered = result.recovered
    assert sorted(recovered.output_names) == ["o0", "o1", "o2"]
    assert check_equivalence(recovered, ref) is None


@pytest.mark.parametrize("seed", range(4))
def test_random_groups_k4(seed):
    manager, names, ingredients, ref = random_multi_output(seed + 50, 7, 2)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=4)
    )
    # Hyper network must be k-feasible; recovered network too after the
    # PPI constants are folded in.
    assert is_k_feasible(result.hyper_network, 4)
    assert check_equivalence(result.recovered, ref) is None


@pytest.mark.parametrize("policy", ["chart", "random"])
def test_ingredient_policies_equivalent(policy):
    manager, names, ingredients, ref = random_multi_output(99, 8, 4)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5),
        ingredient_policy=policy,
    )
    assert check_equivalence(result.recovered, ref) is None


@pytest.mark.parametrize("placement", ["prefer_free", "force_free", "unrestricted"])
def test_ppi_placements_equivalent(placement):
    manager, names, ingredients, ref = random_multi_output(123, 8, 3)
    result = decompose_hyper_function(
        manager, ingredients, names, DecompositionOptions(k=5),
        ppi_placement=placement,
    )
    assert check_equivalence(result.recovered, ref) is None
