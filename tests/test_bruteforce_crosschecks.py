"""Brute-force cross-checks of the heuristic/matching substrate on tiny
instances, where exact optima are enumerable."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.decompose import (
    WeightedEdge,
    clique_partition,
    max_weight_b_matching,
    max_weight_matching,
)


def brute_force_min_clique_cover(n, compat):
    """Exact minimum clique partition by trying all set partitions."""

    def partitions(elements):
        if not elements:
            yield []
            return
        first, rest = elements[0], elements[1:]
        for sub in partitions(rest):
            for i in range(len(sub)):
                yield sub[:i] + [[first] + sub[i]] + sub[i + 1 :]
            yield [[first]] + sub

    best = None
    for candidate in partitions(list(range(n))):
        ok = all(
            compat(a, b)
            for group in candidate
            for a, b in itertools.combinations(group, 2)
        )
        if ok and (best is None or len(candidate) < len(best)):
            best = candidate
    return best


def brute_force_matching_weight(edges):
    """Exact maximum-weight matching weight by subset enumeration."""
    best = 0.0
    for size in range(1, len(edges) + 1):
        for subset in itertools.combinations(edges, size):
            used = set()
            ok = True
            for e in subset:
                if e.u in used or e.v in used:
                    ok = False
                    break
                used.add(e.u)
                used.add(e.v)
            if ok:
                best = max(best, sum(e.weight for e in subset))
    return best


class TestCliquePartitionQuality:
    @pytest.mark.parametrize("seed", range(8))
    def test_close_to_optimum_on_tiny_graphs(self, seed):
        rng = random.Random(seed)
        n = 7
        edges = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.5
        }
        compat = lambda i, j: tuple(sorted((i, j))) in edges
        heuristic = clique_partition(n, compat)
        optimum = brute_force_min_clique_cover(n, compat)
        # The Tseng/Siewiorek-style heuristic is not exact, but on these
        # tiny graphs it should stay within one clique of optimal.
        assert len(heuristic) <= len(optimum) + 1

    def test_exact_on_cluster_graphs(self):
        # Disjoint cliques: the heuristic must find them exactly.
        groups = [[0, 1, 2], [3, 4], [5, 6, 7, 8]]
        membership = {}
        for gi, g in enumerate(groups):
            for v in g:
                membership[v] = gi
        compat = lambda i, j: membership[i] == membership[j]
        assert len(clique_partition(9, compat)) == 3


class TestMatchingExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(100 + seed)
        vertices = [f"v{i}" for i in range(6)]
        edges = [
            WeightedEdge(a, b, rng.randint(1, 9))
            for a, b in itertools.combinations(vertices, 2)
            if rng.random() < 0.6
        ]
        if not edges:
            return
        ours = sum(e.weight for e in max_weight_matching(edges))
        exact = brute_force_matching_weight(edges)
        assert ours == exact

    @pytest.mark.parametrize("seed", range(4))
    def test_b_matching_via_cloned_bruteforce(self, seed):
        rng = random.Random(200 + seed)
        # Star-ish bipartite instance with one capacity-2 hub.
        edges = [
            WeightedEdge(f"p{i}", "hub", rng.randint(1, 9)) for i in range(4)
        ] + [
            WeightedEdge(f"p{i}", f"q{i}", rng.randint(1, 9)) for i in range(4)
        ]
        ours = sum(
            e.weight for e in max_weight_b_matching(edges, {"hub": 2})
        )
        # Brute force: pick at most 2 hub edges + a matching on the rest.
        best = 0
        hub_edges = edges[:4]
        leaf_edges = edges[4:]
        for hub_count in range(3):
            for hub_subset in itertools.combinations(hub_edges, hub_count):
                used = {e.u for e in hub_subset}
                weight = sum(e.weight for e in hub_subset)
                extra = sum(
                    e.weight for e in leaf_edges if e.u not in used
                )
                best = max(best, weight + extra)
        assert ours == best
