"""Cross-cutting decomposition properties: determinism, DC propagation,
progress guarantees and interaction between passes."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, BddManager
from repro.boolfunc import TruthTable
from repro.decompose import (
    DecompositionOptions,
    count_classes,
    decompose_step,
    decompose_to_network,
    select_bound_set,
)
from repro.network import Network, check_equivalence


class TestDeterminism:
    def test_select_bound_set_deterministic(self):
        for _ in range(3):
            m = BddManager(8)
            bits = random.Random(17).getrandbits(256)
            f = m.from_truth_table(bits, list(range(8)))
            first = select_bound_set(m, f, m.support(f), 4)
            second = select_bound_set(m, f, m.support(f), 4)
            assert first == second

    def test_decompose_network_deterministic(self):
        def run():
            m = BddManager(8)
            bits = random.Random(23).getrandbits(256)
            f = m.from_truth_table(bits, list(range(8)))
            net = Network("d")
            for j in range(8):
                net.add_input(f"i{j}")
            root = decompose_to_network(
                m, f, net, {j: f"i{j}" for j in range(8)},
                DecompositionOptions(k=5),
            )
            net.add_output(root, "f")
            return [
                (n.name, tuple(n.fanins), n.table.mask) for n in net.nodes()
            ]

        assert run() == run()


class TestExhaustiveVsGreedy:
    @given(st.integers(min_value=0, max_value=(1 << (1 << 7)) - 1))
    @settings(max_examples=10, deadline=None)
    def test_exhaustive_never_worse(self, bits):
        m = BddManager(7)
        f = m.from_truth_table(bits, list(range(7)))
        support = m.support(f)
        if len(support) < 5:
            return
        exact = select_bound_set(m, f, support, 3, exhaustive_limit=10_000)
        greedy = select_bound_set(m, f, support, 3, exhaustive_limit=0)
        assert exact.num_classes <= greedy.num_classes

    @given(st.integers(min_value=0, max_value=(1 << (1 << 6)) - 1))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_matches_bruteforce(self, bits):
        from itertools import combinations
        m = BddManager(6)
        f = m.from_truth_table(bits, list(range(6)))
        support = m.support(f)
        if len(support) < 4:
            return
        chosen = select_bound_set(m, f, support, 3, exhaustive_limit=10_000)
        brute_best = min(
            count_classes(m, f, list(c))
            for c in combinations(support, 3)
        )
        assert chosen.num_classes == brute_best


class TestProgress:
    def test_undecomposable_function_terminates(self):
        # A random function is typically undecomposable: every bound set
        # yields ~2^|bound| classes, forcing Shannon fallbacks.  The
        # driver must still terminate and be correct.
        rng = random.Random(99)
        bits = rng.getrandbits(1 << 8)
        m = BddManager(8)
        f = m.from_truth_table(bits, list(range(8)))
        net = Network("hard")
        for j in range(8):
            net.add_input(f"i{j}")
        root = decompose_to_network(
            m, f, net, {j: f"i{j}" for j in range(8)},
            DecompositionOptions(k=4),
        )
        net.add_output(root, "f")
        ref = Network("ref")
        for j in range(8):
            ref.add_input(f"i{j}")
        ref.add_node("F", [f"i{j}" for j in range(8)], TruthTable(8, bits))
        ref.add_output("F", "f")
        assert check_equivalence(net, ref) is None
        assert all(len(n.fanins) <= 4 for n in net.nodes())


class TestDcPropagation:
    def test_image_dc_grows_with_unused_codes(self):
        # 3 classes -> 2 alpha bits -> one unused code: the image must
        # carry a non-empty dc set.
        m = BddManager(8)
        a = [m.var_at_level(i) for i in range(8)]
        # Build a function with exactly 3 classes for bound {0,1,2}:
        # columns: 0 -> g0, {1,2,...} -> by construction below.
        from repro.bdd import build_cube
        g0 = m.apply_and(a[3], a[4])
        g1 = m.apply_or(a[5], a[6])
        g2 = m.apply_xor(a[3], a[7])
        f = FALSE
        mapping = [0, 0, 0, 1, 1, 1, 2, 2]
        for position, cls in enumerate(mapping):
            cube = build_cube(m, {lv: (position >> lv) & 1 for lv in range(3)})
            f = m.apply_or(f, m.apply_and(cube, [g0, g1, g2][cls]))
        step = decompose_step(
            m, f, m.support(f), DecompositionOptions(k=5),
            bound_levels=[0, 1, 2],
        )
        assert step.num_classes == 3
        assert step.image.dc != FALSE
