"""Unit and property tests for the bigint truth-table representation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import TruthTable

ARITY = st.integers(min_value=1, max_value=5)


@st.composite
def tables(draw, max_arity: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_arity))
    mask = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return TruthTable(n, mask)


class TestConstruction:
    def test_constant(self):
        one = TruthTable.constant(3, 1)
        zero = TruthTable.constant(3, 0)
        assert one.mask == 0xFF and zero.mask == 0
        assert one.is_constant() and zero.is_constant()

    def test_projection(self):
        p = TruthTable.projection(3, 1)
        for m in range(8):
            assert p.eval_index(m) == (m >> 1) & 1

    def test_projection_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.projection(2, 2)

    def test_from_function(self):
        t = TruthTable.from_function(2, lambda a, b: a & b)
        assert t.mask == 0b1000

    def test_from_minterms(self):
        t = TruthTable.from_minterms(2, [0, 3])
        assert t.mask == 0b1001
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_from_string_round_trip(self):
        t = TruthTable.from_string("1000")
        assert t.mask == 0b1000
        assert t.to_string() == "1000"
        with pytest.raises(ValueError):
            TruthTable.from_string("101")

    def test_mask_bounds(self):
        with pytest.raises(ValueError):
            TruthTable(1, 16)


class TestAlgebra:
    @given(tables(3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_demorgan(self, t, data):
        u = TruthTable(t.num_inputs, data.draw(
            st.integers(min_value=0, max_value=(1 << t.size) - 1)))
        assert (~(t & u)).mask == (~t | ~u).mask

    @given(tables(4))
    @settings(max_examples=30, deadline=None)
    def test_xor_self_is_zero(self, t):
        assert (t ^ t).mask == 0

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0) & TruthTable.constant(3, 0)


class TestStructure:
    @given(tables(4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_cofactor_semantics(self, t, data):
        index = data.draw(st.integers(0, t.num_inputs - 1))
        value = data.draw(st.integers(0, 1))
        c = t.cofactor(index, value)
        for m in range(t.size):
            fixed = (m | (1 << index)) if value else (m & ~(1 << index))
            assert c.eval_index(m) == t.eval_index(fixed)
        assert not c.depends_on(index)

    def test_drop_input(self):
        t = TruthTable.from_function(3, lambda a, b, c: a ^ c)
        dropped = t.drop_input(1)
        assert dropped.num_inputs == 2
        assert dropped.eval((1, 0)) == 1
        with pytest.raises(ValueError):
            t.drop_input(0)  # a is in the support

    @given(tables(4))
    @settings(max_examples=40, deadline=None)
    def test_minimize_support_preserves_function(self, t):
        reduced, kept = t.minimize_support()
        assert reduced.num_inputs == len(kept)
        for m in range(t.size):
            sub = 0
            for j, old in enumerate(kept):
                if (m >> old) & 1:
                    sub |= 1 << j
            assert reduced.eval_index(sub) == t.eval_index(m)

    def test_remap_inputs_permutation(self):
        t = TruthTable.from_function(2, lambda a, b: a & ~b & 1)
        swapped = t.remap_inputs(2, [1, 0])
        assert swapped.eval((0, 1)) == 1
        assert swapped.eval((1, 0)) == 0

    def test_remap_inputs_merge(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        merged = t.remap_inputs(1, [0, 0])
        assert merged.mask == 0  # x ^ x == 0

    def test_flip_input(self):
        t = TruthTable.from_function(2, lambda a, b: a & b)
        flipped = t.flip_input(0)
        assert flipped.eval((0, 1)) == 1
        assert flipped.eval((1, 1)) == 0

    @given(tables(4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_flip_involution(self, t, data):
        j = data.draw(st.integers(0, t.num_inputs - 1))
        assert t.flip_input(j).flip_input(j).mask == t.mask

    def test_compose(self):
        f = TruthTable.from_function(2, lambda a, b: a | b)
        inner = TruthTable.from_function(2, lambda a, b: a & b)
        # Substitute (a & b) for input 1: result = a | (a & b) = a.
        composed = f.compose(1, inner)
        assert composed.minimize_support()[1] == [0]

    @given(tables(4))
    @settings(max_examples=30, deadline=None)
    def test_support_consistency(self, t):
        support = t.support()
        for j in range(t.num_inputs):
            assert (j in support) == t.depends_on(j)

    def test_counts(self):
        t = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        assert t.count_ones() == 1
        assert t.on_set() == [7]
