"""Large stand-in circuits: structural validation without mapping them.

Mapping the large circuits is exercised by ``REPRO_FULL=1`` benchmark
runs; these tests only verify the generators produce well-formed,
correctly-profiled networks quickly.
"""

from __future__ import annotations

import pytest

from repro.circuits import CIRCUITS, build, names
from repro.network import random_vectors, simulate_vectors


@pytest.mark.parametrize("name", names(["large"]))
def test_large_builds_match_profile(name):
    spec = CIRCUITS[name]
    net = build(name)
    assert len(net.inputs) == spec.num_inputs
    assert len(net.outputs) == spec.num_outputs
    # Acyclic and simulatable.
    order = net.topological_order()
    assert len(order) == net.num_nodes
    patterns = random_vectors(net, 8, seed=1)
    results = simulate_vectors(net, patterns, 8)
    assert set(results) == set(net.output_names)


@pytest.mark.parametrize("name", names(["large"]))
def test_large_builds_deterministic(name):
    a = build(name)
    b = build(name)
    nodes_a = [(n.name, tuple(n.fanins), n.table.mask) for n in a.nodes()]
    nodes_b = [(n.name, tuple(n.fanins), n.table.mask) for n in b.nodes()]
    assert nodes_a == nodes_b


def test_structural_flow_handles_a_large_circuit():
    # One end-to-end large mapping in the unit suite: e64 through the
    # node-local flow with simulation screening (fast, no global BDDs).
    from repro.mapping import map_structural

    result = map_structural(build("e64"), k=5, verify="sim")
    assert result.lut_count > 0
