"""Tests for equivalence checking."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.network import (
    EquivalenceError,
    Network,
    check_equivalence,
    simulate_equivalence,
)
from repro.network.equiv import assert_equivalent

XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
OR2 = TruthTable.from_function(2, lambda a, b: a | b)


def xor_net(name: str, table: TruthTable) -> Network:
    net = Network(name)
    net.add_input("a")
    net.add_input("b")
    net.add_node("f", ["a", "b"], table)
    net.add_output("f")
    return net


class TestCheckEquivalence:
    def test_equal_networks(self):
        # Same function, different structure.
        a = xor_net("a", XOR2)
        b = Network("b")
        b.add_input("a")
        b.add_input("b")
        nand = TruthTable.from_function(2, lambda x, y: 1 - (x & y))
        b.add_node("n1", ["a", "b"], nand)
        b.add_node("n2", ["a", "n1"], nand)
        b.add_node("n3", ["b", "n1"], nand)
        b.add_node("f", ["n2", "n3"], nand)
        b.add_output("f")
        assert check_equivalence(a, b) is None

    def test_detects_difference(self):
        assert check_equivalence(xor_net("a", XOR2), xor_net("b", OR2)) == "f"

    def test_io_mismatch_rejected(self):
        a = xor_net("a", XOR2)
        b = Network("b")
        b.add_input("a")
        b.add_node("f", ["a"], TruthTable.from_function(1, lambda x: x))
        b.add_output("f")
        with pytest.raises(ValueError):
            check_equivalence(a, b)

    def test_assert_equivalent_raises(self):
        with pytest.raises(EquivalenceError):
            assert_equivalent(xor_net("a", XOR2), xor_net("b", OR2))


class TestSimulateEquivalence:
    def test_finds_difference(self):
        # XOR vs OR differ on (1,1): 1/4 of the space, so 256 random
        # vectors will certainly expose it.
        assert simulate_equivalence(
            xor_net("a", XOR2), xor_net("b", OR2), num_vectors=256
        ) == "f"

    def test_passes_identical(self):
        assert simulate_equivalence(
            xor_net("a", XOR2), xor_net("b", XOR2), num_vectors=64
        ) is None
