"""CLI table regeneration commands (small circuit class)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.mark.parametrize("table", ["table1", "table2"])
def test_cli_table_small(table, capsys):
    assert main([table, "--classes", "small"]) == 0
    out = capsys.readouterr().out
    assert "measured vs paper" in out
    assert "TOTAL" in out
    assert "9sym" in out and "z4ml" in out
