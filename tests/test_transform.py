"""Tests for network restructuring passes."""

from __future__ import annotations

import itertools

import pytest

from repro.boolfunc import TruthTable
from repro.network import (
    Network,
    check_equivalence,
    collapse_network,
    collapse_node,
    propagate_constant_inputs,
    simplify_local,
    simulate,
    sweep,
)

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
BUF = TruthTable.from_function(1, lambda a: a)


def build_demo() -> Network:
    net = Network("demo")
    for pi in ("a", "b", "c", "d"):
        net.add_input(pi)
    net.add_node("t", ["a", "b"], AND2)
    net.add_node("u", ["t", "c"], XOR2)
    net.add_output("u")
    return net


class TestSweep:
    def test_removes_dead_nodes(self):
        net = build_demo()
        net.add_node("dead1", ["a"], BUF)
        net.add_node("dead2", ["dead1", "b"], AND2)
        removed = sweep(net)
        assert removed >= 2
        assert "dead1" not in net.node_names()
        assert "dead2" not in net.node_names()

    def test_propagates_constants(self):
        net = build_demo()
        net.add_constant("one", 1)
        net.add_node("k", ["u", "one"], AND2)  # k == u
        net.add_output("k")
        before = net.copy()
        sweep(net)
        assert check_equivalence(net, before) is None
        # the constant and the AND should both be gone or reduced
        assert all(
            node.table.num_inputs >= 1 or not net.fanouts()[node.name]
            for node in net.nodes()
        )

    def test_propagates_buffers(self):
        net = build_demo()
        net.add_node("buf", ["u"], BUF)
        net.add_node("v", ["buf", "d"], AND2)
        net.add_output("v")
        before = net.copy()
        sweep(net)
        assert check_equivalence(net, before) is None
        assert "buf" not in net.node_names()

    def test_buffer_driving_output_rerouted(self):
        net = build_demo()
        net.add_node("buf", ["u"], BUF)
        net.add_output("buf", "ob")
        before = net.copy()
        sweep(net)
        assert check_equivalence(net, before) is None
        assert net.output_driver("ob") == "u"

    def test_constant_output(self):
        net = Network("k")
        net.add_input("a")
        net.add_constant("zero", 0)
        net.add_node("f", ["a", "zero"], AND2)  # f == 0
        net.add_output("f")
        before = net.copy()
        sweep(net)
        assert check_equivalence(net, before) is None

    def test_alias_collapsing_duplicate_fanin(self):
        # After buffer propagation two fanins refer to the same signal.
        net = Network("dup")
        net.add_input("a")
        net.add_input("b")
        net.add_node("buf", ["a"], BUF)
        net.add_node("f", ["a", "buf"], XOR2)  # == a ^ a == 0
        net.add_output("f")
        before = net.copy()
        sweep(net)
        assert check_equivalence(net, before) is None


class TestSimplifyLocal:
    def test_drops_vacuous_fanins(self):
        net = Network("v")
        net.add_input("a")
        net.add_input("b")
        vac = TruthTable.from_function(2, lambda a, b: a)
        net.add_node("f", ["a", "b"], vac)
        net.add_output("f")
        assert simplify_local(net) == 1
        assert net.node("f").fanins == ["a"]


class TestCollapse:
    def test_collapse_node_preserves_function(self):
        net = build_demo()
        before = net.copy()
        collapse_node(net, "t", "u")
        assert check_equivalence(net, before) is None
        assert "t" not in net.node("u").fanins

    def test_collapse_requires_fanin(self):
        net = build_demo()
        with pytest.raises(ValueError):
            collapse_node(net, "u", "t")

    def test_collapse_network(self):
        net = build_demo()
        flat = collapse_network(net)
        assert check_equivalence(net, flat) is None
        for node in flat.nodes():
            assert all(flat.is_input(fi) for fi in node.fanins)

    def test_collapse_network_limit(self):
        net = Network("wide")
        pis = [net.add_input(f"i{j}") for j in range(25)]
        acc = pis[0]
        for j, pi in enumerate(pis[1:]):
            net.add_node(f"x{j}", [acc, pi], XOR2)
            acc = f"x{j}"
        net.add_output(acc)
        with pytest.raises(ValueError):
            collapse_network(net, max_inputs=20)


class TestPropagateConstants:
    def test_specialisation(self):
        net = build_demo()
        spec = propagate_constant_inputs(net, {"a": 1})
        assert "a" not in spec.inputs
        for b, c, d in itertools.product([0, 1], repeat=3):
            full = simulate(net, {"a": 1, "b": b, "c": c, "d": d})
            part = simulate(spec, {"b": b, "c": c, "d": d})
            assert full == part

    def test_all_constant(self):
        net = build_demo()
        spec = propagate_constant_inputs(net, {"a": 1, "b": 1, "c": 0, "d": 0})
        out = simulate(spec, {})
        assert out["u"] == 1
