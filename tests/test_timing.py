"""Tests for the timing helpers."""

from __future__ import annotations

import time

from repro.harness import Stopwatch, timed


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure("a"):
            time.sleep(0.01)
        with sw.measure("a"):
            time.sleep(0.01)
        with sw.measure("b"):
            pass
        assert sw.durations["a"] >= 0.02
        assert "a" in sw.report() and "b" in sw.report()

    def test_report_sorted_by_duration(self):
        sw = Stopwatch()
        with sw.measure("short"):
            pass
        with sw.measure("long"):
            time.sleep(0.02)
        lines = sw.report().splitlines()
        assert lines[0].startswith("long")


def test_timed_prints(capsys):
    with timed("block"):
        pass
    out = capsys.readouterr().out
    assert "block:" in out
