"""Tests for NPN utilities and DOT export."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import (
    TruthTable,
    apply_transform,
    npn_canonical,
    npn_classes,
    npn_equivalent,
    npn_transforms,
)
from repro.network import Network, network_to_dot

small_tables = st.builds(
    TruthTable, st.just(3), st.integers(min_value=0, max_value=255)
)


class TestNpn:
    def test_and_or_equivalent(self):
        and2 = TruthTable.from_function(2, lambda a, b: a & b)
        or2 = TruthTable.from_function(2, lambda a, b: a | b)
        nand2 = ~and2
        assert npn_equivalent(and2, or2)  # De Morgan: NPN-same class
        assert npn_equivalent(and2, nand2)

    def test_xor_not_equivalent_to_and(self):
        and2 = TruthTable.from_function(2, lambda a, b: a & b)
        xor2 = TruthTable.from_function(2, lambda a, b: a ^ b)
        assert not npn_equivalent(and2, xor2)

    @given(small_tables, st.data())
    @settings(max_examples=30, deadline=None)
    def test_canonical_invariant_under_transform(self, table, data):
        transforms = list(npn_transforms(3))
        transform = data.draw(st.sampled_from(transforms))
        moved = apply_transform(table, transform)
        assert npn_canonical(moved)[0].mask == npn_canonical(table)[0].mask

    @given(small_tables)
    @settings(max_examples=30, deadline=None)
    def test_canonical_transform_is_witness(self, table):
        canonical, transform = npn_canonical(table)
        assert apply_transform(table, transform).mask == canonical.mask

    def test_classes_grouping(self):
        and2 = TruthTable.from_function(2, lambda a, b: a & b)
        or2 = TruthTable.from_function(2, lambda a, b: a | b)
        xor2 = TruthTable.from_function(2, lambda a, b: a ^ b)
        groups = npn_classes([and2, or2, xor2])
        assert sorted(map(sorted, groups)) == [[0, 1], [2]]

    def test_arity_mismatch(self):
        a = TruthTable.constant(2, 1)
        b = TruthTable.constant(3, 1)
        assert not npn_equivalent(a, b)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            npn_canonical(TruthTable.constant(6, 0))


class TestDot:
    def _net(self) -> Network:
        net = Network("dotnet")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", ["a", "b"], TruthTable.from_function(2, lambda a, b: a & b))
        net.add_output("f")
        return net

    def test_basic_render(self):
        dot = network_to_dot(self._net())
        assert "digraph" in dot
        assert '"a" -> "f"' in dot
        assert "doublecircle" in dot

    def test_highlighting(self):
        dot = network_to_dot(self._net(), highlight=["f"])
        assert "fillcolor" in dot

    def test_size_guard(self):
        net = self._net()
        with pytest.raises(ValueError):
            network_to_dot(net, max_nodes=0)
