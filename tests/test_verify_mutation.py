"""The mutation engine and the checker self-validation harness."""

from __future__ import annotations

import pytest

from repro.mapping import hyde_map
from repro.network import check_equivalence, simulate_equivalence
from repro.verify import (
    MUTATION_KINDS,
    Mutation,
    apply_mutation,
    random_network,
    sample_mutations,
    self_validate,
)


@pytest.fixture(scope="module")
def mapped():
    source = random_network(4)
    return hyde_map(source, k=4, verify="bdd", pack_clbs=False).network


def test_sampled_mutations_are_distinct_and_applicable(mapped):
    mutations = sample_mutations(mapped, 25, seed=0)
    assert len(mutations) == 25
    assert len(set(mutations)) == 25
    for mutation in mutations:
        assert mutation.kind in MUTATION_KINDS
        mutant = apply_mutation(mapped, mutation)  # must not raise
        # Semantic at the node: the mutated node's local function changed.
        assert (
            mutant.node(mutation.node).table.mask
            != mapped.node(mutation.node).table.mask
        )


def test_sampling_is_seed_deterministic(mapped):
    assert sample_mutations(mapped, 10, seed=3) == sample_mutations(
        mapped, 10, seed=3
    )
    assert sample_mutations(mapped, 10, seed=3) != sample_mutations(
        mapped, 10, seed=4
    )


def test_mutant_preserves_interface(mapped):
    for mutation in sample_mutations(mapped, 8, seed=1):
        mutant = apply_mutation(mapped, mutation)
        assert mutant.inputs == mapped.inputs
        assert mutant.output_names == mapped.output_names
        assert sorted(mutant.node_names()) == sorted(mapped.node_names())


def test_every_kind_changes_behavior_observably():
    """Each mutation kind, applied to a single-node net, flips the output."""
    from repro.boolfunc import TruthTable
    from repro.network import Network

    net = Network("tiny")
    for j in range(3):
        net.add_input(f"i{j}")
    # Asymmetric in pins 0/2 (f = i0 AND NOT i2) so swap_inputs is
    # semantic; on-set {1, 3} so cube-level mutations apply too.
    net.add_node("n", ["i0", "i1", "i2"], TruthTable(3, 0b00001010))
    net.add_output("n", "o")
    cases = [
        Mutation("flip_literal", "n", (3, 0)),
        Mutation("drop_cube", "n", (3,)),
        Mutation("swap_inputs", "n", (0, 2)),
        Mutation("stuck_output", "n", (1,)),
    ]
    for mutation in cases:
        mutant = apply_mutation(net, mutation)
        assert check_equivalence(net, mutant) is not None, mutation


def test_inapplicable_mutation_raises(mapped):
    node = mapped.node_names()[0]
    with pytest.raises(ValueError):
        # Dropping a cube that is not in the on-set is not a fault.
        off = next(
            m
            for m in range(mapped.node(node).table.size)
            if not mapped.node(node).table.eval_index(m)
        )
        apply_mutation(mapped, Mutation("drop_cube", node, (off,)))


def test_self_validation_catches_all_mutants(mapped):
    report = self_validate(mapped, num_mutants=15, seed=2)
    assert report.ok, report.summary()
    assert report.total == 15
    assert report.detected + report.masked == report.total
    assert report.missed == 0
    assert report.false_alarms == 0
    # The acceptance property, in miniature: every real fault localized
    # and confirmed.
    for outcome in report.outcomes:
        if not outcome.masked:
            assert outcome.localized and outcome.confirmed


def test_masked_mutants_reported_equivalent():
    """A fault behind observably-redundant logic must not raise alarms.

    Build one by hand: two nodes compute the same function, the output
    ORs a node with itself (absorbing), so flipping the shadowed node's
    cube cannot be observed.
    """
    from repro.boolfunc import TruthTable
    from repro.network import Network

    net = Network("masked")
    a = net.add_input("a")
    b = net.add_input("b")
    net.add_node("f", [a, b], TruthTable(2, 0b1000))
    net.add_node("shadow", [a, b], TruthTable(2, 0b1000))
    # out = f OR (f AND shadow): shadow is redundant.
    net.add_node("both", ["f", "shadow"], TruthTable(2, 0b1000))
    net.add_node("out", ["f", "both"], TruthTable(2, 0b1110))
    net.add_output("out", "o")
    mutation = Mutation("drop_cube", "shadow", (3,))
    mutant = apply_mutation(net, mutation)
    assert check_equivalence(net, mutant) is None  # truly masked
    from repro.verify import finegrain_check

    report = finegrain_check(net, mutant)
    assert report.equivalent  # no false alarm


def test_mutants_detected_by_simulation_screen_too(mapped):
    """Sanity cross-check: most unmasked faults show up in random sim."""
    found = 0
    for mutation in sample_mutations(mapped, 10, seed=5):
        mutant = apply_mutation(mapped, mutation)
        if check_equivalence(mapped, mutant) is None:
            continue
        if simulate_equivalence(mapped, mutant, num_vectors=256) is not None:
            found += 1
    assert found > 0
