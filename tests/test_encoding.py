"""Tests for the chart encoder (paper Figure 3), including the Example 3.2
trace and semantic round-trip properties of the produced encodings."""

from __future__ import annotations

import math
import random

import pytest

from repro.bdd import FALSE, TRUE, BddManager, build_cube
from repro.circuits import example_3_2_partitions
from repro.decompose import (
    DecompositionOptions,
    build_image_function,
    canonical_codes,
    combine_column_sets,
    combine_row_sets,
    compute_classes,
    count_classes,
    encode_classes,
    row_merge_benefit,
)
from repro.decompose.compatible import Column


class TestCanonicalCodes:
    def test_shape(self):
        codes = canonical_codes(5, 3)
        assert len(codes) == 5
        assert codes[3] == {0: 1, 1: 1, 2: 0}

    def test_too_few_bits(self):
        with pytest.raises(ValueError):
            canonical_codes(5, 2)


class TestBuildImage:
    def test_image_recovers_classes(self):
        m = BddManager(4)
        a, b = m.var_at_level(0), m.var_at_level(1)
        fcs = [Column(a), Column(b), Column(m.apply_xor(a, b))]
        alpha = [2, 3]
        codes = canonical_codes(3, 2)
        image = build_image_function(m, alpha, codes, fcs)
        for i, fc in enumerate(fcs):
            assignment = {alpha[j]: codes[i][j] for j in range(2)}
            assert m.restrict(image.on, assignment) == fc.on
        # The unused code (1,1) is fully don't care.
        unused = {2: 1, 3: 1}
        assert m.restrict(image.dc, unused) == TRUE

    def test_strictness(self):
        # Each class owns exactly one code: ORing all used cubes with the
        # dc of unused codes covers the whole alpha space.
        m = BddManager(2)
        fcs = [Column(TRUE), Column(FALSE)]
        image = build_image_function(m, [0], canonical_codes(2, 1), fcs)
        assert image.dc == FALSE  # no unused code with 2 classes / 1 bit


class TestColumnSets:
    def test_figure_4b_psc_table(self):
        parts = example_3_2_partitions()
        result = combine_column_sets(parts, num_rows=4)
        assert result.psc_table == {
            (0, 3): [2, 7],
            (1, 3): [3, 4, 6, 7, 8],
            (0, 2): [5, 8],
        }

    def test_figure_5_matching(self):
        parts = example_3_2_partitions()
        result = combine_column_sets(parts, num_rows=4)
        # Optimal b-matching weight is 40 (see test_matching for the
        # standalone graph); grouping shape: one 4-member set drawn from
        # {3,4,6,7,8} and every partition in at most one set.
        assert result.matching_weight == 40
        sizes = sorted(len(s) for s in result.column_sets)
        assert max(sizes) == 4
        big = next(s for s in result.column_sets if len(s) == 4)
        assert set(big) <= {3, 4, 6, 7, 8}
        flat = [c for s in result.column_sets for c in s]
        assert sorted(flat) == list(range(10))

    def test_no_shared_content(self):
        from repro.decompose import Partition
        parts = [Partition((0, 1, 2, 3)), Partition((4, 5, 6, 7))]
        result = combine_column_sets(parts, num_rows=2)
        assert result.psc_table == {}
        assert sorted(map(len, result.column_sets)) == [1, 1]


class TestRowSets:
    def test_example_3_2_fits_4x4(self):
        parts = example_3_2_partitions()
        col_result = combine_column_sets(parts, num_rows=4)
        rows = combine_row_sets(parts, col_result, num_rows=4, num_cols=4)
        assert rows is not None
        row_sets, column_set_of_class = rows
        assert len(row_sets) <= 4
        assert all(len(r) <= 4 for r in row_sets)
        flat = sorted(c for r in row_sets for c in r)
        assert flat == list(range(10))

    def test_benefit_shared_symbols(self):
        from repro.decompose import Partition
        a = Partition((0, 1, 0, 2))
        b = Partition((0, 3, 0, 1))
        c = Partition((7, 8, 9, 9))
        # a and b share symbols 0 and 1 -> larger Bc than a and c.
        n = 8
        b_ab = row_merge_benefit(a, b, n, sigma=0, tau=1)
        b_ac = row_merge_benefit(a, c, n, sigma=0, tau=1)
        assert b_ab > b_ac

    def test_benefit_br_counts_shared_kinds(self):
        from repro.decompose import Partition
        a = Partition((0, 1, 0, 2))
        b = Partition((0, 1, 2, 2))  # same symbol kinds as a
        c = Partition((5, 6, 7, 7))  # disjoint kinds
        n = 8
        assert row_merge_benefit(a, b, n, 1, 0) > row_merge_benefit(a, c, n, 1, 0)


class TestAbsorbSingletons:
    """The in-place singleton absorption of Step 6/7's fitting loop."""

    @staticmethod
    def _invariants(state):
        flat = [c for s in state.column_sets for c in s]
        assert len(flat) == len(set(flat)), (
            f"class in two column sets: {state.column_sets}"
        )
        for cls, idx in state.column_set_of_class.items():
            assert cls in state.column_sets[idx], (
                f"class {cls} mapped to set {idx} it is not a member of"
            )

    def test_two_absorptions_disjoint_rows(self):
        from repro.decompose.encoding import _absorb_singletons, _RowState

        state = _RowState(
            row_sets=[[0, 1], [3, 5]],
            column_sets=[[0], [1, 2], [3, 4], [5]],
            column_set_of_class={0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3},
        )
        _absorb_singletons(state, num_rows=4)
        self._invariants(state)
        # 0 joins [3, 4] (the only multi set without a member in its row);
        # 5 joins [1, 2] likewise.  Both singleton sets are compacted away.
        assert sorted(map(sorted, state.column_sets)) == [
            [0, 3, 4], [1, 2, 5],
        ]

    def test_mapping_repaired_between_rows(self):
        # Regression: the absorbed class's column_set_of_class entry used
        # to stay pointing at its emptied singleton set until the end of
        # the call.  A later row consulting the mapping then saw the class
        # as still-singleton and absorbed it a *second* time, leaving it a
        # member of two column sets.
        from repro.decompose.encoding import _absorb_singletons, _RowState

        state = _RowState(
            row_sets=[[0, 1], [0, 3]],
            column_sets=[[0], [1, 2], [3, 4], [5]],
            column_set_of_class={0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3},
        )
        _absorb_singletons(state, num_rows=4)
        self._invariants(state)


def _decomposable_function(m: BddManager):
    """f over 8 vars with bound {0..4} giving a handful of classes."""
    a = [m.var_at_level(i) for i in range(8)]
    g1 = m.apply_and(a[0], m.apply_or(a[1], a[2]))
    g2 = m.apply_xor(a[3], a[4])
    core = m.apply_or(m.apply_and(g1, a[5]), m.apply_and(g2, a[6]))
    return m.apply_xor(core, m.apply_and(a[7], g1))


class TestEncodeClasses:
    def _setup(self, policy: str):
        m = BddManager(8)
        f = _decomposable_function(m)
        classes = compute_classes(m, f, [0, 1, 2, 3, 4])
        n = classes.num_classes
        t = max(1, math.ceil(math.log2(n)))
        alpha = []
        for _ in range(t):
            m.add_var()
            alpha.append(m.num_vars - 1)
        result = encode_classes(
            m, classes.class_functions, alpha, k=5, policy=policy
        )
        return m, f, classes, alpha, result

    def test_codes_are_strict(self):
        m, f, classes, alpha, result = self._setup("chart")
        seen = {tuple(sorted(code.items())) for code in result.codes}
        assert len(seen) == len(result.codes)

    def test_image_round_trip(self):
        # g with the alpha codes substituted recovers f.
        m, f, classes, alpha, result = self._setup("chart")
        rebuilt = FALSE
        for position, cls in enumerate(classes.class_of_position):
            bound_cube = build_cube(
                m, {lv: (position >> j) & 1 for j, lv in enumerate([0, 1, 2, 3, 4])}
            )
            code = result.codes[cls]
            g_slice = m.restrict(
                result.image.on, {alpha[j]: bit for j, bit in code.items()}
            )
            rebuilt = m.apply_or(rebuilt, m.apply_and(bound_cube, g_slice))
        assert rebuilt == f

    def test_chart_not_worse_than_random(self):
        m, f, classes, alpha, result = self._setup("chart")
        if result.policy_used == "chart":
            assert result.image_classes_chart <= result.image_classes_random
        # When "random" won, the encoder must have kept the draft codes.
        if result.policy_used == "random":
            assert result.codes == canonical_codes(len(result.codes), len(alpha))

    def test_random_policy_stops_early(self):
        m, f, classes, alpha, result = self._setup("random")
        assert result.policy_used in ("random", "trivial")
        assert result.codes == canonical_codes(len(result.codes), len(alpha))

    def test_trivial_when_feasible(self):
        m = BddManager(4)
        a, b = m.var_at_level(0), m.var_at_level(1)
        fcs = [Column(a), Column(b)]
        m.add_var()
        result = encode_classes(m, fcs, [m.num_vars - 1], k=5)
        assert result.policy_used == "trivial"

    def test_needs_two_classes(self):
        m = BddManager(2)
        with pytest.raises(ValueError):
            encode_classes(m, [Column(TRUE)], [0], k=5)

    def test_alpha_count_checked(self):
        m = BddManager(4)
        fcs = [Column(m.var_at_level(0)), Column(m.var_at_level(1)),
               Column(TRUE)]
        with pytest.raises(ValueError):
            encode_classes(m, fcs, [2], k=5)  # 3 classes need 2 bits
