"""Tests for BLIF and PLA parsing / serialisation."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.network import (
    Network,
    check_equivalence,
    parse_blif,
    parse_pla,
    to_blif,
    to_pla,
)


def demo_net() -> Network:
    net = Network("demo")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_node("t", ["a", "b"], TruthTable.from_function(2, lambda a, b: a ^ b))
    net.add_node("f", ["t", "c"], TruthTable.from_function(2, lambda t, c: t | c))
    net.add_output("f")
    net.add_output("t", "tout")
    return net


class TestBlif:
    def test_round_trip(self):
        net = demo_net()
        again = parse_blif(to_blif(net))
        assert check_equivalence(net, again) is None

    def test_parse_dont_care_cubes(self):
        text = """
.model dc
.inputs a b c
.outputs f
.names a b c f
1-0 1
01- 1
.end
"""
        net = parse_blif(text)
        from repro.network import simulate
        assert simulate(net, {"a": 1, "b": 0, "c": 0})["f"] == 1
        assert simulate(net, {"a": 1, "b": 1, "c": 0})["f"] == 1
        assert simulate(net, {"a": 0, "b": 1, "c": 1})["f"] == 1
        assert simulate(net, {"a": 0, "b": 0, "c": 0})["f"] == 0

    def test_parse_zero_polarity(self):
        text = """
.model zp
.inputs a b
.outputs f
.names a b f
11 0
.end
"""
        net = parse_blif(text)
        from repro.network import simulate
        assert simulate(net, {"a": 1, "b": 1})["f"] == 0
        assert simulate(net, {"a": 0, "b": 1})["f"] == 1

    def test_parse_constants(self):
        text = """
.model k
.inputs a
.outputs f g
.names f
1
.names g
.end
"""
        net = parse_blif(text)
        from repro.network import simulate
        out = simulate(net, {"a": 0})
        assert out["f"] == 1 and out["g"] == 0

    def test_out_of_order_names(self):
        text = """
.model ooo
.inputs a b
.outputs f
.names t f
1 1
.names a b t
11 1
.end
"""
        net = parse_blif(text)
        from repro.network import simulate
        assert simulate(net, {"a": 1, "b": 1})["f"] == 1

    def test_undefined_signal_reported(self):
        text = """
.model bad
.inputs a
.outputs f
.names a ghost f
11 1
.end
"""
        with pytest.raises(ValueError, match="ghost"):
            parse_blif(text)

    def test_continuation_lines(self):
        text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        net = parse_blif(text)
        assert net.inputs == ["a", "b"]

    def test_mixed_polarity_rejected(self):
        text = """
.model m
.inputs a b
.outputs f
.names a b f
11 1
00 0
.end
"""
        with pytest.raises(ValueError):
            parse_blif(text)


class TestPla:
    def test_round_trip_via_flat(self):
        from repro.network import collapse_network
        flat = collapse_network(demo_net())
        again = parse_pla(to_pla(flat))
        assert check_equivalence(flat, again) is None

    def test_parse_basic(self):
        text = """
.i 3
.o 2
.ilb x y z
.ob f g
.p 2
1-1 10
011 01
.e
"""
        net = parse_pla(text)
        assert net.inputs == ["x", "y", "z"]
        assert net.output_names == ["f", "g"]
        from repro.network import simulate
        assert simulate(net, {"x": 1, "y": 0, "z": 1})["f"] == 1
        assert simulate(net, {"x": 1, "y": 1, "z": 1})["f"] == 1
        assert simulate(net, {"x": 0, "y": 1, "z": 1})["g"] == 1
        assert simulate(net, {"x": 0, "y": 1, "z": 1})["f"] == 0

    def test_default_names(self):
        net = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert net.inputs == ["i0", "i1"]
        assert net.output_names == ["o0"]

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            parse_pla("11 1\n")

    def test_joined_cube_format(self):
        # Some PLA writers omit the space between input and output parts.
        net = parse_pla(".i 2\n.o 1\n111\n.e\n")
        from repro.network import simulate
        assert simulate(net, {"i0": 1, "i1": 1})["o0"] == 1
