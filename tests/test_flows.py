"""Integration tests: complete mapping flows on real benchmark circuits.

Every flow must produce a k-feasible network that is *provably equivalent*
to the original circuit (the flows verify internally with BDDs; these
tests additionally assert structural properties and flow relationships).
"""

from __future__ import annotations

import pytest

from repro.circuits import build, popcount, ripple_adder
from repro.mapping import (
    hyde_map,
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
)
from repro.network import check_equivalence, is_k_feasible


class TestHydeFlow:
    def test_9sym_matches_paper(self):
        result = hyde_map(build("9sym"), k=5)
        assert is_k_feasible(result.network, 5)
        # Paper Table 2: HYDE maps 9sym into 6 LUTs.
        assert result.lut_count == 6

    def test_z4ml(self):
        result = hyde_map(build("z4ml"), k=5)
        # Paper Table 2: 5 LUTs; Table 1: 4 CLBs.
        assert result.lut_count <= 6
        assert result.clb_count <= 5

    def test_rd84_close_to_paper(self):
        result = hyde_map(build("rd84"), k=5)
        assert result.lut_count <= 11  # paper: 9

    def test_misex1_golden_luts_and_depth(self):
        # Golden (LUTs, depth) pin: cleanup runs to a global fixpoint
        # before stats are taken, so the numbers reported here are the
        # numbers of the network actually emitted to BLIF.  A change to
        # cleanup ordering or depth accounting shows up as a diff in
        # this pair.
        from repro.mapping.lut import (
            absorb_inverters,
            count_luts,
            dedup_nodes,
        )
        from repro.network import node_depths, parse_blif, sweep, to_blif

        result = hyde_map(build("misex1"), k=5)
        assert (result.lut_count, result.depth) == (14, 3)

        # The measured network is already sweep-stable: another full
        # cleanup round finds nothing to do.
        net = result.network.copy()
        assert sweep(net) == 0
        assert dedup_nodes(net) == 0
        assert absorb_inverters(net) == 0

        # And a BLIF round trip preserves exactly the measured pair.
        emitted = parse_blif(to_blif(result.network))
        depths = node_depths(emitted)
        assert max(
            depths[driver] for _, driver in emitted.outputs
        ) == result.depth
        assert count_luts(emitted, 5) == result.lut_count

    def test_groups_cover_outputs(self):
        net = build("rd73")
        result = hyde_map(net, k=5)
        grouped = sorted(o for g in result.groups for o in g)
        assert grouped == sorted(net.output_names)

    def test_duplicate_outputs_shared(self):
        net = popcount(6, "pc6")
        # Add a duplicate output of s0.
        net.add_output(net.output_driver("s0"), "s0_copy")
        result = hyde_map(net, k=5)
        assert "s0_copy" in result.details["aliases"]

    def test_k4(self):
        result = hyde_map(build("rd73"), k=4)
        assert is_k_feasible(result.network, 4)

    def test_verify_sim_mode(self):
        result = hyde_map(build("z4ml"), k=5, verify="sim")
        assert result.lut_count >= 1


class TestBaselines:
    def test_per_output_policies(self):
        net = build("rd73")
        random_result = map_per_output(net, 5, encoding_policy="random")
        chart_result = map_per_output(build("rd73"), 5, encoding_policy="chart")
        assert is_k_feasible(random_result.network, 5)
        assert is_k_feasible(chart_result.network, 5)

    def test_resub_not_worse(self):
        net = build("rd73")
        base = map_per_output(net, 5, encoding_policy="random")
        resub = map_per_output_resub(build("rd73"), 5, encoding_policy="random")
        assert resub.lut_count <= base.lut_count

    def test_column_encoding_runs(self):
        result = map_column_encoding(build("z4ml"), 5)
        assert is_k_feasible(result.network, 5)
        assert result.flow == "column-encoding"

    def test_shannon_correct_but_larger(self):
        net = build("9sym")
        shannon = map_shannon(net, 5)
        hyde = hyde_map(build("9sym"), 5)
        assert is_k_feasible(shannon.network, 5)
        # Shannon/MUX mapping is the weakest flow on symmetric functions.
        assert shannon.lut_count >= hyde.lut_count

    def test_flows_equivalent_to_each_other(self):
        net = build("z4ml")
        a = hyde_map(build("z4ml"), 5, verify="none")
        b = map_shannon(build("z4ml"), 5, verify="none")
        assert check_equivalence(a.network, b.network) is None


class TestStructuredCircuits:
    def test_adder_flow(self):
        net = ripple_adder(5, name="add5")
        result = hyde_map(net, k=5)
        assert is_k_feasible(result.network, 5)
        # A 5-bit ripple adder fits in about 2 LUTs per bit.
        assert result.lut_count <= 14

    def test_alu2_flow(self):
        result = hyde_map(build("alu2"), k=5)
        assert is_k_feasible(result.network, 5)
        assert result.clb_count is not None
