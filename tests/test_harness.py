"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.harness import (
    TABLE1_CLB,
    TABLE2_LUT,
    ExperimentRecord,
    FlowRecord,
    CircuitRecord,
    format_cell,
    render_comparison,
    render_table,
    run_experiment,
)
from repro.mapping import hyde_map, map_per_output


class TestPaperData:
    def test_table1_totals_match_paper(self):
        # The paper reports Total IMODEC = 1453 and HYDE = 1272.
        assert sum(v["imodec"] for v in TABLE1_CLB.values()) == 1453
        assert sum(v["hyde"] for v in TABLE1_CLB.values()) == 1272

    def test_table1_subtotal(self):
        # Subtotal over circuits where all three tools report: the paper
        # gives 964 / 895 / 864.
        rows = [v for v in TABLE1_CLB.values() if all(x is not None for x in v.values())]
        assert sum(v["imodec"] for v in rows) == 964
        assert sum(v["fgsyn"] for v in rows) == 895
        assert sum(v["hyde"] for v in rows) == 864

    def test_table2_totals(self):
        # The paper's Total row covers the circuits where [8] reports:
        # 1578 / 1317 / 1166 / 1311.
        rows = [v for v in TABLE2_LUT.values() if v["no_resub"] is not None]
        assert sum(v["no_resub"] for v in rows) == 1578
        assert sum(v["resub"] for v in rows) == 1317
        assert sum(v["po"] for v in rows) == 1166
        assert sum(v["hyde"] for v in rows) == 1311

    def test_table2_subtotal_minus_alu4(self):
        # Paper: Subtotal(-alu4) rows comparable across all columns:
        # 1406 / 1227 / 1110 / 1105.
        rows = {
            name: v
            for name, v in TABLE2_LUT.items()
            if name != "alu4" and v["no_resub"] is not None
        }
        assert sum(v["no_resub"] for v in rows.values()) == 1406
        assert sum(v["resub"] for v in rows.values()) == 1227
        assert sum(v["po"] for v in rows.values()) == 1110
        assert sum(v["hyde"] for v in rows.values()) == 1105


class TestRecords:
    def _record(self) -> ExperimentRecord:
        rec = ExperimentRecord("exp", "lut_count")
        c = CircuitRecord("foo", 4, 2, True)
        c.flows["a"] = FlowRecord("a", lut_count=5, clb_count=3)
        c.flows["b"] = FlowRecord("b", error="boom")
        rec.circuits.append(c)
        return rec

    def test_value_and_totals(self):
        rec = self._record()
        assert rec.circuits[0].value("a", "lut_count") == 5
        assert rec.circuits[0].value("b", "lut_count") is None
        assert rec.totals("a") == 5
        assert rec.totals("b") is None

    def test_subtotal(self):
        rec = self._record()
        assert rec.subtotal("a", ["foo"]) == 5
        assert rec.subtotal("a", ["bar"]) == 0

    def test_json_round_trip(self):
        rec = self._record()
        again = ExperimentRecord.from_json(rec.to_json())
        assert again.experiment == rec.experiment
        assert again.totals("a") == rec.totals("a")
        assert again.circuits[0].flows["b"].error == "boom"


class TestRendering:
    def test_format_cell(self):
        assert format_cell(None).strip() == "-"
        assert format_cell(12).strip() == "12"
        assert format_cell(1.25).strip() == "1.2"

    def test_render_table(self):
        text = render_table("T", ["x", "y"], [[1, 2], [3, None]])
        assert "T" in text and "-" in text

    def test_render_comparison(self):
        rec = ExperimentRecord("exp", "lut_count")
        c = CircuitRecord("9sym", 9, 1, True)
        c.flows["hyde"] = FlowRecord("hyde", lut_count=6)
        rec.circuits.append(c)
        text = render_comparison(
            rec, ["hyde"], TABLE2_LUT, {"hyde": "hyde"}, "cmp"
        )
        assert "9sym" in text and "paper:hyde" in text and "TOTAL" in text


class TestRunner:
    def test_run_experiment_records_errors(self):
        def broken(net, k, verify="bdd"):
            raise RuntimeError("nope")

        rec = run_experiment(
            "t", {"broken": broken}, ["z4ml"], metric="lut_count"
        )
        assert rec.circuits[0].flows["broken"].error is not None

    def test_run_experiment_success(self):
        rec = run_experiment(
            "t",
            {"hyde": lambda net, k, verify="bdd": hyde_map(net, k, verify=verify)},
            ["z4ml"],
        )
        assert rec.totals("hyde") >= 1
