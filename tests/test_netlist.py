"""Tests for the Network data structure."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.network import Network

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
OR2 = TruthTable.from_function(2, lambda a, b: a | b)


def small_net() -> Network:
    net = Network("t")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    net.add_node("x", ["a", "b"], AND2)
    net.add_node("y", ["x", "c"], OR2)
    net.add_output("y")
    return net


class TestConstruction:
    def test_duplicate_signal_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.add_input("a")
        with pytest.raises(ValueError):
            net.add_node("x", ["a"], TruthTable.constant(1, 0))

    def test_unknown_fanin_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.add_node("z", ["nope"], TruthTable.constant(1, 0))

    def test_arity_mismatch_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.add_node("z", ["a"], AND2)

    def test_duplicate_fanin_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.add_node("z", ["a", "a"], AND2)

    def test_outputs(self):
        net = small_net()
        net.add_output("x", "alias")
        assert net.output_names == ["y", "alias"]
        assert net.output_driver("alias") == "x"
        with pytest.raises(ValueError):
            net.add_output("x", "alias")

    def test_fresh_name(self):
        net = small_net()
        name = net.fresh_name("x")
        assert not net.has_signal(name)

    def test_constants(self):
        net = Network("c")
        net.add_constant("one", 1)
        assert net.node("one").table.mask == 1


class TestTopology:
    def test_topological_order(self):
        net = small_net()
        order = net.topological_order()
        assert order.index("x") < order.index("y")

    def test_cycle_detected(self):
        net = Network("cyc")
        net.add_input("a")
        net.add_node("u", ["a"], TruthTable.constant(1, 0))
        net.add_node("v", ["u"], TruthTable.constant(1, 0))
        # Manually create a cycle (bypassing the public API on purpose).
        net._nodes["u"].fanins[0] = "v"
        with pytest.raises(ValueError):
            net.topological_order()

    def test_transitive_fanin_fanout(self):
        net = small_net()
        assert net.transitive_fanin(["y"]) == {"y", "x", "a", "b", "c"}
        assert net.transitive_fanout(["a"]) == {"a", "x", "y"}
        assert net.transitive_fanout(["c"]) == {"c", "y"}

    def test_support_of(self):
        net = small_net()
        assert net.support_of("x") == ["a", "b"]
        assert net.support_of("y") == ["a", "b", "c"]

    def test_fanouts(self):
        net = small_net()
        fo = net.fanouts()
        assert fo["a"] == ["x"]
        assert fo["x"] == ["y"]
        assert fo["y"] == []


class TestMutation:
    def test_replace_node(self):
        net = small_net()
        net.replace_node("y", ["x"], TruthTable.from_function(1, lambda v: 1 - v))
        assert net.node("y").fanins == ["x"]

    def test_remove_node_guards(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.remove_node("x")  # still read by y
        with pytest.raises(ValueError):
            net.remove_node("y")  # drives an output
        net.reroute_output("y", "x")
        net.remove_node("y")
        assert "y" not in net.node_names()

    def test_reroute_output(self):
        net = small_net()
        net.reroute_output("y", "a")
        assert net.output_driver("y") == "a"
        with pytest.raises(KeyError):
            net.reroute_output("nope", "a")

    def test_copy_independent(self):
        net = small_net()
        dup = net.copy()
        dup.replace_node("y", ["x"], TruthTable.from_function(1, lambda v: v))
        assert net.node("y").fanins == ["x", "c"]
        assert dup.node("y").fanins == ["x"]
