"""Additional HYDE-flow behaviours: clustering, constants, aliases,
splice hygiene and failure injection."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.circuits import popcount
from repro.mapping import cluster_outputs, hyde_map
from repro.mapping.hyde import _splice
from repro.network import Network, check_equivalence, simulate

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)


class TestClusterOutputs:
    def test_groups_by_similarity(self):
        supports = {
            "x": ["a", "b", "c"],
            "y": ["a", "b", "d"],
            "z": ["p", "q", "r"],
        }
        groups = cluster_outputs(supports, max_group=2)
        by_member = {o: tuple(g) for g in groups for o in g}
        assert by_member["x"] == by_member["y"]
        assert by_member["z"] != by_member["x"]

    def test_max_group_respected(self):
        supports = {f"o{i}": ["a", "b"] for i in range(10)}
        groups = cluster_outputs(supports, max_group=4)
        assert all(len(g) <= 4 for g in groups)
        assert sum(len(g) for g in groups) == 10

    def test_disjoint_supports_stay_apart(self):
        supports = {"x": ["a"], "y": ["b"], "z": ["c"]}
        groups = cluster_outputs(supports, max_group=3)
        assert len(groups) == 3


class TestHydeEdgeCases:
    def test_constant_outputs(self):
        net = Network("k")
        net.add_input("a")
        net.add_constant("zero", 0)
        net.add_node("f", ["a", "zero"], AND2)  # == 0
        net.add_node("g", ["a", "zero"], XOR2)  # == a
        net.add_output("f")
        net.add_output("g")
        result = hyde_map(net, k=5)
        out0 = simulate(result.network, {"a": 0})
        out1 = simulate(result.network, {"a": 1})
        assert out0["f"] == out1["f"] == 0
        assert out0["g"] == 0 and out1["g"] == 1

    def test_output_aliasing_pi(self):
        net = Network("alias")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", ["a", "b"], AND2)
        net.add_output("f")
        net.add_output("a", "passthrough")
        result = hyde_map(net, k=5)
        assert simulate(result.network, {"a": 1, "b": 0})["passthrough"] == 1

    def test_inverted_duplicate_outputs(self):
        net = popcount(6, "pc")
        driver = net.output_driver("s0")
        inv = TruthTable.from_function(1, lambda v: 1 - v)
        net.add_node("inv_s0", [driver], inv)
        net.add_output("inv_s0", "ns0")
        result = hyde_map(net, k=5)
        out = simulate(result.network, {f"i{j}": 1 for j in range(6)})
        assert out["ns0"] == 1 - out["s0"]

    def test_broken_flow_detected(self):
        # Failure injection: corrupt the mapped network and confirm the
        # equivalence checker (the flow's own safety net) would catch it.
        net = popcount(5, "pc5")
        result = hyde_map(net, k=5, verify="none")
        mapped = result.network
        victim = next(
            n for n in mapped.nodes() if n.table.num_inputs >= 1
        )
        mapped.replace_node(
            victim.name, victim.fanins, ~victim.table
        )
        assert check_equivalence(net, mapped) is not None


class TestSplice:
    def test_name_collisions_resolved(self):
        dest = Network("dest")
        dest.add_input("a")
        dest.add_node("g0_n0", ["a"], TruthTable.from_function(1, lambda v: v))
        frag = Network("frag")
        frag.add_input("a")
        frag.add_node("n0", ["a"], TruthTable.from_function(1, lambda v: 1 - v))
        frag.add_output("n0", "o")
        rename = _splice(dest, frag, "g0_")
        assert rename["n0"] != "g0_n0" or dest.node("g0_n0").table.mask == 0b01

    def test_pi_identity(self):
        dest = Network("dest")
        dest.add_input("a")
        frag = Network("frag")
        frag.add_input("a")
        frag.add_node("x", ["a"], TruthTable.from_function(1, lambda v: v))
        frag.add_output("x", "o")
        rename = _splice(dest, frag, "p_")
        assert rename["a"] == "a"
        assert rename["x"] == "p_x"
