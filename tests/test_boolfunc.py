"""Tests for BoolFunction / FunctionSpace / IncompleteFunction."""

from __future__ import annotations

import pytest

from repro.bdd import FALSE, TRUE, BddManager
from repro.boolfunc import BoolFunction, FunctionSpace, IncompleteFunction, TruthTable


class TestFunctionSpace:
    def test_vars_and_algebra(self):
        sp = FunctionSpace(["a", "b", "c"])
        a, b, c = sp.vars()
        f = (a & b) | ~c
        assert f.eval({"a": 0, "b": 0, "c": 0}) == 1
        assert f.eval({"a": 0, "b": 0, "c": 1}) == 0
        assert f.eval({"a": 1, "b": 1, "c": 1}) == 1

    def test_constant(self):
        sp = FunctionSpace(["a"])
        assert sp.constant(1).is_constant()
        assert sp.constant(0).eval({"a": 1}) == 0

    def test_from_truth_table_and_back(self):
        sp = FunctionSpace(["x", "y", "z"])
        t = TruthTable.from_function(2, lambda x, z: x ^ z)
        f = sp.from_truth_table(t, ["x", "z"])
        assert f.support() == ["x", "z"]
        assert f.to_truth_table(["x", "z"]).mask == t.mask

    def test_from_callable(self):
        sp = FunctionSpace(["p", "q"])
        f = sp.from_callable(lambda p, q: p & ~q & 1, ["p", "q"])
        assert f.eval({"p": 1, "q": 0}) == 1


class TestBoolFunction:
    def test_xor_and_invert(self):
        sp = FunctionSpace(["a", "b"])
        a, b = sp.vars()
        assert ((a ^ b) ^ b) == a
        assert ~~a == a

    def test_cofactor(self):
        sp = FunctionSpace(["a", "b"])
        a, b = sp.vars()
        f = a & b
        assert f.cofactor("a", 1) == b
        assert f.cofactor("a", 0).is_constant()

    def test_cross_manager_rejected(self):
        f = FunctionSpace(["a"]).var("a")
        g = FunctionSpace(["a"]).var("a")
        with pytest.raises(ValueError):
            _ = f & g

    def test_hash_and_eq(self):
        sp = FunctionSpace(["a", "b"])
        a, b = sp.vars()
        assert len({a & b, b & a}) == 1


class TestIncompleteFunction:
    def _mk(self):
        m = BddManager(3)
        a, b, c = (m.var_at_level(i) for i in range(3))
        return m, a, b, c

    def test_disjointness_enforced(self):
        m, a, b, c = self._mk()
        with pytest.raises(ValueError):
            IncompleteFunction(m, a, a)

    def test_off_set(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, a, m.apply_and(m.apply_not(a), b))
        # off = !a & !b
        assert f.off == m.apply_and(m.apply_not(a), m.apply_not(b))

    def test_compatibility_symmetric(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, m.apply_and(a, b), m.apply_not(a))
        g = IncompleteFunction(m, m.apply_and(a, c), m.apply_not(a))
        assert f.compatible_with(g) == g.compatible_with(f)

    def test_merge_requires_compatibility(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, a, FALSE)
        g = IncompleteFunction(m, m.apply_not(a), FALSE)
        assert not f.compatible_with(g)
        with pytest.raises(ValueError):
            f.merge(g)

    def test_merge_narrows_dc(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, m.apply_and(a, b), m.apply_not(a))
        g = IncompleteFunction(m, m.apply_and(a, b), m.apply_not(b))
        merged = f.merge(g)
        assert merged.on == m.apply_and(a, b)
        assert merged.dc == m.apply_and(m.apply_not(a), m.apply_not(b))

    def test_equals_on_care_set(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, m.apply_and(a, b), m.apply_not(a))
        # a & b agrees with f wherever f cares (a=1 region), as does a & b & ...
        assert f.equals_on_care_set(m.apply_and(a, b))
        assert f.equals_on_care_set(
            m.apply_or(m.apply_and(a, b), m.apply_not(a))
        )
        assert not f.equals_on_care_set(a)

    def test_restrict(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, m.apply_and(a, b), FALSE)
        r = f.restrict({0: 1})
        assert r.on == b

    def test_support(self):
        m, a, b, c = self._mk()
        f = IncompleteFunction(m, a, m.apply_and(m.apply_not(a), c))
        assert f.support() == [0, 2]
