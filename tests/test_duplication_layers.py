"""Deeper duplication-analysis tests: DSet layers with three PPIs and
the Section-4.2 duplication-cost accounting."""

from __future__ import annotations

import pytest

from repro.boolfunc import TruthTable
from repro.hyper import analyze_duplication
from repro.network import Network

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
XOR3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)


def three_ppi_net() -> Network:
    """Chain where successive nodes see 1, 2, then 3 PPIs."""
    net = Network("n")
    for pi in ("a", "b", "e0", "e1", "e2"):
        net.add_input(pi)
    net.add_node("u", ["a", "e0"], AND2)          # reaches e0
    net.add_node("v", ["u", "e1"], XOR2)          # reaches e0, e1
    net.add_node("w", ["v", "e2", "b"], XOR3)     # reaches all three
    net.add_node("shared", ["a", "b"], AND2)      # reaches none
    net.add_node("top", ["w", "shared"], AND2)    # reaches all three
    net.add_output("top", "H")
    return net


class TestDsetLayers:
    def test_layer_membership(self):
        info = analyze_duplication(three_ppi_net(), ["e0", "e1", "e2"])
        assert "u" in info.dset[1]
        assert "v" in info.dset[2]
        assert "w" in info.dset[3]
        assert "top" in info.dset[3]
        assert "shared" in info.dset[0]

    def test_ds_is_direct_fanin_only(self):
        info = analyze_duplication(three_ppi_net(), ["e0", "e1", "e2"])
        assert info.duplication_source == {"u", "v", "w"}
        assert "top" not in info.duplication_source

    def test_cone_is_tfo_of_ds(self):
        info = analyze_duplication(three_ppi_net(), ["e0", "e1", "e2"])
        assert info.duplication_cone == {"u", "v", "w", "top"}

    def test_cost_formula(self):
        # Section 4.2: DSet_m (m < n) costs 2^m - 1 extra copies; DSet_n
        # costs (ingredients - 1).
        info = analyze_duplication(three_ppi_net(), ["e0", "e1", "e2"])
        # u: 2^1-1 = 1; v: 2^2-1 = 3; w and top in DSet_3 with i=5
        # ingredients: (5-1) each = 8.  Total = 1 + 3 + 8 = 12.
        assert info.duplication_cost(num_ingredients=5) == 12

    def test_cost_with_max_ingredients(self):
        info = analyze_duplication(three_ppi_net(), ["e0", "e1", "e2"])
        # With 8 ingredients (full code space): DSet_3 nodes cost 7 each.
        assert info.duplication_cost(num_ingredients=8) == 1 + 3 + 7 + 7
