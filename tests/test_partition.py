"""Tests for partition algebra, including the paper's verbatim examples."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import example_3_2_partitions, example_4_2_partitions
from repro.decompose import (
    Partition,
    conjunction,
    contains,
    disjunction,
    psc_key,
    same_content_position_groups,
)

partitions4 = st.lists(
    st.integers(min_value=0, max_value=3), min_size=4, max_size=4
).map(lambda xs: Partition(tuple(xs)))


class TestBasics:
    def test_multiplicity(self):
        assert Partition((0, 1, 2, 3)).multiplicity == 4
        assert Partition((1, 0, 0, 0)).multiplicity == 2
        assert Partition((5, 5, 5)).multiplicity == 1

    def test_positions_and_blocks(self):
        p = Partition((1, 2, 1, 2))
        assert p.positions_of(1) == (0, 2)
        assert p.blocks() == [(0, 2), (1, 3)]

    def test_canonical(self):
        assert Partition((7, 3, 7, 9)).canonical() == Partition((0, 1, 0, 2))

    def test_refines(self):
        fine = Partition((0, 1, 2, 3))
        coarse = Partition((0, 0, 1, 1))
        assert fine.refines(coarse)
        assert not coarse.refines(fine)
        with pytest.raises(ValueError):
            fine.refines(Partition((0, 1)))

    def test_str(self):
        assert str(Partition((3, 0, 1, 3))) == "<3,0,1,3>"


class TestConjunction:
    def test_paper_example_psc(self):
        # Πc of {Π2, Π7} has the same content at p0 and p3 (Figure 4b).
        parts = example_3_2_partitions()
        pc = conjunction([parts[2], parts[7]])
        groups = same_content_position_groups(pc)
        assert groups == [(0, 3)]

    def test_paper_example_big_conjunction(self):
        # Πc of {Π3, Π4, Π6, Π7, Π8} shares content at p1 and p3.
        parts = example_3_2_partitions()
        pc = conjunction([parts[i] for i in (3, 4, 6, 7, 8)])
        assert same_content_position_groups(pc) == [(1, 3)]

    def test_conjunction_refined_by_members(self):
        a = Partition((0, 0, 1, 1))
        b = Partition((0, 1, 0, 1))
        pc = conjunction([a, b])
        assert pc.multiplicity == 4
        assert pc.refines(a) and pc.refines(b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            conjunction([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conjunction([Partition((0, 1)), Partition((0, 1, 2))])

    @given(partitions4, partitions4)
    @settings(max_examples=40, deadline=None)
    def test_multiplicity_bounds(self, a, b):
        pc = conjunction([a, b])
        assert pc.multiplicity >= max(a.multiplicity, b.multiplicity)
        assert pc.multiplicity <= a.multiplicity * b.multiplicity


class TestDisjunction:
    def test_concatenates_positions(self):
        a = Partition((0, 1))
        b = Partition((1, 2))
        d = disjunction([a, b])
        assert d.num_positions == 4
        assert d.multiplicity == 3  # shared symbol 1 collapses

    @given(partitions4, partitions4)
    @settings(max_examples=40, deadline=None)
    def test_symbols_union(self, a, b):
        d = disjunction([a, b])
        assert d.symbol_set() == a.symbol_set() | b.symbol_set()


class TestContainment:
    def test_paper_example_4_2(self):
        # Π0 is contained by Πc of {Π1, Π2}; multiplicity of Πc012 equals
        # the multiplicity of Πc12 (= 8), which the paper states.
        p0, p1, p2 = example_4_2_partitions()
        pc12 = conjunction([p1, p2])
        pc012 = conjunction([p0, p1, p2])
        assert pc12.multiplicity == 8
        assert pc012.multiplicity == 8
        assert contains(pc12, p0)

    def test_multiplicities_of_example_4_2(self):
        p0, p1, p2 = example_4_2_partitions()
        assert p0.multiplicity == 4
        assert p1.multiplicity == 6
        assert p2.multiplicity == 6

    def test_self_containment(self):
        p = Partition((0, 1, 0, 2))
        assert contains(p, p)

    def test_refinement_implies_containment(self):
        coarse = Partition((0, 0, 1, 1))
        fine = Partition((0, 1, 2, 3))
        assert contains(fine, coarse)
        assert not contains(coarse, fine)


class TestPscAnalysis:
    def test_figure_4a(self):
        # The paper's Figure 4(a): maximal same-content groups.
        parts = example_3_2_partitions()
        expected = {
            2: [(0, 3)],
            3: [(1, 3)],
            4: [(1, 3)],
            5: [(0, 2)],
            6: [(1, 2, 3)],
            7: [(0, 1, 3)],
            8: [(0, 2), (1, 3)],
        }
        for index, groups in expected.items():
            assert same_content_position_groups(parts[index]) == groups
        # Π0, Π1, Π9 have all-distinct content.
        for index in (0, 1, 9):
            assert same_content_position_groups(parts[index]) == []

    def test_psc_key(self):
        assert psc_key((3, 0)) == (0, 3)
