"""Tests for parallel group mapping (repro.mapping.parallel).

The worker pool must be invisible apart from wall time: ``jobs > 1``
ships each ingredient group's fan-in cone to a worker as BLIF text, and
the spliced result has to be equivalent to the single-process network.
Cone extraction (the serialization boundary) is tested directly too —
its PI-order preservation is what keeps the workers' bound-set
tie-breaking identical to the serial flow.
"""

from __future__ import annotations

import pytest

from repro.circuits import build
from repro.mapping import hyde_map, map_per_output
from repro.mapping.parallel import GroupTask, decompose_group_task, run_group_tasks
from repro.decompose import DecompositionOptions
from repro.network import check_equivalence, extract_cone, parse_blif, to_blif


class TestExtractCone:
    def test_cone_is_equivalent_on_kept_outputs(self):
        net = build("misex1")
        out = net.output_names[2]
        cone = extract_cone(net, [out])
        assert cone.output_names == [out]
        bad = check_equivalence(cone, extract_cone(net, [out]))
        assert bad is None

    def test_pi_relative_order_preserved(self):
        net = build("rd73")
        cone = extract_cone(net, [net.output_names[0]])
        positions = [net.inputs.index(pi) for pi in cone.inputs]
        assert positions == sorted(positions)

    def test_multi_output_cone(self):
        net = build("misex1")
        outs = net.output_names[:3]
        cone = extract_cone(net, outs, name="cone3")
        assert cone.name == "cone3"
        assert cone.output_names == outs


class TestGroupWorker:
    def test_worker_fragment_is_equivalent(self):
        net = build("rd73")
        out = net.output_names[0]
        cone = extract_cone(net, [out])
        task = GroupTask(
            blif_text=to_blif(cone),
            group=[out],
            gi=0,
            options=DecompositionOptions(k=5),
            base_name="w0",
        )
        res = decompose_group_task(task)
        fragment = parse_blif(res.blif_text)
        assert check_equivalence(cone, fragment) is None
        assert res.perf  # workers ship their counters home

    def test_run_group_tasks_serial_matches_pool(self):
        net = build("misex1")
        tasks = []
        for gi, out in enumerate(net.output_names[:3]):
            cone = extract_cone(net, [out])
            tasks.append(
                GroupTask(
                    blif_text=to_blif(cone),
                    group=[out],
                    gi=gi,
                    options=DecompositionOptions(k=5),
                    base_name=f"w{gi}",
                )
            )
        serial, report1 = run_group_tasks(tasks, jobs=1)
        pooled, report2 = run_group_tasks(tasks, jobs=2)
        assert report1.jobs_used == 1 and report2.jobs_used >= 1
        # A refused pool is a recorded (not silent) serial fallback.
        if report2.jobs_used == 1:
            assert report2.pool_fallback is not None
        assert [r.gi for r in serial] == [r.gi for r in pooled]
        for a, b in zip(serial, pooled):
            assert a.blif_text == b.blif_text


class TestJobsEquivalence:
    @pytest.mark.parametrize("circuit", ["misex1", "rd73"])
    def test_hyde_jobs2_equivalent(self, circuit):
        net = build(circuit)
        serial = hyde_map(net, verify="none", pack_clbs=False)
        parallel = hyde_map(
            build(circuit), verify="none", pack_clbs=False, jobs=2
        )
        assert check_equivalence(serial.network, parallel.network) is None
        assert parallel.lut_count == serial.lut_count
        perf = parallel.details["perf"]
        assert perf["jobs_requested"] == 2

    def test_per_output_jobs2_equivalent(self):
        net = build("rd73")
        serial = map_per_output(net, verify="none", pack_clbs=False)
        parallel = map_per_output(
            build("rd73"), verify="none", pack_clbs=False, jobs=2
        )
        assert check_equivalence(serial.network, parallel.network) is None
        assert parallel.lut_count == serial.lut_count

    def test_jobs_on_single_group_falls_back_to_serial(self):
        # 9sym has one output — nothing to fan out; jobs must be ignored.
        result = hyde_map(
            build("9sym"), verify="bdd", pack_clbs=False, jobs=4
        )
        assert result.details["perf"]["jobs_used"] == 1


def _signal_dispositions():
    import signal

    return (
        signal.getsignal(signal.SIGTERM) is signal.SIG_DFL,
        signal.getsignal(signal.SIGINT) is signal.SIG_IGN,
    )


def test_pool_workers_reset_inherited_signal_handlers():
    """Workers must not inherit graceful_shutdown's raising handler.

    Journaled runs create the pool inside graceful_shutdown(); a forked
    worker inheriting its raise-on-SIGTERM handler can unwind inside
    multiprocessing's queue internals when Pool.terminate() fires,
    leaking the shared inqueue lock and hanging pool teardown (a rare
    but real CI flake).  The initializer restores SIG_DFL/SIG_IGN.
    """
    from repro.mapping.parallel import _make_pool
    from repro.runstate import graceful_shutdown

    with graceful_shutdown():
        pool = _make_pool(2)
        try:
            term_dfl, int_ign = pool.apply(_signal_dispositions)
        finally:
            pool.terminate()
            pool.join()
    assert term_dfl, "worker SIGTERM handler not reset to SIG_DFL"
    assert int_ign, "worker SIGINT not ignored"
