"""Tests for support-minimising resubstitution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence
from repro.mapping import functionally_dependent, resubstitute

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)


class TestFunctionallyDependent:
    def test_dependent(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        target = a & b
        table = functionally_dependent(target, [a, b])
        assert table is not None
        assert table.mask == AND2.mask

    def test_independent(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        target = np.array([0, 1, 0, 0], dtype=np.uint8)
        assert functionally_dependent(target, [a]) is None

    def test_unreached_patterns_default_zero(self):
        a = np.array([0, 0], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        target = np.array([0, 1], dtype=np.uint8)
        table = functionally_dependent(target, [a, b])
        assert table is not None
        assert table.eval((1, 0)) == 0  # never observed -> 0


class TestResubstitute:
    def test_rediscovers_existing_subexpression(self):
        # f recomputes a & b internally although node x already provides it.
        net = Network("r")
        for pi in ("a", "b", "c"):
            net.add_input(pi)
        net.add_node("x", ["a", "b"], AND2)
        net.add_node(
            "f", ["a", "b", "c"],
            TruthTable.from_function(3, lambda a, b, c: (a & b) ^ c),
        )
        net.add_output("x")
        net.add_output("f")
        before = net.copy()
        rewrites = resubstitute(net, k=5)
        assert rewrites >= 1
        assert check_equivalence(net, before) is None
        assert sorted(net.node("f").fanins) == ["c", "x"]

    def test_no_rewrite_when_impossible(self):
        net = Network("r")
        for pi in ("a", "b", "c"):
            net.add_input(pi)
        net.add_node(
            "f", ["a", "b", "c"],
            TruthTable.from_function(3, lambda a, b, c: 1 if a + b + c >= 2 else 0),
        )
        net.add_output("f")
        assert resubstitute(net, k=5) == 0

    def test_large_pi_count_skipped(self):
        net = Network("big")
        pis = [net.add_input(f"i{j}") for j in range(20)]
        net.add_node("f", pis[:3], TruthTable.constant(3, 1))
        net.add_output("f")
        assert resubstitute(net, k=5, max_pis=14) == 0

    def test_preserves_equivalence_on_random_net(self):
        import random
        rng = random.Random(6)
        net = Network("rand")
        sigs = [net.add_input(f"i{j}") for j in range(6)]
        for n in range(10):
            fanins = rng.sample(sigs, 3)
            mask = rng.getrandbits(8)
            node = f"n{n}"
            net.add_node(node, fanins, TruthTable(3, mask))
            sigs.append(node)
        for n in (7, 9, 12, 15):
            net.add_output(f"n{n - 6}", f"o{n}")
        before = net.copy()
        resubstitute(net, k=5)
        assert check_equivalence(net, before) is None
