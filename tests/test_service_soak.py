"""Soak the service layer with the fuzz corpus, twice over.

Fifty seeded random networks are submitted through the service twice
each.  The first pass populates the store; the contract for the second
pass is absolute: every group task is served from cache (the ISSUE's
hit-rate floor is 99%; anything below 100% here means keys are
unstable across identical submissions) and every LUT count and output
network is byte-identical to the first pass.

Runs through :class:`MappingService` directly rather than a socket —
the wire layer is covered in ``test_service.py``; this suite targets
key stability and cache correctness at volume, and 100 socket round
trips would only add wall clock.
"""

from __future__ import annotations

import pytest

from repro.network import to_blif
from repro.service import MappingService, ResultStore
from repro.verify.generators import random_network

NUM_NETWORKS = 50

pytestmark = pytest.mark.slow


def _map(service: MappingService, blif: str):
    records = list(service.process({"op": "map", "blif": blif, "k": 4}))
    errors = [r for r in records if r["type"] == "error"]
    assert not errors, errors
    (result,) = [r for r in records if r["type"] == "result"]
    return result


def test_soak_second_pass_is_all_cache_hits(tmp_path):
    store = ResultStore(str(tmp_path / "soak.db"))
    service = MappingService(store, pool=None, jobs=1)
    corpus = [to_blif(random_network(seed)) for seed in range(NUM_NETWORKS)]

    first = [_map(service, blif) for blif in corpus]
    hits = sum(r["cache"]["hits"] for r in first)
    misses = sum(r["cache"]["misses"] for r in first)
    # Identical cones may repeat across the corpus, so some first-pass
    # hits are legitimate; every group must at least have been stored.
    assert misses > 0
    assert store.stats()["current_rows"] == misses

    second = [_map(service, blif) for blif in corpus]
    hits2 = sum(r["cache"]["hits"] for r in second)
    misses2 = sum(r["cache"]["misses"] for r in second)
    rejected2 = sum(r["cache"]["rejected"] for r in second)
    total2 = hits2 + misses2
    assert total2 == hits + misses, "group count drifted between passes"
    hit_rate = hits2 / total2
    assert hit_rate >= 0.99, (
        f"second-pass hit rate {hit_rate:.2%} "
        f"({misses2} miss(es) out of {total2})"
    )
    assert rejected2 == 0

    for seed, (a, b) in enumerate(zip(first, second)):
        assert b["luts"] == a["luts"], f"LUT drift on seed {seed}"
        assert b["blif"] == a["blif"], f"network drift on seed {seed}"

    session = store.stats()["session"]
    assert session["rejected_rows"] == 0
    assert store.validate() == []
    store.close()
