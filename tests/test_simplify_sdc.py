"""Tests for SDC-based node simplification."""

from __future__ import annotations

import random

import pytest

from repro.boolfunc import TruthTable
from repro.network import Network, check_equivalence
from repro.opt import node_care_set, simplify_with_sdc

AND2 = TruthTable.from_function(2, lambda a, b: a & b)
OR2 = TruthTable.from_function(2, lambda a, b: a | b)


class TestNodeCareSet:
    def test_detects_unreachable_patterns(self):
        # x = a & b, y = a | b: pattern (x=1, y=0) is unsatisfiable.
        net = Network("c")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("y", ["a", "b"], OR2)
        net.add_node("z", ["x", "y"], AND2)
        net.add_output("z")
        from repro.network.simulate import simulate_all_signals
        patterns = {
            pi: [(v >> j) & 1 for v in range(4)]
            for j, pi in enumerate(net.inputs)
        }
        words = simulate_all_signals(net, patterns, 4)
        care = node_care_set(words, ["x", "y"], 4)
        assert not (care >> 0b01) & 1  # x=1, y=0 unreachable
        assert (care >> 0b00) & 1
        assert (care >> 0b11) & 1


class TestSimplifyWithSdc:
    def test_exploits_implication(self):
        # z = x & y where x -> y: the y input is redundant given the SDC.
        net = Network("s")
        net.add_input("a")
        net.add_input("b")
        net.add_node("x", ["a", "b"], AND2)
        net.add_node("y", ["a", "b"], OR2)
        net.add_node("z", ["x", "y"], AND2)
        net.add_output("z")
        before = net.copy()
        improved = simplify_with_sdc(net)
        assert improved >= 1
        assert check_equivalence(net, before) is None
        assert len(net.node("z").fanins) == 1  # z == x under the SDC

    def test_no_change_when_all_reachable(self):
        net = Network("n")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", ["a", "b"], AND2)
        net.add_output("f")
        assert simplify_with_sdc(net) == 0

    def test_preserves_equivalence_on_random_networks(self):
        rng = random.Random(8)
        for trial in range(5):
            net = Network(f"r{trial}")
            sigs = [net.add_input(f"i{j}") for j in range(5)]
            for n in range(8):
                fanins = rng.sample(sigs, 3)
                net.add_node(
                    f"n{n}", fanins, TruthTable(3, rng.getrandbits(8))
                )
                sigs.append(f"n{n}")
            for j in (8, 10, 12):
                net.add_output(sigs[j], f"o{j}")
            before = net.copy()
            simplify_with_sdc(net)
            assert check_equivalence(net, before) is None

    def test_skips_wide_circuits(self):
        net = Network("wide")
        for j in range(20):
            net.add_input(f"i{j}")
        net.add_node("f", ["i0", "i1"], AND2)
        net.add_output("f")
        assert simplify_with_sdc(net, max_pis=14) == 0
