"""Tests for the matching substrate."""

from __future__ import annotations

import random

import pytest

from repro.decompose import (
    WeightedEdge,
    greedy_matching,
    max_weight_b_matching,
    max_weight_matching,
)


def is_matching(edges):
    used = set()
    for e in edges:
        if e.u in used or e.v in used:
            return False
        used.add(e.u)
        used.add(e.v)
    return True


class TestMaxWeightMatching:
    def test_simple_triangle(self):
        edges = [
            WeightedEdge("a", "b", 3),
            WeightedEdge("b", "c", 2),
            WeightedEdge("a", "c", 1),
        ]
        matched = max_weight_matching(edges)
        assert is_matching(matched)
        assert sum(e.weight for e in matched) == 3

    def test_prefers_total_weight_over_single_edge(self):
        edges = [
            WeightedEdge("a", "b", 5),
            WeightedEdge("a", "c", 3),
            WeightedEdge("b", "d", 3),
        ]
        matched = max_weight_matching(edges)
        assert sum(e.weight for e in matched) == 6

    def test_maxcardinality(self):
        edges = [
            WeightedEdge("a", "b", 10),
            WeightedEdge("c", "d", -1),
        ]
        plain = max_weight_matching(edges)
        full = max_weight_matching(edges, maxcardinality=True)
        assert len(plain) == 1
        assert len(full) == 2

    def test_empty(self):
        assert max_weight_matching([]) == []

    def test_parallel_edges_keep_best(self):
        edges = [WeightedEdge("a", "b", 1), WeightedEdge("a", "b", 7)]
        matched = max_weight_matching(edges)
        assert len(matched) == 1 and matched[0].weight == 7


class TestGreedyMatching:
    def test_is_matching(self):
        rng = random.Random(11)
        edges = [
            WeightedEdge(f"v{i}", f"v{j}", rng.randint(1, 20))
            for i in range(8)
            for j in range(i + 1, 8)
        ]
        assert is_matching(greedy_matching(edges))

    def test_half_approximation(self):
        rng = random.Random(3)
        for trial in range(10):
            edges = [
                WeightedEdge(f"v{i}", f"v{j}", rng.randint(1, 50))
                for i in range(6)
                for j in range(i + 1, 6)
                if rng.random() < 0.7
            ]
            if not edges:
                continue
            greedy = sum(e.weight for e in greedy_matching(edges))
            optimal = sum(e.weight for e in max_weight_matching(edges))
            assert greedy * 2 >= optimal


class TestBMatching:
    def test_capacity_respected(self):
        edges = [WeightedEdge(f"p{i}", "hub", 1) for i in range(5)]
        matched = max_weight_b_matching(edges, {"hub": 3})
        hub_degree = sum(1 for e in matched if "hub" in (e.u, e.v))
        assert hub_degree == 3

    def test_unit_capacity_equals_matching(self):
        edges = [
            WeightedEdge("a", "b", 4),
            WeightedEdge("b", "c", 5),
            WeightedEdge("c", "d", 4),
        ]
        matched = max_weight_b_matching(edges, {})
        assert sum(e.weight for e in matched) == 8

    def test_single_edge_both_capacities_two_not_duplicated(self):
        # Regression: with capacity >= 2 on both endpoints the cloned
        # graph holds vertex-disjoint copies (u0,v0) and (u1,v1) of the
        # one original edge, and the blossom matching happily takes both.
        # Folding back must not report the edge twice.
        edges = [WeightedEdge("u", "v", 10)]
        matched = max_weight_b_matching(edges, {"u": 2, "v": 2})
        assert len(matched) == 1
        assert matched[0].weight == 10
        assert {matched[0].u, matched[0].v} == {"u", "v"}

    def test_result_is_deterministic(self):
        edges = [
            WeightedEdge("a", "x", 3),
            WeightedEdge("b", "x", 2),
            WeightedEdge("a", "y", 1),
        ]
        runs = [
            max_weight_b_matching(edges, {"x": 2, "a": 2}) for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_property_capacities_and_multiplicity(self):
        # On random graphs with random capacities, the fold-back must
        # honour (a) each original edge at most once and (b) each vertex's
        # capacity.  Capacities >= 2 on both endpoints are common here,
        # which is exactly the regime the duplicate-fold-back bug lived in.
        from collections import Counter

        rng = random.Random(1998)
        for trial in range(25):
            n = rng.randint(2, 7)
            vertices = [f"v{i}" for i in range(n)]
            edges = [
                WeightedEdge(vertices[i], vertices[j], rng.randint(1, 9))
                for i in range(n)
                for j in range(i + 1, n)
                if rng.random() < 0.6
            ]
            if not edges:
                continue
            capacity = {
                v: rng.randint(1, 3) for v in vertices if rng.random() < 0.7
            }
            matched = max_weight_b_matching(edges, capacity)
            pair_count = Counter(
                tuple(sorted((e.u, e.v))) for e in matched
            )
            assert all(c == 1 for c in pair_count.values()), (
                f"trial {trial}: edge matched twice: {pair_count}"
            )
            degree = Counter()
            for e in matched:
                degree[e.u] += 1
                degree[e.v] += 1
            for v, d in degree.items():
                assert d <= capacity.get(v, 1), (
                    f"trial {trial}: {v} degree {d} exceeds capacity"
                )

    def test_paper_figure5_weight(self):
        # The Figure-5 column graph of Example 3.2: u13 (weight-7 edges to
        # 5 partitions, capacity 4), u03 (weight 4, 2 partitions), u02
        # (weight 4, 2 partitions).  Any optimum has total weight 40.
        edges = []
        cap = {}
        for name, weight, members in [
            ("u13", 7, ["p3", "p4", "p6", "p7", "p8"]),
            ("u03", 4, ["p2", "p7"]),
            ("u02", 4, ["p5", "p8"]),
        ]:
            cap[name] = 4
            for p in members:
                edges.append(WeightedEdge(p, name, weight))
        matched = max_weight_b_matching(edges, cap)
        assert sum(e.weight for e in matched) == 40
        # Each partition vertex used at most once.
        from collections import Counter
        counts = Counter()
        for e in matched:
            for end in (e.u, e.v):
                if str(end).startswith("p"):
                    counts[end] += 1
        assert all(c == 1 for c in counts.values())
