"""Resilience battery for the hardened mapping service.

Deterministic unit and integration coverage for the machinery the chaos
smoke (``tools/chaos_smoke.py``) exercises end to end: the typed error
taxonomy and deterministic-jitter backoff, torn-stream detection against
a misbehaving fake server, stale discovery files, client- and
server-side deadlines, bounded admission / load shedding, the warm-pool
circuit breaker (unit, with a fake clock, and integrated, against a real
fork pool), forced pool recycles, pipelined batch submission, store
fault budgets, and the ``--supervise`` crash-loop restart path.

The fake-server tests speak raw sockets on purpose: the bug class under
test is "daemon died mid-line", which only exists below the JSON layer.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sqlite3
import subprocess
import sys
import threading
import time

import pytest

from repro.circuits import build
from repro.mapping import hyde_map
from repro.network import parse_blif, to_blif
from repro.service import (
    CircuitBreaker,
    MappingDaemon,
    MappingService,
    RETRYABLE_CODES,
    ResultStore,
    ServiceClient,
    ServiceError,
    WarmPool,
)
from repro.testing import read_info, wait_for_info

MISEX1 = to_blif(build("misex1"))
RD73 = to_blif(build("rd73"))


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


class _DaemonThread:
    def __init__(self, tmp_path, jobs: int = 1, **kwargs):
        self.daemon = MappingDaemon(
            str(tmp_path / "cache.db"), jobs=jobs, **kwargs
        )
        self.thread = threading.Thread(
            target=self.daemon.serve, kwargs={"quiet": True}, daemon=True
        )
        self.thread.start()
        self.client = ServiceClient(
            self.daemon.host, self.daemon.port, timeout=120.0
        )

    def stop(self) -> None:
        try:
            self.client.shutdown()
        except (ServiceError, OSError):
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon failed to stop"


class _FakeServer:
    """A one-shot TCP server that misbehaves in a scripted way.

    ``script(conn)`` receives the accepted connection after the request
    line has been read; whatever it writes (or fails to write) is what
    the client sees.
    """

    def __init__(self, script):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.script = script
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            while True:
                conn, _ = self.sock.accept()
                with conn:
                    reader = conn.makefile("rb")
                    reader.readline()  # consume the request
                    self.script(conn)
                    # The makefile dup keeps the FD alive past close();
                    # shut down explicitly so the client sees a real FIN.
                    reader.close()
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
        except OSError:
            pass  # listener closed: done

    def close(self):
        try:
            self.sock.close()
        finally:
            self.thread.join(timeout=5)


# --------------------------------------------------------------------- #
# Error taxonomy and backoff
# --------------------------------------------------------------------- #


def test_error_codes_imply_retryability():
    assert ServiceError("x", code="busy").retryable
    assert ServiceError("x", code="torn_stream").retryable
    assert ServiceError("x", code="unavailable").retryable
    assert ServiceError("x", code="draining").retryable
    assert not ServiceError("x", code="bad_request").retryable
    assert not ServiceError("x", code="deadline").retryable
    assert not ServiceError("x", code="internal").retryable
    # Explicit override beats the code table.
    assert not ServiceError("x", code="busy", retryable=False).retryable
    assert RETRYABLE_CODES <= set(
        ("busy", "draining", "unavailable", "torn_stream")
    )


def test_backoff_is_deterministic_bounded_and_decorrelated():
    a = [ServiceClient.backoff_delay(i, token="tok-a") for i in range(6)]
    b = [ServiceClient.backoff_delay(i, token="tok-a") for i in range(6)]
    assert a == b, "same token+attempt must sleep identically"
    other = [ServiceClient.backoff_delay(i, token="tok-b") for i in range(6)]
    assert a != other, "distinct tokens must decorrelate"
    for i, delay in enumerate(a):
        raw = min(2.0, 0.05 * 2**i)
        assert 0.5 * raw <= delay <= raw, f"attempt {i} outside jitter band"
    # A larger server hint wins; a smaller one does not shrink the delay.
    assert ServiceClient.backoff_delay(0, retry_after=5.0) == 5.0
    small = ServiceClient.backoff_delay(4, token="t", retry_after=0.001)
    assert small >= 0.5 * min(2.0, 0.05 * 2**4)


# --------------------------------------------------------------------- #
# Torn streams and dead endpoints (fake servers, raw sockets)
# --------------------------------------------------------------------- #


def test_half_written_json_line_is_typed_torn_stream():
    torn = b'{"type": "result", "ok": true, "luts'  # no newline, no close

    def script(conn):
        conn.sendall(torn)

    server = _FakeServer(script)
    try:
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_blif(MISEX1)
        assert excinfo.value.code == "torn_stream"
        assert excinfo.value.retryable
        assert "JSONDecodeError" not in str(excinfo.value)
    finally:
        server.close()


def test_connection_closed_before_any_record_is_torn_stream():
    server = _FakeServer(lambda conn: None)  # read request, say nothing
    try:
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_blif(RD73)
        assert excinfo.value.code == "torn_stream"
        assert excinfo.value.retryable
    finally:
        server.close()


def test_nothing_listening_is_typed_unavailable():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # the port is now free: connections will be refused
    client = ServiceClient("127.0.0.1", port, timeout=2.0)
    with pytest.raises(ServiceError) as excinfo:
        client.ping()
    assert excinfo.value.code == "unavailable"
    assert excinfo.value.retryable


def test_stale_info_file_names_the_dead_daemon(tmp_path):
    # A real pid that is certainly dead: a finished child of ours.
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    info = tmp_path / "svc.json"
    info.write_text(
        json.dumps(
            {"host": "127.0.0.1", "port": port, "pid": child.pid,
             "started": 0.0}
        )
    )
    with pytest.raises(ServiceError) as excinfo:
        ServiceClient.from_info(str(info))
    err = excinfo.value
    assert err.code == "unavailable"
    assert str(child.pid) in str(err), "diagnosis must name the dead pid"
    assert "stale" in str(err).lower() or "gone" in str(err).lower()


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #


def test_client_deadline_bounds_the_retry_loop():
    def script(conn):  # permanently torn server: every attempt fails
        conn.sendall(b'{"type": "resu')

    server = _FakeServer(script)
    try:
        client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.submit_with_retry(MISEX1, retries=50, deadline=0.6)
        elapsed = time.monotonic() - start
        # Exhausting the deadline is terminal, not retryable, and the
        # loop must not sleep meaningfully past the deadline.
        assert excinfo.value.code in ("deadline", "torn_stream")
        assert not (
            excinfo.value.code == "deadline" and excinfo.value.retryable
        )
        assert elapsed < 5.0
    finally:
        server.close()


def test_server_deadline_rejects_after_queue_and_delay(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_DELAY", "0.3")
    harness = _DaemonThread(tmp_path, jobs=1)
    try:
        with pytest.raises(ServiceError) as excinfo:
            harness.client.submit_blif(MISEX1, deadline_seconds=0.1)
        assert excinfo.value.code == "deadline"
        assert not excinfo.value.retryable
        assert harness.client.stats()["resilience"]["deadline_rejects"] == 1
        # A sane deadline still completes.
        ok = harness.client.submit_blif(MISEX1, deadline_seconds=60.0)
        assert ok["luts"] == hyde_map(parse_blif(MISEX1), 5).lut_count
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Bounded admission / load shedding
# --------------------------------------------------------------------- #


def test_full_admission_queue_sheds_with_retry_after(tmp_path):
    with ResultStore(str(tmp_path / "s.db")) as store:
        service = MappingService(
            store, jobs=1, max_concurrent=1, max_queue=0
        )
        # Occupy the only slot so the next map must shed immediately.
        assert service._slots.acquire(blocking=False)
        records = list(
            service.process({"op": "map", "blif": MISEX1})
        )
        assert len(records) == 1
        shed = records[0]
        assert shed["type"] == "error"
        assert shed["code"] == "busy"
        assert shed["retry_after"] > 0
        assert service.sheds == 1
        service._slots.release()
        # With the slot free the same request succeeds.
        records = list(service.process({"op": "map", "blif": MISEX1}))
        assert records[-1]["type"] == "result"
        assert records[-1]["ok"] is True
        stats = service.stats()
        assert stats["resilience"]["sheds"] == 1
        assert stats["queue"]["max_queue"] == 0


def test_shed_burst_recovers_with_retries(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_DELAY", "0.2")
    harness = _DaemonThread(
        tmp_path, jobs=1, max_concurrent=1, max_queue=1, queue_timeout=0.2
    )
    try:
        outcomes = []

        def _submit(i):
            try:
                r = harness.client.submit_with_retry(
                    MISEX1, retries=15, deadline=60.0
                )
                outcomes.append(("ok", r["luts"]))
            except ServiceError as exc:
                outcomes.append((exc.code, None))

        threads = [
            threading.Thread(target=_submit, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert all(o[0] == "ok" for o in outcomes), outcomes
        assert len({o[1] for o in outcomes}) == 1
        stats = harness.client.stats()
        assert stats["resilience"]["sheds"] >= 1, (
            "burst never actually overflowed the queue"
        )
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #


def test_breaker_state_machine_with_fake_clock():
    now = {"t": 0.0}
    breaker = CircuitBreaker(
        threshold=2, cooldown=10.0, clock=lambda: now["t"]
    )
    assert breaker.allow_pool()
    assert not breaker.record_failure()  # 1 of 2
    assert breaker.record_failure()  # trips
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow_pool(), "open must refuse the pool"
    now["t"] = 9.9
    assert not breaker.allow_pool(), "cooldown not elapsed yet"
    now["t"] = 10.0
    assert breaker.allow_pool(), "first post-cooldown request is the probe"
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.allow_pool(), "only one probe at a time"
    # Failed probe: straight back to open, cooldown restarted.
    assert breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    now["t"] = 15.0
    assert not breaker.allow_pool()
    now["t"] = 20.0
    assert breaker.allow_pool()
    assert breaker.record_success(), "clean probe must report recovery"
    assert breaker.state == CircuitBreaker.CLOSED
    snap = breaker.snapshot()
    assert snap["trips"] == 2
    assert snap["recoveries"] == 1
    assert snap["probes"] == 2
    # A lone failure after recovery does not re-trip below threshold.
    assert not breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_trips_on_crash_loop_then_probe_heals(tmp_path):
    harness = _DaemonThread(
        tmp_path, jobs=2, breaker_threshold=2, breaker_cooldown=0.5
    )
    try:
        for _ in range(2):
            hurt = harness.client.submit_blif(MISEX1, faults="crash@0")
            assert hurt["ok"] is True  # ladder still recovers the answer
        health = harness.client.health()
        assert health["breaker"]["state"] == "open"
        assert health["status"] == "degraded"
        # While open: cache-only serial fallback, still correct.
        clean = harness.client.submit_blif(RD73, jobs=2)
        assert clean["luts"] == hyde_map(parse_blif(RD73), 5).lut_count
        assert clean["jobs_used"] == 1
        assert harness.client.stats()["resilience"]["breaker_serial"] >= 1
        time.sleep(0.6)  # past the cooldown: next request probes the pool
        probe = harness.client.submit_blif(RD73, jobs=2)
        assert probe["ok"] is True
        health = harness.client.health()
        assert health["breaker"]["state"] == "closed"
        assert health["breaker"]["recoveries"] >= 1
        assert health["status"] == "ok"
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Pool hygiene under leaks
# --------------------------------------------------------------------- #


def test_recycle_bounded_wait_forces_through_a_leak():
    pool = WarmPool(workers=2)
    try:
        first = pool.acquire()
        if first is None:
            pytest.skip("no fork pool on this platform")
        pool.acquire()
        pool.release()  # one of the two checkouts never comes back
        pool.mark_dirty()
        start = time.monotonic()
        forced = pool.recycle(timeout=0.3)
        waited = time.monotonic() - start
        assert forced is True, "leaked refcount must not block forever"
        assert 0.25 <= waited < 5.0
        assert pool.forced_recycles == 1
        assert pool.stats()["forced_recycles"] == 1
        # The pool is usable again after the forced recycle.
        fresh = pool.acquire()
        assert fresh is not None and fresh is not first
        pool.release()
        # And an idle pool recycles promptly without force.
        pool.mark_dirty()
        assert pool.recycle(timeout=5.0) is False
        assert pool.forced_recycles == 1
    finally:
        pool.close()


# --------------------------------------------------------------------- #
# Batch submission
# --------------------------------------------------------------------- #


def test_submit_batch_sweep_and_warm_pass_hit_rate(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=1, max_concurrent=4)
    try:
        texts = [MISEX1, RD73, to_blif(build("5xp1"))] * 2
        results, summary = harness.client.submit_batch(
            texts, max_in_flight=3, retries=4, deadline=120.0
        )
        assert summary["items"] == 6
        assert summary["ok"] == 6 and summary["failed"] == 0
        assert [r["index"] for r in results] == list(range(6))
        for i, entry in enumerate(results):
            assert entry["ok"], entry
            assert entry["result"]["blif"] == results[i % 3]["result"]["blif"]
        warm, warm_summary = harness.client.submit_batch(
            texts, max_in_flight=3, retries=4, deadline=120.0
        )
        assert warm_summary["ok"] == 6
        assert warm_summary["cache_hit_rate"] == 1.0
        assert warm_summary["cache_misses"] == 0
        for cold, hot in zip(results, warm):
            assert hot["result"]["blif"] == cold["result"]["blif"]
        assert harness.client.counters["batch_items"] == 12
    finally:
        harness.stop()


def test_submit_batch_collects_failures_without_aborting(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=1)
    try:
        texts = [MISEX1, "not blif at all", RD73]
        results, summary = harness.client.submit_batch(
            texts, max_in_flight=2, retries=1
        )
        assert summary["ok"] == 2 and summary["failed"] == 1
        bad = results[1]
        assert bad["ok"] is False
        assert bad["code"] == "bad_request"
        assert results[0]["ok"] and results[2]["ok"]
        assert harness.client.counters["batch_failures"] == 1
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Store fault budgets
# --------------------------------------------------------------------- #


def test_store_chaos_budget_spends_then_heals(tmp_path):
    path = str(tmp_path / "s.db")
    with ResultStore(path, chaos="put_error:2") as store:
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError, match="injected"):
                store.put("e" * 32, ".model m\n.end\n")
        assert store.injected_faults == 2
        assert store.op_errors == 2
        # Budget spent: the same write now lands and serves.
        store.put("e" * 32, ".model m\n.end\n")
        assert store.get("e" * 32)["blif"] == ".model m\n.end\n"
        session = store.stats()["session"]
        assert session["injected_faults"] == 2
        assert session["op_errors"] == 2


def test_get_failure_degrades_to_miss_not_crash(tmp_path):
    path = str(tmp_path / "s.db")
    with ResultStore(path) as store:
        store.put("f" * 32, ".model m\n.end\n")
    with ResultStore(path, chaos="get_error:1") as store:
        assert store.get("f" * 32) is None  # injected failure -> miss
        assert store.op_errors == 1
        hit = store.get("f" * 32)  # budget spent: served again
        assert hit is not None and hit["blif"] == ".model m\n.end\n"


# --------------------------------------------------------------------- #
# Health and counters surface
# --------------------------------------------------------------------- #


def test_health_op_reports_queue_breaker_and_store(tmp_path):
    harness = _DaemonThread(tmp_path, jobs=1, max_queue=7)
    try:
        health = harness.client.health()
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()
        assert health["uptime_seconds"] >= 0
        assert health["queue"]["max_queue"] == 7
        # active counts in-flight connections — the health request itself.
        assert health["queue"]["active"] == 1
        assert health["breaker"] is None  # jobs=1: no pool, no breaker
        stats = harness.client.stats()
        for counter in (
            "sheds", "deadline_rejects", "request_timeouts",
            "cache_write_errors", "breaker_serial",
        ):
            assert counter in stats["resilience"]
    finally:
        harness.stop()


# --------------------------------------------------------------------- #
# Supervision (real subprocesses: restarts and exit codes)
# --------------------------------------------------------------------- #


def _supervised_argv(store, info, *extra):
    return [
        sys.executable, "-m", "repro.cli", "serve",
        "--store", str(store), "--info", str(info),
        "--jobs", "1", "--quiet", "--supervise", *extra,
    ]


def _subprocess_env(**overrides):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(overrides)
    return env


def test_supervisor_restarts_killed_child_and_client_follows(tmp_path):
    info = tmp_path / "svc.json"
    proc = subprocess.Popen(
        _supervised_argv(tmp_path / "cache.db", info, "--max-restarts", "3"),
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        first = wait_for_info(str(info), timeout=30.0)
        client = ServiceClient.from_info(str(info), timeout=60.0)
        assert client.submit_blif(MISEX1)["ok"] is True
        # Murder the serving child; the supervisor (proc) must replace it.
        os.kill(first["pid"], signal.SIGKILL)
        second = wait_for_info(str(info), timeout=30.0, not_pid=first["pid"])
        assert second["pid"] != first["pid"]
        assert proc.poll() is None, "supervisor must outlive the child"
        # The old client follows the restart via the discovery file.
        result = client.submit_with_retry(MISEX1, retries=8, deadline=60.0)
        assert result["ok"] is True
        assert client.counters["refreshes"] >= 0  # endpoint may be reused
        # Clean dismissal passes through the supervisor: exit 0.
        client.refresh_endpoint()
        client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_supervised_info_file_carries_pid_and_start_time(tmp_path):
    info = tmp_path / "svc.json"
    proc = subprocess.Popen(
        _supervised_argv(tmp_path / "cache.db", info),
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        payload = wait_for_info(str(info), timeout=30.0)
        assert payload["pid"] != proc.pid, "info must name the child, not the supervisor"
        assert payload["started"] > 0
        assert read_info(str(info)) == payload
        client = ServiceClient.from_info(str(info), timeout=60.0)
        client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
