"""Differential stress tests: BDD operations vs reference truth-table
computation on randomly generated expression trees."""

from __future__ import annotations

import random

import pytest

from repro.bdd import FALSE, TRUE, BddManager

N = 6
FULL = (1 << (1 << N)) - 1


def random_expression(manager: BddManager, rng: random.Random, depth: int):
    """Build a random expression; returns (bdd, reference mask)."""
    var_masks = []
    for lv in range(N):
        mask = 0
        for m in range(1 << N):
            if (m >> lv) & 1:
                mask |= 1 << m
        var_masks.append(mask)

    def build(d):
        if d == 0 or rng.random() < 0.25:
            lv = rng.randrange(N)
            return manager.var_at_level(lv), var_masks[lv]
        op = rng.choice(["and", "or", "xor", "not", "ite"])
        if op == "not":
            f, mf = build(d - 1)
            return manager.apply_not(f), mf ^ FULL
        if op == "ite":
            c, mc = build(d - 1)
            t, mt = build(d - 1)
            e, me = build(d - 1)
            return manager.ite(c, t, e), (mc & mt) | ((mc ^ FULL) & me)
        f, mf = build(d - 1)
        g, mg = build(d - 1)
        if op == "and":
            return manager.apply_and(f, g), mf & mg
        if op == "or":
            return manager.apply_or(f, g), mf | mg
        return manager.apply_xor(f, g), mf ^ mg

    return build(depth)


@pytest.mark.parametrize("seed", range(20))
def test_expression_trees_match_reference(seed):
    rng = random.Random(seed)
    manager = BddManager(N)
    bdd, mask = random_expression(manager, rng, depth=5)
    assert manager.to_truth_table(bdd, list(range(N))) == mask


@pytest.mark.parametrize("seed", range(10))
def test_compose_differential(seed):
    rng = random.Random(1000 + seed)
    manager = BddManager(N)
    f, mf = random_expression(manager, rng, depth=4)
    g, mg = random_expression(manager, rng, depth=3)
    level = rng.randrange(N)
    composed = manager.compose(f, level, g)
    # Reference: for each minterm, re-evaluate with the bit substituted.
    expected = 0
    for m in range(1 << N):
        sub_bit = (mg >> m) & 1
        target = (m | (1 << level)) if sub_bit else (m & ~(1 << level))
        if (mf >> target) & 1:
            expected |= 1 << m
    assert manager.to_truth_table(composed, list(range(N))) == expected


@pytest.mark.parametrize("seed", range(10))
def test_vector_compose_differential(seed):
    rng = random.Random(2000 + seed)
    manager = BddManager(N)
    f, mf = random_expression(manager, rng, depth=4)
    subs = {}
    sub_masks = {}
    for lv in rng.sample(range(N), 2):
        g, mg = random_expression(manager, rng, depth=3)
        subs[lv] = g
        sub_masks[lv] = mg
    composed = manager.vector_compose(f, subs)
    expected = 0
    for m in range(1 << N):
        target = m
        for lv in range(N):
            if lv in sub_masks:
                bit = (sub_masks[lv] >> m) & 1
            else:
                bit = (m >> lv) & 1
            target = (target | (1 << lv)) if bit else (target & ~(1 << lv))
        if (mf >> target) & 1:
            expected |= 1 << m
    assert manager.to_truth_table(composed, list(range(N))) == expected
