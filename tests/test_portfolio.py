"""Differential checks for portfolio mapping under both cost models.

The portfolio runner races hyper / per-output / column / structural per
output group and keeps the winner under the active cost model.  Two
properties must hold on every seeded random network:

* the spliced portfolio network is BDD-equivalent to the source (and
  hence to every single-strategy standalone run, checked directly), and
* per group, the portfolio's winning fragment is never worse — under
  the active cost model's ``fragment_key`` — than the fragment any
  single strategy produces when raced alone.

Per-group decisions come from ``MapResult.details["portfolio"]`` (the
scoreboard the runner recorded), so the comparison exercises exactly
the data the CLI and service surface.  Even seeds run the ``area``
model, odd seeds ``delay``, and the whole sweep repeats at jobs 1/2.
"""

from __future__ import annotations

import pytest

from repro.decompose import parse_cost_model
from repro.mapping import TaskPolicy, hyde_map
from repro.mapping.parallel import PORTFOLIO_STRATEGIES
from repro.network import check_equivalence
from repro.verify import random_network

pytestmark = pytest.mark.slow

K = 4
SEEDS = range(20)


def _map(source, jobs, cost_model, strategies=None):
    return hyde_map(
        source.copy(),
        k=K,
        verify="none",
        pack_clbs=False,
        jobs=jobs,
        cost_model=cost_model,
        portfolio=True,
        policy=TaskPolicy(portfolio=True, strategies=strategies),
    )


def _group_keys(result, cost):
    """gi -> winning fragment's cost key, from the recorded decisions."""
    keys = {}
    for entry in result.details.get("portfolio") or []:
        winner = entry["candidates"][entry["winner"]]
        keys[entry["gi"]] = cost.fragment_key(
            winner["luts"], winner["depth"]
        )
    return keys


@pytest.mark.parametrize("jobs", [1, 2])
def test_portfolio_equivalent_and_never_worse_per_group(jobs):
    for seed in SEEDS:
        source = random_network(seed)
        cost_model = "area" if seed % 2 == 0 else "delay"
        cost = parse_cost_model(cost_model)

        port = _map(source, jobs, cost_model)
        assert check_equivalence(source, port.network) is None, (
            f"seed {seed}: portfolio output not equivalent to source"
        )
        port_keys = _group_keys(port, cost)
        assert port_keys, f"seed {seed}: no portfolio decisions recorded"

        # The recorded scoreboard must already honor the cost model:
        # the winner's key is the minimum over every raced candidate.
        for entry in port.details["portfolio"]:
            wkey = port_keys[entry["gi"]]
            for strategy, cand in entry["candidates"].items():
                ckey = cost.fragment_key(cand["luts"], cand["depth"])
                assert wkey <= ckey, (
                    f"seed {seed} group {entry['gi']}: winner "
                    f"{entry['winner']} ({wkey}) worse than {strategy} "
                    f"({ckey})"
                )

        # Race each strategy standalone (a one-entry portfolio): the
        # real portfolio must match its per-group fragments or beat
        # them, and the standalone output must stay equivalent too.
        for strategy in PORTFOLIO_STRATEGIES:
            single = _map(source, 1, cost_model, strategies=(strategy,))
            assert check_equivalence(source, single.network) is None, (
                f"seed {seed}: standalone {strategy} not equivalent"
            )
            assert check_equivalence(port.network, single.network) is None
            for gi, skey in _group_keys(single, cost).items():
                assert port_keys[gi] <= skey, (
                    f"seed {seed} group {gi}: portfolio ({port_keys[gi]}) "
                    f"worse than standalone {strategy} ({skey}) under "
                    f"{cost_model}"
                )
