"""Differential checks for portfolio mapping under both cost models.

The portfolio runner races hyper / per-output / column / structural per
output group and keeps the winner under the active cost model.  Two
properties must hold on every seeded random network:

* the spliced portfolio network is BDD-equivalent to the source (and
  hence to every single-strategy standalone run, checked directly), and
* per group, the portfolio's winning fragment is never worse — under
  the active cost model's ``fragment_key`` — than the fragment any
  single strategy produces when raced alone.

Per-group decisions come from ``MapResult.details["portfolio"]`` (the
scoreboard the runner recorded), so the comparison exercises exactly
the data the CLI and service surface.  Even seeds run the ``area``
model, odd seeds ``delay``, and the whole sweep repeats at jobs 1/2.
"""

from __future__ import annotations

import pytest

from repro.decompose import parse_cost_model
from repro.mapping import TaskPolicy, hyde_map
from repro.mapping.parallel import PORTFOLIO_STRATEGIES
from repro.network import check_equivalence, parse_blif
from repro.testing import FaultPlan, FaultSpec
from repro.verify import random_network

pytestmark = pytest.mark.slow

K = 4
SEEDS = range(20)


def _map(source, jobs, cost_model, strategies=None):
    return hyde_map(
        source.copy(),
        k=K,
        verify="none",
        pack_clbs=False,
        jobs=jobs,
        cost_model=cost_model,
        portfolio=True,
        policy=TaskPolicy(portfolio=True, strategies=strategies),
    )


def _group_keys(result, cost):
    """gi -> winning fragment's cost key, from the recorded decisions."""
    keys = {}
    for entry in result.details.get("portfolio") or []:
        winner = entry["candidates"][entry["winner"]]
        keys[entry["gi"]] = cost.fragment_key(
            winner["luts"], winner["depth"]
        )
    return keys


@pytest.mark.parametrize("jobs", [1, 2])
def test_portfolio_equivalent_and_never_worse_per_group(jobs):
    for seed in SEEDS:
        source = random_network(seed)
        cost_model = "area" if seed % 2 == 0 else "delay"
        cost = parse_cost_model(cost_model)

        port = _map(source, jobs, cost_model)
        assert check_equivalence(source, port.network) is None, (
            f"seed {seed}: portfolio output not equivalent to source"
        )
        port_keys = _group_keys(port, cost)
        assert port_keys, f"seed {seed}: no portfolio decisions recorded"

        # The recorded scoreboard must already honor the cost model:
        # the winner's key is the minimum over every raced candidate.
        for entry in port.details["portfolio"]:
            wkey = port_keys[entry["gi"]]
            for strategy, cand in entry["candidates"].items():
                ckey = cost.fragment_key(cand["luts"], cand["depth"])
                assert wkey <= ckey, (
                    f"seed {seed} group {entry['gi']}: winner "
                    f"{entry['winner']} ({wkey}) worse than {strategy} "
                    f"({ckey})"
                )

        # Race each strategy standalone (a one-entry portfolio): the
        # real portfolio must match its per-group fragments or beat
        # them, and the standalone output must stay equivalent too.
        for strategy in PORTFOLIO_STRATEGIES:
            single = _map(source, 1, cost_model, strategies=(strategy,))
            assert check_equivalence(source, single.network) is None, (
                f"seed {seed}: standalone {strategy} not equivalent"
            )
            assert check_equivalence(port.network, single.network) is None
            for gi, skey in _group_keys(single, cost).items():
                assert port_keys[gi] <= skey, (
                    f"seed {seed} group {gi}: portfolio ({port_keys[gi]}) "
                    f"worse than standalone {strategy} ({skey}) under "
                    f"{cost_model}"
                )


# ------------------------------------------------------------------ #
# The exact rung: optimal when it finishes, harmless when it cannot
# ------------------------------------------------------------------ #

# Single-output 6-input XOR chain: at K=4 the exact optimum is two LUTs
# (a 6-input function cannot fit one 4-LUT; xor4 feeding xor3 does it),
# and the search resolves at the cheap bipartite N=2 rung — no DPLL, so
# these tests never depend on machine speed.
_XOR6 = """.model xor6
.inputs a b c d e g
.outputs f
.names a b t1
10 1
01 1
.names t1 c t2
10 1
01 1
.names t2 d t3
10 1
01 1
.names t3 e t4
10 1
01 1
.names t4 g f
10 1
01 1
.end
"""


def test_exact_rung_proves_the_optimum_on_a_small_cone():
    source = parse_blif(_XOR6)
    result = _map(source, 1, "area", strategies=("hyper", "exact"))
    assert check_equivalence(source, result.network) is None
    (entry,) = result.details["portfolio"]
    cand = entry["candidates"]
    assert isinstance(cand["exact"], dict), cand
    assert cand["exact"]["luts"] == 2  # proven minimal at k=4
    assert cand["exact"]["luts"] <= cand["hyper"]["luts"]
    winner = cand[entry["winner"]]
    assert winner["luts"] == 2


@pytest.mark.parametrize("jobs", [1, 2])
def test_exact_rung_degrades_to_heuristic_on_hang(jobs):
    """A stuck exact search must lose the race, never corrupt it.

    The hang is injected with a strategy-targeted fault spec
    (``strategy="exact"``) so only the exact variant of group 0 is
    sabotaged; the policy timeout cancels it cooperatively in-process
    and by pool timeout in worker mode.  Either way the scoreboard must
    say ``budget_exceeded``, the ladder must record the rung as dropped
    (the exact rung has no structural substitute), and the heuristic
    winner must still be equivalent to the source.
    """
    source = parse_blif(_XOR6)
    result = hyde_map(
        source.copy(),
        k=K,
        verify="none",
        pack_clbs=False,
        jobs=jobs,
        portfolio=True,
        policy=TaskPolicy(
            portfolio=True,
            strategies=("hyper", "exact"),
            timeout_seconds=1.0,
            retries=0,
        ),
        faults=FaultPlan(
            {
                0: FaultSpec(
                    "hang",
                    times=99,
                    hang_seconds=30.0,
                    strategy="exact",
                )
            }
        ),
    )
    assert check_equivalence(source, result.network) is None
    (entry,) = result.details["portfolio"]
    assert entry["candidates"]["exact"] == "budget_exceeded"
    assert entry["winner"] == "hyper"
    assert isinstance(entry["candidates"]["hyper"], dict)
    degraded = result.details.get("degraded") or []
    assert any(d.get("resolution") == "dropped" for d in degraded), (
        degraded
    )


def test_exact_only_strategy_list_keeps_a_heuristic():
    """An all-exact portfolio silently gains a hyper rung: the exact
    search may always exhaust its budget, and the race must still be
    able to land a fragment."""
    source = parse_blif(_XOR6)
    result = _map(source, 1, "area", strategies=("exact",))
    assert check_equivalence(source, result.network) is None
    (entry,) = result.details["portfolio"]
    assert "hyper" in entry["candidates"]


def test_exact_rung_skipped_on_wide_cones():
    """Cones beyond EXACT_MAX_INPUTS never reach the oracle."""
    wide = parse_blif(
        ".model wide\n"
        ".inputs " + " ".join(f"i{j}" for j in range(12)) + "\n"
        ".outputs f\n"
        ".names " + " ".join(f"i{j}" for j in range(12)) + " f\n"
        + "1" * 12 + " 1\n"
        ".end\n"
    )
    result = _map(wide, 1, "area", strategies=("hyper", "exact"))
    assert check_equivalence(wide, result.network) is None
    (entry,) = result.details["portfolio"]
    assert "exact" not in entry["candidates"]
