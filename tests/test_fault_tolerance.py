"""Fault-tolerance layer: budgets, timeouts, retries, the ladder.

Matrix tests inject each fault kind at a group (at ``jobs`` 1 and 2) and
assert the ladder resolves it exactly as designed:

* transient faults (``times=1``) recover on the first in-process retry;
* with retries disabled, a transient fault lands on the per-output rung;
* persistent faults fall through to the structural rung;
* in every case the final network is equivalent to the source and
  ``details["degraded"]`` names the group and the cause.

Plus unit tests for the :class:`~repro.bdd.BddManager` budget itself,
the recorded (no longer silent) pool-creation fallback, and ladder
exhaustion when every rung is disabled.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.bdd import BddBudgetExceeded, BddManager
from repro.circuits import build
from repro.decompose import DecompositionOptions
from repro.mapping import hyde_map, map_per_output
from repro.mapping import parallel as par
from repro.mapping.parallel import GroupTask, TaskPolicy, run_group_tasks
from repro.network import check_equivalence, extract_cone, to_blif
from repro.testing import FaultPlan, FaultSpec

POLICY = TaskPolicy(timeout_seconds=5.0)


class TestBddBudget:
    def test_node_budget_raises(self):
        manager = BddManager(8)
        manager.set_budget(max_nodes=8)
        with pytest.raises(BddBudgetExceeded) as err:
            for lv in range(8):
                manager.apply_and(
                    manager.var_at_level(lv),
                    manager.var_at_level((lv + 1) % 8),
                )
        assert err.value.kind == "nodes"
        assert manager.perf.budget_exceeded >= 1

    def test_time_budget_raises_via_checkpoint(self):
        manager = BddManager(4)
        manager.set_budget(max_seconds=0.01)
        time.sleep(0.03)
        with pytest.raises(BddBudgetExceeded) as err:
            manager.check_budget()
        assert err.value.kind == "seconds"

    def test_disarm_restores_old_behavior(self):
        manager = BddManager(8)
        manager.set_budget(max_nodes=4)
        manager.set_budget()  # disarm
        for lv in range(7):
            manager.apply_and(
                manager.var_at_level(lv), manager.var_at_level(lv + 1)
            )
        manager.check_budget()  # no-op when disarmed

    def test_budget_exception_survives_pickling(self):
        err = BddBudgetExceeded("nodes", 100, 101)
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.kind, clone.limit, clone.used) == ("nodes", 100, 101)

    def test_options_thread_budget_to_manager(self):
        options = DecompositionOptions(k=4, max_bdd_nodes=123)
        assert options.has_budget
        manager = BddManager(4)
        options.arm_budget(manager)
        assert manager.budget["max_nodes"] == 123
        decayed = options.decayed(0.5)
        assert decayed.max_bdd_nodes == 61


def _group_tasks(circuit="misex1", inject_at=None, spec=None, k=4):
    """Two multi-output group tasks over a benchmark's outputs."""
    net = build(circuit)
    outs = net.output_names
    groups = [outs[: len(outs) // 2], outs[len(outs) // 2 :]]
    options = DecompositionOptions(k=k)
    tasks = []
    for gi, group in enumerate(groups):
        cone = extract_cone(net, group, name=f"g{gi}_cone")
        tasks.append(
            GroupTask(
                blif_text=to_blif(cone),
                group=list(group),
                gi=gi,
                options=options,
                base_name=f"g{gi}",
                inject=spec if gi == inject_at else None,
            )
        )
    return net, tasks


class TestFaultMatrix:
    """Every fault kind, both job levels, transient and persistent."""

    KINDS = ["crash", "hang", "oversized_bdd", "corrupt_blif"]

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("kind", KINDS)
    def test_transient_fault_recovers_by_retry(self, kind, jobs):
        spec = FaultSpec(kind, times=1, hang_seconds=30.0)
        net, tasks = _group_tasks(inject_at=0, spec=spec)
        results, report = run_group_tasks(tasks, jobs, POLICY)
        assert len(results) == len(tasks)
        assert len(report.degraded) == 1
        entry = report.degraded[0]
        assert entry["gi"] == 0
        assert entry["group"] == tasks[0].group
        assert entry["resolution"] == "retry"
        assert entry["causes"]  # the cause is named

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("kind", KINDS)
    def test_persistent_fault_falls_to_structural(self, kind, jobs):
        spec = FaultSpec(kind, times=99, hang_seconds=30.0)
        net, tasks = _group_tasks(inject_at=0, spec=spec)
        results, report = run_group_tasks(tasks, jobs, POLICY)
        entry = report.degraded[0]
        assert entry["resolution"] == "structural"
        # Retry, per-output and the original attempt all saw the fault.
        assert len(entry["causes"]) == 3

    def test_no_retries_lands_on_per_output_rung(self):
        # times=1 sabotages only attempt 0; with retries=0 the next
        # attempt IS the per-output rung, which must then succeed.
        policy = TaskPolicy(timeout_seconds=5.0, retries=0)
        spec = FaultSpec("crash", times=1)
        net, tasks = _group_tasks(inject_at=0, spec=spec)
        results, report = run_group_tasks(tasks, 1, policy)
        assert report.degraded[0]["resolution"] == "per_output"

    @pytest.mark.parametrize("kind", KINDS)
    def test_hyde_map_with_injection_stays_equivalent(self, kind):
        net = build("misex1")
        faults = FaultPlan({0: FaultSpec(kind, times=99, hang_seconds=30.0)})
        result = hyde_map(
            build("misex1"),
            k=4,
            verify="bdd",  # the flow's own check must already pass
            pack_clbs=False,
            jobs=2,
            policy=POLICY,
            faults=faults,
        )
        assert check_equivalence(net, result.network) is None
        degraded = result.details["degraded"]
        assert degraded and degraded[0]["gi"] == 0
        assert degraded[0]["group"] == result.groups[0]

    def test_per_output_flow_with_injection(self):
        net = build("rd73")
        result = map_per_output(
            build("rd73"),
            k=4,
            verify="bdd",
            pack_clbs=False,
            policy=POLICY,
            faults=FaultPlan.parse("oversized_bdd@0"),
        )
        assert check_equivalence(net, result.network) is None
        assert result.details["degraded"][0]["resolution"] == "retry"

    def test_fault_plan_parse(self):
        plan = FaultPlan.parse("crash@0,hang@2:3")
        assert plan.spec_for(0).kind == "crash"
        assert plan.spec_for(0).strategy is None
        assert plan.spec_for(2).times == 3
        assert plan.spec_for(1) is None
        with pytest.raises(ValueError):
            FaultPlan.parse("explode@0")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")

    def test_fault_plan_parse_strategy_target(self):
        plan = FaultPlan.parse("hang@0.exact:2")
        spec = plan.spec_for(0)
        assert spec.kind == "hang"
        assert spec.strategy == "exact"
        assert spec.times == 2


class TestLadderEdges:
    def test_all_rungs_disabled_raises(self):
        policy = TaskPolicy(
            timeout_seconds=5.0,
            retries=0,
            per_output_fallback=False,
            structural_fallback=False,
        )
        spec = FaultSpec("crash", times=99)
        _, tasks = _group_tasks(inject_at=0, spec=spec)
        with pytest.raises(RuntimeError, match="failed every"):
            run_group_tasks(tasks, 1, policy)

    def test_timeout_is_counted(self):
        spec = FaultSpec("hang", times=1, hang_seconds=30.0)
        _, tasks = _group_tasks(inject_at=0, spec=spec)
        _, report = run_group_tasks(tasks, 2, TaskPolicy(timeout_seconds=2.0))
        assert report.timeouts >= 1
        assert report.retries >= 1

    def test_policy_without_faults_is_clean(self):
        _, tasks = _group_tasks()
        results, report = run_group_tasks(tasks, 1, POLICY)
        assert len(results) == len(tasks)
        assert report.degraded == []


class TestPoolFallbackRecorded:
    """The silent serial fallback is now visible in the report."""

    def _break_pool(self, monkeypatch):
        def refuse(workers):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(par, "_make_pool", refuse)
        # Zero the auto-serial setup-cost constant so the tiny test
        # workload still *attempts* the pool — this class tests the
        # pool-failure fallback, not the auto-serial dispatch.
        monkeypatch.setattr(par, "_POOL_SETUP_SECONDS", 0.0)

    def test_legacy_path_records_fallback(self, monkeypatch):
        self._break_pool(monkeypatch)
        _, tasks = _group_tasks()
        results, report = run_group_tasks(tasks, 2)
        assert len(results) == len(tasks)
        assert report.jobs_used == 1
        assert "no semaphores" in report.pool_fallback

    def test_governed_path_records_fallback(self, monkeypatch):
        self._break_pool(monkeypatch)
        _, tasks = _group_tasks()
        results, report = run_group_tasks(tasks, 2, POLICY)
        assert len(results) == len(tasks)
        assert report.jobs_used == 1
        assert "no semaphores" in report.pool_fallback

    def test_hyde_map_surfaces_fallback(self, monkeypatch):
        self._break_pool(monkeypatch)
        result = hyde_map(
            build("misex1"), k=4, verify="none", pack_clbs=False, jobs=2
        )
        assert "no semaphores" in result.details["pool_fallback"]
