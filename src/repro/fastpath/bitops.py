"""Packed-integer truth-table kernels for the decomposition hot path.

The bound-set searches of :mod:`repro.decompose.varpart` spend nearly all
of their time cofactoring BDDs one node at a time in pure Python.  For a
cone whose support fits in ``n`` variables, the same work collapses to a
handful of word-parallel operations on a single ``2**n``-bit Python int:

* **Representation** — a function over the ordered support tuple
  ``levels`` is the integer whose bit ``i`` is ``f`` at the minterm where
  ``levels[j]`` takes bit ``j`` of ``i``.  This is exactly the convention
  of :meth:`repro.bdd.BddManager.from_truth_table` /
  :meth:`~repro.bdd.BddManager.to_truth_table`, so conversions round-trip
  by construction.
* **Conversion** — one memoized pass over the BDD: every node costs two
  ANDs and an OR against precomputed per-position masks
  (:func:`var_masks`), i.e. O(|BDD| * 2**n / wordsize) machine work.
* **Cofactor enumeration / column multiplicity** — instead of walking
  ``2**b`` cofactors, the ``b`` bound positions are permuted to the top
  index bits (one masked-shift *delta swap* per variable, see
  :func:`_swap_bits`) after which the ``2**b`` columns are contiguous
  ``2**(n-b)``-bit chunks.  Distinct chunks == distinct residual
  functions == distinct BDD cofactor node ids, so counts agree with the
  BDD path bit for bit.
* **Search states** — :class:`PackedSearch` mirrors the shared-prefix
  DFS / greedy incremental extension of the BDD search: extending a
  prefix by one variable is a single delta swap, and the chosen prefix
  accumulates in the top index bits.

Width policy: tables are capped at :data:`HARD_MAX_WIDTH` variables
(``2**20`` bits = 128 KiB per table); the ``"auto"`` mode cuts over to
the BDD path above :data:`DEFAULT_MAX_WIDTH`.  All fallbacks are
transparent and counted in ``PerfCounters.fastpath_fallbacks``.

Class counts are additionally memoized **manager-independently** in a
module-level table keyed by the packed bits themselves (not node ids), so
warm worker processes and repeated managers over the same cone reuse
counts across :class:`~repro.bdd.BddManager` lifetimes — the per-manager
:class:`~repro.decompose.oracle.ClassCountOracle` sits above this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import FALSE, TRUE

__all__ = [
    "DEFAULT_MAX_WIDTH",
    "HARD_MAX_WIDTH",
    "PackedPair",
    "PackedSearch",
    "bdd_to_packed",
    "count_distinct_columns",
    "global_memo_stats",
    "clear_global_memo",
    "pack_pair",
    "try_merged_count",
    "try_syntactic_count",
    "var_masks",
]

#: ``"auto"`` cut-over: supports wider than this stay on the BDD path.
DEFAULT_MAX_WIDTH = 20

#: Absolute cap even under ``fast_path="bitpack"`` — a 2**22-bit table is
#: 512 KiB; beyond this the big-int ops lose to the BDD's sparsity.
HARD_MAX_WIDTH = 22

#: Manager-independent class-count memo: (on_bits, dc_bits, n, positions)
#: -> count.  Cleared wholesale when it outgrows _GLOBAL_MEMO_MAX.
_GLOBAL_COUNTS: Dict[Tuple[int, int, int, Tuple[int, ...]], int] = {}
_GLOBAL_MEMO_MAX = 1 << 17
_global_hits = 0
_global_misses = 0

# ---------------------------------------------------------------------- #
# Mask caches
# ---------------------------------------------------------------------- #

# (n, p) -> (mask0, mask1): table positions whose minterm index has bit p
# clear / set.
_MASKS: Dict[Tuple[int, int], Tuple[int, int]] = {}

# (width_bits, count) -> multiplier replicating a width-bit block count
# times: sum of 2**(i*width).
_REPS: Dict[Tuple[int, int], int] = {}

# (n, j, k) with j < k -> (same, m10, m01, shift) for the delta swap of
# index bits j and k.
_SWAPS: Dict[Tuple[int, int, int], Tuple[int, int, int, int]] = {}


def var_masks(n: int, p: int) -> Tuple[int, int]:
    """Masks selecting minterms with index bit ``p`` = 0 / 1 (cached)."""
    cached = _MASKS.get((n, p))
    if cached is not None:
        return cached
    total = 1 << n
    m0 = (1 << (1 << p)) - 1
    filled = 1 << (p + 1)
    while filled < total:
        m0 |= m0 << filled
        filled <<= 1
    m1 = m0 << (1 << p)
    _MASKS[(n, p)] = (m0, m1)
    return m0, m1


def _swap_masks(n: int, j: int, k: int) -> Tuple[int, int, int, int]:
    """Precomputed delta-swap of index bits ``j`` < ``k`` over ``2**n``."""
    cached = _SWAPS.get((n, j, k))
    if cached is not None:
        return cached
    j0, j1 = var_masks(n, j)
    k0, k1 = var_masks(n, k)
    m10 = j1 & k0  # index bit j set, k clear: moves up by 2**k - 2**j
    m01 = j0 & k1  # index bit k set, j clear: moves down by the same
    same = ((1 << (1 << n)) - 1) ^ m10 ^ m01
    shift = (1 << k) - (1 << j)
    entry = (same, m10, m01, shift)
    _SWAPS[(n, j, k)] = entry
    return entry


def _swap_bits(bits: int, n: int, j: int, k: int) -> int:
    """Exchange index bits ``j`` and ``k`` of a packed table."""
    same, m10, m01, shift = _swap_masks(n, j, k)
    return (bits & same) | ((bits & m10) << shift) | ((bits & m01) >> shift)


def _replicator(width: int, count: int) -> int:
    """Multiplier replicating a ``width``-bit block ``count`` times."""
    cached = _REPS.get((width, count))
    if cached is None:
        cached = ((1 << (width * count)) - 1) // ((1 << width) - 1)
        _REPS[(width, count)] = cached
    return cached


# ---------------------------------------------------------------------- #
# BDD -> packed conversion
# ---------------------------------------------------------------------- #

def bdd_to_packed(
    manager,
    f: int,
    levels: Sequence[int],
    memo: Optional[Dict[int, int]] = None,
) -> int:
    """Pack BDD node ``f`` as a ``2**len(levels)``-bit truth table.

    ``levels`` must be sorted ascending and cover the support of ``f``;
    a support variable outside ``levels`` raises :class:`KeyError` (the
    callers catch it and fall back to the BDD path).  ``memo`` maps node
    id -> table and may be shared across calls with identical ``levels``.

    Kernel bit convention: ``levels[j]`` is index bit ``n - 1 - j`` —
    the *reverse* of :meth:`BddManager.from_truth_table` (equivalently,
    ``bdd_to_packed(m, f, levels) == m.to_truth_table(f,
    list(reversed(levels)))``).  Descending positions follow the BDD
    variable order top-down, which lets the conversion build *compressed*
    per-node tables bottom-up: a node at position ``p`` depends only on
    positions <= ``p``, so its table is ``2**(p+1)`` bits, combining is a
    shift and an OR (mask-free), and a child whose position skips ahead
    widens with one block-replication multiply.  Total work is O(sum of
    local table widths) instead of O(|BDD| * 2**n).
    """
    levels = tuple(levels)
    n = len(levels)
    full = (1 << (1 << n)) - 1
    if f == FALSE:
        return 0
    if f == TRUE:
        return full
    pos_of = {lv: n - 1 - j for j, lv in enumerate(levels)}
    if memo is None:
        memo = {}
    cached = memo.get(f)
    if cached is not None:
        return cached
    var, lo, hi = manager._var, manager._lo, manager._hi
    local = memo.get(("local", levels))
    if local is None:
        local = memo[("local", levels)] = {}

    def widened(child: int, width: int) -> int:
        # Local table of ``child`` over the low ``width`` index bits.
        if child == FALSE:
            return 0
        if child == TRUE:
            return (1 << (1 << width)) - 1
        t, w = local[child]
        if w < width:
            t *= _replicator(1 << w, 1 << (width - w))
        return t

    stack = [f]
    while stack:
        node = stack[-1]
        if node in local:
            stack.pop()
            continue
        l, h = lo[node], hi[node]
        pending = []
        if l > TRUE and l not in local:
            pending.append(l)
        if h > TRUE and h not in local:
            pending.append(h)
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        p = pos_of.get(var[node])
        if p is None:
            raise KeyError(
                f"support level {var[node]} outside packed levels"
            )
        half = widened(l, p)
        table = half | (widened(h, p) << (1 << p))
        local[node] = (table, p + 1)
    table, width = local[f]
    if width < n:
        table *= _replicator(1 << width, 1 << (n - width))
    memo[f] = table
    return table


class PackedPair:
    """An (on, dc) pair packed over one sorted support tuple.

    ``pos`` uses the kernel's descending convention of
    :func:`bdd_to_packed`: ``levels[j]`` is index bit ``n - 1 - j``.
    """

    __slots__ = ("on", "dc", "n", "levels", "pos")

    def __init__(self, on: int, dc: int, levels: Tuple[int, ...]):
        self.on = on
        self.dc = dc
        n = self.n = len(levels)
        self.levels = levels
        self.pos = {lv: n - 1 - j for j, lv in enumerate(levels)}


def pack_pair(manager, on: int, dc: int, levels: Sequence[int]) -> PackedPair:
    """Pack ``(on, dc)`` over ``levels`` using the manager's table cache.

    The per-node conversion memo lives on the manager (keyed by the
    levels tuple) so repeated searches over the same function — the swap
    pass, smaller bound sizes, recursion levels — convert each BDD node
    at most once.  Raises :class:`KeyError` when a support variable falls
    outside ``levels``.
    """
    levels = tuple(levels)
    cache = manager._fastpath
    if cache is None:
        cache = manager._fastpath = {}
    memo = cache.get(levels)
    if memo is None:
        # Bound the number of retained level-tuples, not their node
        # entries: tuples change when the support changes, which tracks
        # recursion depth and stays small in practice.
        if len(cache) > 64:
            cache.clear()
        memo = cache[levels] = {}
    perf = manager.perf
    before = len(memo.get(("local", levels), ()))
    on_bits = bdd_to_packed(manager, on, levels, memo)
    dc_bits = bdd_to_packed(manager, dc, levels, memo)
    perf.fastpath_conversions += (
        len(memo.get(("local", levels), ())) - before
    )
    return PackedPair(on_bits, dc_bits, levels)


# ---------------------------------------------------------------------- #
# Column multiplicity
# ---------------------------------------------------------------------- #

def _split_chunks(value: int, total_bits: int, chunk_bits: int) -> List[int]:
    """Split a ``total_bits``-wide int into ``chunk_bits`` pieces, low first.

    Halves recursively: each level costs O(total_bits) big-int work, so
    the whole split is O(total_bits * log(count)) — the naive
    mask-and-shift walk re-shifts the shrinking remainder every step and
    is quadratic in the chunk count.
    """
    parts = [value]
    width = total_bits
    while width > chunk_bits:
        width >>= 1
        mask = (1 << width) - 1
        parts = [
            piece
            for v in parts
            for piece in (v & mask, v >> width)
        ]
    return parts


def _count_chunks(on: int, dc: int, n: int, b: int) -> int:
    """Distinct (on, dc) column pairs with the bound in the top b bits."""
    chunk = 1 << (n - b)
    total = 1 << n
    if dc == 0:
        return len(set(_split_chunks(on, total, chunk)))
    return len(
        set(
            zip(
                _split_chunks(on, total, chunk),
                _split_chunks(dc, total, chunk),
            )
        )
    )


def count_distinct_columns(pair: PackedPair, bound: Sequence[int]) -> int:
    """Column multiplicity of ``pair`` w.r.t. ``bound`` (no memoization).

    Lifts the bound positions to the top index bits with one delta swap
    each, then counts distinct contiguous chunks.
    """
    n = pair.n
    on, dc = pair.on, pair.dc
    where = list(range(n))
    at = list(range(n))
    for depth, lv in enumerate(sorted(bound, reverse=True)):
        # Place larger levels higher so chunk order matches the natural
        # assignment order; irrelevant for the count, cheap to fix.
        p = pair.pos[lv]
        q = where[p]
        target = n - 1 - depth
        if q != target:
            on = _swap_bits(on, n, q, target)
            if dc:
                dc = _swap_bits(dc, n, q, target)
            r = at[target]
            where[p], where[r] = target, q
            at[target], at[q] = p, r
    return _count_chunks(on, dc, n, len(bound))


def enumerate_chunk_pairs(
    pair: PackedPair, bound_levels: Sequence[int]
) -> Tuple[List[Tuple[int, int]], int]:
    """All ``2**b`` (on, dc) column chunks plus their width, in
    :meth:`~repro.bdd.BddManager.cofactor_enumerate` order: entry ``i``
    is the column with ``bound_levels[j]`` fixed to bit j of ``i``.
    """
    n = pair.n
    b = len(bound_levels)
    on, dc = pair.on, pair.dc
    where = list(range(n))
    at = list(range(n))
    # Place bound_levels[j] at position n - b + j: chunk index bit j then
    # corresponds to bound_levels[j], matching the BDD enumeration.
    for depth, lv in enumerate(reversed(bound_levels)):
        p = pair.pos[lv]
        q = where[p]
        target = n - 1 - depth
        if q != target:
            on = _swap_bits(on, n, q, target)
            if dc:
                dc = _swap_bits(dc, n, q, target)
            r = at[target]
            where[p], where[r] = target, q
            at[target], at[q] = p, r
    chunk = 1 << (n - b)
    total = 1 << n
    pairs = list(
        zip(
            _split_chunks(on, total, chunk),
            _split_chunks(dc, total, chunk),
        )
    )
    return pairs, chunk


def count_merged_classes(pair: PackedPair, bound_levels: Sequence[int]) -> int:
    """Don't-care merged class count — the packed twin of
    :func:`repro.decompose.dontcare.assign_dontcares` (count only).

    Every order-sensitive step (column dedup, compatibility adjacency,
    clique tie-breaking, the greedy merge-verify loop) mirrors the BDD
    implementation exactly, so the count is identical.
    """
    from ..decompose.dontcare import clique_partition  # deferred: cycle

    columns, chunk_bits = enumerate_chunk_pairs(pair, bound_levels)
    full = (1 << chunk_bits) - 1
    interned: Dict[Tuple[int, int], int] = {}
    reps: List[Tuple[int, int]] = []
    for col in columns:
        if col not in interned:
            interned[col] = len(reps)
            reps.append(col)

    offs = [full & ~(on | dc) for on, dc in reps]
    num = len(reps)
    adjacency: List[set] = [set() for _ in range(num)]
    for i in range(num):
        on_i, off_i = reps[i][0], offs[i]
        for j in range(i + 1, num):
            if not ((on_i & offs[j]) or (reps[j][0] & off_i)):
                adjacency[i].add(j)
                adjacency[j].add(i)
    cliques = clique_partition(num, lambda i, j: j in adjacency[i])

    classes = 0
    for clique in cliques:
        pending = list(clique)
        while pending:
            merged_on = 0
            merged_off = 0
            rest: List[int] = []
            for rep in pending:
                col_on, col_off = reps[rep][0], offs[rep]
                if (merged_on & col_off) or (merged_off & col_on):
                    rest.append(rep)
                    continue
                merged_on |= col_on
                merged_off |= col_off
            classes += 1
            pending = rest
    return classes


def _global_key(
    pair: PackedPair, bound: Sequence[int]
) -> Tuple[int, int, int, Tuple[int, ...]]:
    return (
        pair.on,
        pair.dc,
        pair.n,
        tuple(sorted(pair.pos[lv] for lv in bound)),
    )


def _global_get(key) -> Optional[int]:
    global _global_hits, _global_misses
    cached = _GLOBAL_COUNTS.get(key)
    if cached is not None:
        _global_hits += 1
    else:
        _global_misses += 1
    return cached


def _global_put(key, count: int) -> None:
    if len(_GLOBAL_COUNTS) >= _GLOBAL_MEMO_MAX:
        _GLOBAL_COUNTS.clear()
    _GLOBAL_COUNTS[key] = count


def global_memo_stats() -> Dict[str, object]:
    """Hit/miss totals and size of the manager-independent count memo."""
    total = _global_hits + _global_misses
    return {
        "hits": _global_hits,
        "misses": _global_misses,
        "hit_rate": round(_global_hits / total, 4) if total else None,
        "entries": len(_GLOBAL_COUNTS),
    }


def clear_global_memo() -> None:
    """Drop every manager-independent count (counters are kept)."""
    _GLOBAL_COUNTS.clear()


# ---------------------------------------------------------------------- #
# Incremental search states
# ---------------------------------------------------------------------- #

class _LiftState:
    """A packed pair with the chosen bound prefix in the top index bits.

    ``where``/``at`` track the current index-bit permutation: original
    position -> current position and its inverse.  States are immutable;
    :meth:`PackedSearch.extend` returns a new one (the tables are plain
    ints, so backtracking in the DFS is free).
    """

    __slots__ = ("on", "dc", "depth", "where", "at")

    def __init__(self, on, dc, depth, where, at):
        self.on = on
        self.dc = dc
        self.depth = depth
        self.where = where
        self.at = at


class PackedSearch:
    """Packed-table backend for the bound-set searches.

    Mirrors the incremental BDD search exactly — same driver, same
    candidate order, same tie-breaking — only the two primitives differ:
    *extend* is one delta swap instead of a residual-set cofactor sweep,
    and *count* reads contiguous chunks instead of hashing node ids.
    """

    __slots__ = ("pair", "perf")

    def __init__(self, pair: PackedPair, perf):
        self.pair = pair
        self.perf = perf

    def root(self) -> _LiftState:
        n = self.pair.n
        identity = tuple(range(n))
        return _LiftState(self.pair.on, self.pair.dc, 0, identity, identity)

    def extend(self, state: _LiftState, lv: int) -> _LiftState:
        n = self.pair.n
        p = self.pair.pos[lv]
        q = state.where[p]
        target = n - 1 - state.depth
        if q == target:
            return _LiftState(
                state.on, state.dc, state.depth + 1, state.where, state.at
            )
        on = _swap_bits(state.on, n, q, target)
        dc = _swap_bits(state.dc, n, q, target) if state.dc else 0
        r = state.at[target]
        where = list(state.where)
        at = list(state.at)
        where[p], where[r] = target, q
        at[target], at[q] = p, r
        return _LiftState(on, dc, state.depth + 1, tuple(where), tuple(at))

    def count(self, state: _LiftState) -> int:
        return _count_chunks(state.on, state.dc, self.pair.n, state.depth)

    def canonical(self, state: _LiftState) -> _LiftState:
        return state

    def eval_candidate(
        self, state: _LiftState, lv: int, bound: Sequence[int]
    ) -> Tuple[int, Optional[_LiftState]]:
        """Count for ``state + lv``; serves the global memo first."""
        key = _global_key(self.pair, bound)
        cached = _global_get(key)
        if cached is not None:
            self.perf.fastpath_global_hits += 1
            return cached, None
        self.perf.fastpath_global_misses += 1
        extended = self.extend(state, lv)
        count = self.count(extended)
        _global_put(key, count)
        return count, extended

    def count_bound(self, bound: Sequence[int]) -> int:
        """Full count for one bound set (memoized manager-independently)."""
        key = _global_key(self.pair, bound)
        cached = _global_get(key)
        if cached is not None:
            self.perf.fastpath_global_hits += 1
            return cached
        self.perf.fastpath_global_misses += 1
        count = count_distinct_columns(self.pair, bound)
        _global_put(key, count)
        return count

    def merged_count_bound(self, bound: Sequence[int]) -> int:
        """Don't-care merged count for one bound set (memoized).

        The merge heuristic is order-sensitive, so the memo key keeps the
        bound positions *in order* (unlike the syntactic key, which may
        sort: distinct-column counts are permutation-invariant).
        """
        key = (
            self.pair.on,
            self.pair.dc,
            self.pair.n,
            tuple(self.pair.pos[lv] for lv in bound),
            "merged",
        )
        cached = _global_get(key)
        if cached is not None:
            self.perf.fastpath_global_hits += 1
            return cached
        self.perf.fastpath_global_misses += 1
        count = count_merged_classes(self.pair, bound)
        _global_put(key, count)
        return count


# ---------------------------------------------------------------------- #
# Convenience entry point for compatible.count_classes
# ---------------------------------------------------------------------- #

def try_syntactic_count(
    manager,
    on: int,
    dc: int,
    bound_levels: Sequence[int],
    max_width: int = DEFAULT_MAX_WIDTH,
) -> Optional[int]:
    """Packed column-multiplicity count, or ``None`` when out of range.

    Covers the syntactic case only (distinct (on, dc) pairs — no
    don't-care merging); the caller keeps the BDD path for everything
    else.  Support width is measured over the union of both supports and
    the bound set.
    """
    levels = sorted(
        set(manager.support(on))
        | set(manager.support(dc))
        | set(bound_levels)
    )
    if len(levels) > max_width:
        manager.perf.fastpath_fallbacks += 1
        return None
    try:
        pair = pack_pair(manager, on, dc, levels)
    except KeyError:
        manager.perf.fastpath_fallbacks += 1
        return None
    search = PackedSearch(pair, manager.perf)
    return search.count_bound(bound_levels)


def try_merged_count(
    manager,
    on: int,
    dc: int,
    bound_levels: Sequence[int],
    max_width: int = DEFAULT_MAX_WIDTH,
) -> Optional[int]:
    """Packed don't-care merged count, or ``None`` when out of range.

    The merged twin of :func:`try_syntactic_count`; the count matches
    :func:`repro.decompose.compatible.compute_classes` bit for bit (the
    clique heuristic is mirrored exactly, see
    :func:`count_merged_classes`).
    """
    levels = sorted(
        set(manager.support(on))
        | set(manager.support(dc))
        | set(bound_levels)
    )
    if len(levels) > max_width:
        manager.perf.fastpath_fallbacks += 1
        return None
    try:
        pair = pack_pair(manager, on, dc, levels)
    except KeyError:
        manager.perf.fastpath_fallbacks += 1
        return None
    search = PackedSearch(pair, manager.perf)
    return search.merged_count_bound(bound_levels)
