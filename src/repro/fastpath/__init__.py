"""Bit-parallel fast path for the decomposition core.

Packed-integer truth-table kernels (:mod:`repro.fastpath.bitops`) that
replace per-node BDD cofactor walks in the variable-partitioning and
compatible-class-counting hot loops for narrow-support cones, falling
back transparently to the :class:`~repro.bdd.BddManager` path for wide
supports.  See docs/ALGORITHMS.md ("Bit-parallel kernels").
"""

from .bitops import (
    DEFAULT_MAX_WIDTH,
    HARD_MAX_WIDTH,
    PackedPair,
    PackedSearch,
    bdd_to_packed,
    count_distinct_columns,
    global_memo_stats,
    clear_global_memo,
    pack_pair,
    try_merged_count,
    try_syntactic_count,
    var_masks,
)

__all__ = [
    "DEFAULT_MAX_WIDTH",
    "HARD_MAX_WIDTH",
    "PackedPair",
    "PackedSearch",
    "bdd_to_packed",
    "count_distinct_columns",
    "global_memo_stats",
    "clear_global_memo",
    "pack_pair",
    "try_merged_count",
    "try_syntactic_count",
    "var_masks",
]
