"""Command-line interface for the HYDE reproduction.

Usage examples::

    python -m repro.cli circuits                 # list benchmark circuits
    python -m repro.cli map 9sym --flow hyde     # map one circuit
    python -m repro.cli map rd84 --flow all      # compare every flow
    python -m repro.cli map duke2 --jobs 4        # parallel group mapping
    python -m repro.cli stats 9sym --flow hyde    # perf-counter report
    python -m repro.cli table1 --classes small   # regenerate Table 1
    python -m repro.cli table2 --classes small
    python -m repro.cli blif my_circuit.blif --flow hyde -o mapped.blif
    python -m repro.cli serve --store cache.db --info svc.json &
    python -m repro.cli submit misex1 --info svc.json --times 2
    python -m repro.cli cache cache.db --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from . import obs
from .circuits import CIRCUITS, build
from .harness import (
    TABLE1_CLB,
    TABLE2_LUT,
    render_comparison,
    render_table,
    run_experiment,
)
from .mapping import (
    MapResult,
    hyde_map,
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
    map_structural,
)
from .network import read_blif, write_blif
from .runstate import RunInterrupted, load_journal, open_journal, validate_journal

#: Exit code of an interrupted (but journaled and resumable) run —
#: EX_TEMPFAIL, the sysexits convention for "try again later".
EXIT_INTERRUPTED = 75

FLOWS: Dict[str, Callable] = {
    "hyde": lambda net, k, verify="bdd", jobs=1, **kw: hyde_map(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    "per-output": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output(
        net, k, encoding_policy="chart", verify=verify, jobs=jobs, **kw
    ),
    "random": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output(
        net, k, encoding_policy="random", verify=verify, jobs=jobs, **kw
    ),
    "resub": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output_resub(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    "column": lambda net, k, verify="bdd", jobs=1, **kw: map_column_encoding(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    # Flows below have no group-level parallelism (and hence no fault
    # tolerance or checkpointing); ``jobs`` and the governance kwargs
    # are accepted (so ``--flow all --jobs N`` works) and ignored.
    "shannon": lambda net, k, verify="bdd", jobs=1, **kw: map_shannon(
        net, k, verify=verify
    ),
    "structural": lambda net, k, verify="bdd", jobs=1, **kw: map_structural(
        net, k, verify=verify
    ),
}

#: Flows that accept a ``journal=`` kwarg (checkpoint/resume support).
JOURNALED_FLOWS = {"hyde", "per-output", "random", "resub", "column"}

#: Flows that accept a ``cache=`` kwarg (content-addressed result store).
CACHED_FLOWS = JOURNALED_FLOWS

#: Flows that accept a ``portfolio=`` kwarg (strategy racing).
PORTFOLIO_FLOWS = {"hyde"}


def _open_flow_journal(args, circuit: str, label: str):
    """Open the checkpoint journal for one (circuit, flow) run, or None."""
    directory = getattr(args, "checkpoint", None)
    if directory is None or label not in JOURNALED_FLOWS:
        return None
    return open_journal(
        directory, circuit, label, args.k,
        resume=getattr(args, "resume", False),
    )


def _open_result_cache(args):
    """Open the ``--cache`` result store, or None when not requested."""
    path = getattr(args, "cache", None)
    if path is None:
        return None
    from .service import ResultStore

    return ResultStore(path)


def _print_cache_summary(result: MapResult) -> None:
    cache = result.details.get("cache")
    if cache:
        print(
            f"  [cache: {cache['hits']} hit(s), {cache['misses']} miss(es)"
            + (
                f", {cache['rejected']} rejected"
                if cache.get("rejected")
                else ""
            )
            + "]"
        )


def _governance_kwargs(args) -> Dict[str, object]:
    """Map the fault-tolerance CLI flags to flow keyword arguments."""
    from .mapping import TaskPolicy

    kw: Dict[str, object] = {}
    if getattr(args, "max_bdd_nodes", None) is not None:
        kw["max_bdd_nodes"] = args.max_bdd_nodes
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    if timeout is not None or retries is not None:
        kw["policy"] = TaskPolicy(
            timeout_seconds=timeout,
            retries=retries if retries is not None else 1,
        )
    if getattr(args, "inject_faults", None):
        from .testing import FaultPlan

        kw["faults"] = FaultPlan.parse(args.inject_faults)
    fast_path = getattr(args, "fast_path", None)
    if fast_path is not None:
        kw["fast_path"] = fast_path
    cost = getattr(args, "cost", None)
    if cost is not None:
        from .decompose import parse_cost_model

        parse_cost_model(cost)  # fail fast on a bad spec
        kw["cost_model"] = cost
    return kw


def _print_degradation(result: MapResult) -> None:
    """Surface what the fault-tolerance layer had to recover from."""
    fallback = result.details.get("pool_fallback")
    if fallback:
        print(f"  [pool fallback to serial: {fallback}]")
    for entry in result.details.get("degraded") or []:
        outs = ", ".join(entry["group"])
        causes = "; ".join(entry["causes"])
        print(
            f"  [group {entry['gi']} ({outs}) recovered via "
            f"{entry['resolution']} after: {causes}]"
        )


def _print_portfolio(result: MapResult) -> None:
    """Show which strategy won each group of a portfolio run."""
    for entry in result.details.get("portfolio") or []:
        board = ", ".join(
            # A dropped advisory candidate (the exact rung past its
            # budget) is a bare string, not a {luts, depth} dict.
            f"{name}={c['luts']}/{c['depth']}"
            if isinstance(c, dict)
            else f"{name}={c}"
            for name, c in sorted(entry["candidates"].items())
        )
        print(
            f"  [portfolio group {entry['gi']} "
            f"({', '.join(entry['group'])}): {entry['winner']} wins "
            f"under {entry['cost_model']} — {board}]"
        )


def _cmd_circuits(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.num_inputs, spec.num_outputs,
         "exact" if spec.exact else "stand-in", spec.size_class]
        for spec in sorted(CIRCUITS.values(), key=lambda s: s.name)
    ]
    print(render_table(
        "registered benchmark circuits",
        ["name", "PI", "PO", "provenance", "class"],
        rows,
    ))
    return 0


def _write_trace_file(
    path: str,
    recorder: "obs.TraceRecorder",
    results: List[MapResult],
    flow: str,
    circuit: str,
    k: int,
    jobs: int,
    wall_seconds: float,
) -> None:
    """Dump a run's trace as JSONL with a merged-perf meta header."""
    from .perf import PerfCounters

    merged = PerfCounters()
    for result in results:
        perf = result.details.get("perf")
        if perf:
            merged.merge_dict(perf)
    count = obs.write_trace(
        path,
        recorder,
        {
            "flow": flow,
            "circuit": circuit,
            "k": k,
            "jobs": jobs,
            "wall_seconds": round(wall_seconds, 6),
            "perf": merged.snapshot(),
        },
    )
    print(f"wrote {count} trace records to {path}")


def _run_flows(net, args) -> int:
    labels = list(FLOWS) if args.flow == "all" else [args.flow]
    jobs = getattr(args, "jobs", 1)
    governance = _governance_kwargs(args)
    trace_path: Optional[str] = getattr(args, "trace", None)
    recorder = obs.TraceRecorder() if trace_path else None
    rows = []
    results: List[MapResult] = []
    wall_start = time.time()
    cache = _open_result_cache(args)
    try:
        with obs.installed(recorder):
            for label in labels:
                journal = _open_flow_journal(args, net.name, label)
                flow_kwargs = dict(governance)
                if getattr(args, "portfolio", False):
                    if label in PORTFOLIO_FLOWS:
                        flow_kwargs["portfolio"] = True
                    elif args.flow != "all":
                        print(
                            f"  [--portfolio only applies to "
                            f"{sorted(PORTFOLIO_FLOWS)}; ignored for "
                            f"{label}]"
                        )
                if journal is not None:
                    flow_kwargs["journal"] = journal
                if cache is not None and label in CACHED_FLOWS:
                    flow_kwargs["cache"] = cache
                try:
                    with obs.span(
                        f"flow:{label}", circuit=net.name, k=args.k,
                        jobs=jobs,
                    ):
                        result = FLOWS[label](
                            net.copy(), args.k, verify=args.verify,
                            jobs=jobs, **flow_kwargs,
                        )
                except RunInterrupted as exc:
                    print(
                        f"interrupted ({exc.reason}): {exc.completed}/"
                        f"{exc.total} groups journaled"
                        + (
                            f" in {exc.journal_path}"
                            if exc.journal_path else ""
                        )
                    )
                    print(
                        "re-run with --resume to pick up where this "
                        "left off"
                    )
                    return EXIT_INTERRUPTED
                if journal is not None:
                    info = result.details.get("journal") or {}
                    if info.get("replayed"):
                        print(
                            f"  [resumed: {info['replayed']} group(s) "
                            f"replayed from journal, {info['executed']} "
                            "executed; equivalence gate passed]"
                        )
                _print_degradation(result)
                _print_portfolio(result)
                _print_cache_summary(result)
                rows.append(
                    [label, result.lut_count, result.depth,
                     result.clb_count, round(result.seconds, 2)]
                )
                results.append(result)
    finally:
        if cache is not None:
            cache.close()
    print(render_table(
        f"mapping {net.name} (k={args.k})",
        ["flow", "LUTs", "depth", "CLBs", "seconds"],
        rows,
    ))
    if recorder is not None:
        _write_trace_file(
            trace_path, recorder, results, args.flow, net.name, args.k,
            jobs, time.time() - wall_start,
        )
    if args.output and results:
        write_blif(results[-1].network, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one flow and print its perf-counter report."""
    from .perf import format_perf_report

    net = build(args.circuit)
    trace_path: Optional[str] = getattr(args, "trace", None)
    recorder = obs.TraceRecorder() if trace_path else None
    journal = _open_flow_journal(args, net.name, args.flow)
    flow_kwargs = _governance_kwargs(args)
    if getattr(args, "portfolio", False) and args.flow in PORTFOLIO_FLOWS:
        flow_kwargs["portfolio"] = True
    if journal is not None:
        flow_kwargs["journal"] = journal
    cache = _open_result_cache(args)
    if cache is not None and args.flow in CACHED_FLOWS:
        flow_kwargs["cache"] = cache
    wall_start = time.time()
    try:
        with obs.installed(recorder):
            with obs.span(
                f"flow:{args.flow}", circuit=net.name, k=args.k,
                jobs=args.jobs,
            ):
                result = FLOWS[args.flow](
                    net, args.k, verify=args.verify, jobs=args.jobs,
                    **flow_kwargs,
                )
    except RunInterrupted as exc:
        print(
            f"interrupted ({exc.reason}): {exc.completed}/{exc.total} "
            "groups journaled"
            + (f" in {exc.journal_path}" if exc.journal_path else "")
        )
        print("re-run with --resume to pick up where this left off")
        return EXIT_INTERRUPTED
    finally:
        if cache is not None:
            cache.close()
    if recorder is not None:
        _write_trace_file(
            trace_path, recorder, [result], args.flow, net.name, args.k,
            args.jobs, time.time() - wall_start,
        )
    _print_degradation(result)
    _print_portfolio(result)
    _print_cache_summary(result)
    print(
        f"{args.flow} on {net.name}: {result.lut_count} LUTs "
        f"(depth {result.depth}), {result.seconds:.2f}s total"
    )
    perf = result.details.get("perf")
    if not perf:
        print("(flow reports no perf counters)")
        return 0
    print(format_perf_report(perf))
    oracle = perf.get("oracle")
    if oracle:
        print("oracle:")
        for key, value in sorted(oracle.items()):
            print(f"  {key:28s} {value}")
    if perf.get("jobs_requested") is not None:
        print(
            f"jobs: requested {perf['jobs_requested']}, "
            f"used {perf['jobs_used']}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render (or, with --check, gate on) a JSONL trace file."""
    records = obs.read_trace(args.path)
    problems = obs.validate_trace(records)
    if not args.check:
        print(obs.render_trace_summary(records))
        if problems:
            print(
                f"\n[{len(problems)} schema problem(s); "
                "run with --check for details]"
            )
        return 0

    failed = False
    for problem in problems:
        print(f"schema: {problem}")
        failed = True
    cov = obs.coverage(records)
    if args.min_coverage is not None:
        if cov is None:
            print("coverage: no root span with positive duration")
            failed = True
        elif cov < args.min_coverage:
            print(
                f"coverage: {cov:.1%} below required "
                f"{args.min_coverage:.1%}"
            )
            failed = True
    has_tasks = any(
        str(r.get("proc", "")).startswith("task:")
        for r in records
        if r.get("type") in ("span", "event")
    )
    if has_tasks:
        totals = obs.worker_perf_totals(records)
        if totals.get("apply_calls", 0) <= 0:
            print(
                "worker counters: task spans present but merged "
                "apply_calls is zero"
            )
            failed = True
    if failed:
        return 1
    cov_text = f"{cov:.1%}" if cov is not None else "n/a"
    spans = sum(1 for r in records if r.get("type") in ("span", "event"))
    print(
        f"trace ok: {spans} spans, coverage {cov_text}, "
        f"task trees {'present' if has_tasks else 'absent'}"
    )
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Render (or, with --check, gate on) a checkpoint journal file."""
    records, problems = load_journal(args.path)
    problems = list(problems) + validate_journal(records)
    if args.check:
        for problem in problems:
            print(f"journal: {problem}")
        if problems:
            return 1
        groups = sum(1 for r in records if r.get("type") == "group")
        verdicts = [r for r in records if r.get("type") == "verdict"]
        if verdicts and not verdicts[-1].get("equivalent"):
            print("journal: last equivalence verdict is negative")
            return 1
        done = any(r.get("type") == "done" for r in records)
        print(
            f"journal ok: {groups} group(s), {len(verdicts)} verdict(s), "
            f"run {'complete' if done else 'incomplete'}"
        )
        return 0

    meta = records[0] if records and records[0].get("type") == "meta" else {}
    print(
        f"journal {args.path}: circuit={meta.get('circuit')} "
        f"flow={meta.get('flow')} k={meta.get('k')} "
        f"version={meta.get('version')}"
    )
    for record in records:
        kind = record.get("type")
        if kind == "group":
            outs = ",".join(record.get("group", []))
            print(
                f"  group {record.get('gi'):>3} [{record.get('key')}] "
                f"({outs}) {record.get('mode')} "
                f"{record.get('seconds', 0):.3f}s"
                + (
                    f" via {record['resolution']}"
                    if record.get("resolution")
                    else ""
                )
            )
        elif kind == "event":
            if record.get("kind") == "interrupted":
                print(
                    f"  interrupted ({record.get('reason')}): "
                    f"{record.get('completed')}/{record.get('total')} groups"
                )
            elif record.get("kind") == "failing_cone":
                print(
                    f"  failing cone: output {record.get('output')!r} at "
                    f"{record.get('root')!r} "
                    f"({len(record.get('cone_nodes') or [])} node(s), "
                    f"{'confirmed' if record.get('confirmed') else 'unconfirmed'})"
                )
            else:
                print(f"  event: {record.get('kind')}")
        elif kind == "verdict":
            status = "equivalent" if record.get("equivalent") else "DIFFERS"
            print(
                f"  verdict: {status} (replayed {record.get('replayed')}, "
                f"executed {record.get('executed')}, "
                f"engine {record.get('engine')})"
            )
        elif kind == "done":
            print(
                f"  done: flow={record.get('flow')} "
                f"luts={record.get('lut_count')} "
                f"clbs={record.get('clb_count')} "
                f"seconds={record.get('seconds')}"
            )
    if problems:
        print(
            f"\n[{len(problems)} problem(s); "
            "run with --check for a non-zero exit]"
        )
        for problem in problems:
            print(f"  {problem}")
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    """Exact k-LUT mapping of every output cone of a small BLIF.

    Each cone is flattened to its truth table and handed to the
    :mod:`repro.exact` oracle; the answer per output is a *proven*
    minimum LUT count (and, under ``--cost delay``, the minimum depth at
    that count).  Cones wider than the oracle's input cap, or whose
    search exhausts ``--budget-seconds``, are reported as such — the
    command never prints an unproven number as exact.
    """
    from .exact import ExactBudgetExceeded, ExactCache, cone_spec, exact_map
    from .mapping.parallel import _splice_witness
    from .network import Network, check_equivalence

    net = read_blif(args.path)
    trace_path: Optional[str] = getattr(args, "trace", None)
    recorder = obs.TraceRecorder() if trace_path else None
    cache = ExactCache(args.cache) if args.cache else None
    witness = Network(f"{net.name}_exact")
    for pi in net.inputs:
        witness.add_input(pi)
    rows = []
    unproven = 0
    wall_start = time.time()
    try:
        with obs.installed(recorder):
            with obs.span("flow:exact", circuit=net.name, k=args.k):
                for out in net.output_names:
                    try:
                        spec, support = cone_spec(net, out)
                    except ValueError as exc:
                        rows.append([out, "-", "-", "-", "-", str(exc)])
                        unproven += 1
                        continue
                    try:
                        with obs.span(
                            "exact_cone", output=out, n=spec.num_inputs
                        ):
                            res = exact_map(
                                spec,
                                args.k,
                                cost=args.cost,
                                budget_seconds=args.budget_seconds,
                                cache=cache,
                                input_names=support,
                                output_name=out,
                                name=f"{net.name}_exact",
                            )
                    except ExactBudgetExceeded as exc:
                        rows.append(
                            [out, spec.num_inputs, "-", "-", "-", str(exc)]
                        )
                        unproven += 1
                        continue
                    _splice_witness(witness, res.network, out)
                    rows.append(
                        [
                            out,
                            spec.num_inputs,
                            res.luts,
                            res.depth,
                            res.source + (" (cache)" if res.cache_hit else ""),
                            f"{res.seconds:.3f}s",
                        ]
                    )
    finally:
        if cache is not None:
            stats = cache.stats()
            cache.close()
            print(
                f"  [exact cache: {stats['rows']} row(s), "
                f"{stats['hits']} hit(s), {stats['misses']} miss(es)]"
            )
    print(render_table(
        f"exact mapping {net.name} (k={args.k}, cost={args.cost})",
        ["output", "n", "LUTs", "depth", "source", "detail"],
        rows,
    ))
    if recorder is not None:
        _write_trace_file(
            trace_path, recorder, [], "exact", net.name, args.k, 1,
            time.time() - wall_start,
        )
    if args.output:
        if unproven:
            print(
                f"not writing {args.output}: {unproven} cone(s) have no "
                "exact witness"
            )
            return 1
        bad = check_equivalence(net, witness)
        if bad is not None:
            raise RuntimeError(
                f"exact witness differs from the spec on output {bad!r}"
            )
        write_blif(witness, args.output)
        print(f"wrote {args.output} (verified equivalent)")
    return 1 if unproven else 0


def _cmd_map(args: argparse.Namespace) -> int:
    return _run_flows(build(args.circuit), args)


def _cmd_blif(args: argparse.Namespace) -> int:
    return _run_flows(read_blif(args.path), args)


def _cmd_table(args: argparse.Namespace, table: int) -> int:
    classes = {"small": ["small"], "medium": ["small", "medium"],
               "all": ["small", "medium", "large"]}[args.classes]
    from .circuits import names

    if table == 1:
        paper, metric = TABLE1_CLB, "clb_count"
        flows = {
            "imodec-like": FLOWS["random"],
            "fgsyn-like": FLOWS["column"],
            "hyde": FLOWS["hyde"],
        }
        columns = {"imodec-like": "imodec", "fgsyn-like": "fgsyn",
                   "hyde": "hyde"}
    else:
        paper, metric = TABLE2_LUT, "lut_count"
        flows = {
            "no-resub": FLOWS["random"],
            "resub": FLOWS["resub"],
            "hyde": FLOWS["hyde"],
        }
        columns = {"no-resub": "no_resub", "resub": "resub", "hyde": "hyde"}

    selected = [
        n for n in sorted(paper)
        if n in CIRCUITS and CIRCUITS[n].size_class in classes
    ]
    record = run_experiment(
        f"table{table}", flows, selected, metric=metric, verbose=args.verbose
    )
    print(render_comparison(
        record, list(flows), paper, columns,
        f"Table {table} (measured vs paper)",
    ))
    return 0


def _add_cost_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cost", default=None, metavar="MODEL",
        help="cost model steering decomposition and strategy choice: "
        "'area' (LUT count; the historical default), 'delay' (LUT "
        "depth first, LUTs as tie-break), or 'weighted[:AW,DW]'",
    )
    p.add_argument(
        "--portfolio", action="store_true",
        help="race hyper / per-output / column / structural per output "
        "group and keep the winner under the active cost model "
        "(hyde flow only)",
    )


def _add_governance_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-group wall-clock timeout; failures walk the "
        "degradation ladder (retry, per-output, structural)",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retries (with decaying budgets) per failed group",
    )
    p.add_argument(
        "--max-bdd-nodes", type=int, default=None, metavar="N",
        help="BDD node budget per decomposition manager",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash@0,hang@1:2' "
        "(kind@group[:times]; kinds: crash, hang, oversized_bdd, "
        "corrupt_blif; parent_kill@N stops the run after N groups)",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal each completed group to DIR so an interrupted run "
        "can be resumed (one journal file per circuit/flow/k)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint: replay completed groups from the "
        "journal instead of re-executing them (the spliced network is "
        "equivalence-checked against the source before the run counts "
        "as complete)",
    )
    p.add_argument(
        "--cache", default=None, metavar="FILE",
        help="serve repeat group tasks from a content-addressed SQLite "
        "result store (created on first use; fragments are "
        "equivalence-revalidated before first reuse)",
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    """Check a mapped BLIF against its golden source.

    Default engine is the monolithic BDD check; ``--finegrain`` localizes
    any mismatch to the smallest wrong cone with a simulation-confirmed
    counterexample, and ``--repro-dir`` additionally shrinks each failing
    output's XOR miter into a minimal self-contained witness BLIF.
    ``--mutants N`` instead self-validates the checker: N single-point
    faults are injected into the mapped network and every one must be
    caught, localized and confirmed (or proven masked).
    """
    from .network import check_equivalence
    from .verify import (
        build_miter,
        finegrain_check,
        miter_satisfiable,
        mutation_failures,
        self_validate,
    )

    golden = read_blif(args.golden)
    mapped = read_blif(args.mapped)

    if args.mutants:
        report = self_validate(
            mapped,
            num_mutants=args.mutants,
            seed=args.seed,
            num_vectors=args.vectors,
        )
        print(report.summary())
        for problem in mutation_failures(report):
            print(f"  {problem}")
        return 0 if report.ok else 1

    if not args.finegrain:
        bad = check_equivalence(golden, mapped)
        if bad is None:
            print(f"equivalent: {args.mapped} matches {args.golden}")
            return 0
        print(f"NOT equivalent: output {bad!r} differs")
        return 1

    report = finegrain_check(
        golden, mapped, num_vectors=args.vectors, seed=args.seed
    )
    print(report.summary())
    if report.equivalent:
        return 0
    if args.repro_dir:
        from .testing import save_repro, shrink_network

        for cone in report.failing_cones:
            miter = build_miter(golden, mapped, cone.output)
            shrunk = shrink_network(miter, miter_satisfiable)
            path = save_repro(
                shrunk,
                args.repro_dir,
                f"{golden.name}_{cone.output}_miter",
                note=(
                    f"XOR miter of output {cone.output!r}: "
                    f"{args.mapped} vs {args.golden}; satisfiable "
                    "assignments are counterexamples.\n" + cone.describe()
                ),
            )
            print(f"shrunk witness for {cone.output!r}: {path}")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the mapping daemon until dismissed (exit 0) or drained (75)."""
    if args.supervise:
        # Watchdog mode: re-exec ourselves without --supervise as the
        # child and restart it on crashes with crash-loop backoff.
        from .service import build_child_argv, run_supervised

        serve_args = [
            "--store", args.store,
            "--jobs", str(args.jobs),
            "--host", args.host,
            "--port", str(args.port),
            "--max-concurrent", str(args.max_concurrent),
            "--max-queue", str(args.max_queue),
            "--queue-timeout", str(args.queue_timeout),
            "--request-timeout", str(args.request_timeout),
            "--breaker-threshold", str(args.breaker_threshold),
            "--breaker-cooldown", str(args.breaker_cooldown),
        ]
        if args.info:
            serve_args += ["--info", args.info]
        if args.max_rows is not None:
            serve_args += ["--max-rows", str(args.max_rows)]
        if args.quiet:
            serve_args += ["--quiet"]
        return run_supervised(
            build_child_argv(serve_args),
            max_restarts=args.max_restarts,
            quiet=args.quiet,
        )

    from .service import MappingDaemon

    daemon = MappingDaemon(
        args.store,
        jobs=args.jobs,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        info_path=args.info,
        max_rows=args.max_rows,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        request_timeout=(
            args.request_timeout if args.request_timeout > 0 else None
        ),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    return daemon.serve(quiet=args.quiet)


def _cmd_health(args: argparse.Namespace) -> int:
    """Probe a daemon: exit 0 healthy, 1 degraded/draining, 2 unreachable."""
    from .service import ServiceClient, ServiceError

    try:
        if args.info:
            client = ServiceClient.from_info(args.info, timeout=args.timeout)
        elif args.port:
            client = ServiceClient(args.host, args.port, timeout=args.timeout)
        else:
            print("health needs --info FILE or --port N", file=sys.stderr)
            return 2
        record = client.health()
    except ServiceError as exc:
        print(f"unreachable ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        queue = record.get("queue") or {}
        breaker = record.get("breaker") or {}
        pool = record.get("pool") or {}
        print(
            f"status {record.get('status')} "
            f"(pid {record.get('pid')}, up {record.get('uptime_seconds')}s)"
        )
        print(
            f"  queue    {queue.get('active')} active, "
            f"{queue.get('queued')} queued "
            f"(cap {queue.get('max_concurrent')}+{queue.get('max_queue')}), "
            f"{queue.get('sheds')} shed"
        )
        if breaker:
            print(
                f"  breaker  {breaker.get('state')} "
                f"({breaker.get('consecutive_failures')} consecutive "
                f"failure(s), {breaker.get('trips')} trip(s), "
                f"{breaker.get('recoveries')} recover(ies))"
            )
        if pool:
            print(
                f"  pool     alive={pool.get('alive')} "
                f"recycles={pool.get('recycles')} "
                f"forced={pool.get('forced_recycles')}"
            )
    return 0 if record.get("ok") else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a circuit to a running daemon (possibly repeatedly)."""
    from .network import to_blif
    from .service import ServiceClient, ServiceError

    if args.info:
        client = ServiceClient.from_info(args.info, timeout=args.timeout)
    elif args.port:
        client = ServiceClient(args.host, args.port, timeout=args.timeout)
    else:
        print("submit needs --info FILE or --port N", file=sys.stderr)
        return 2
    if args.blif:
        blif_text = open(args.blif, "r", encoding="utf-8").read()
    else:
        blif_text = to_blif(build(args.circuit))
    knobs: Dict[str, object] = {"k": args.k}
    if args.verify is not None:
        knobs["verify"] = args.verify
    if getattr(args, "cost", None):
        knobs["cost_model"] = args.cost
    if getattr(args, "portfolio", False):
        knobs["portfolio"] = True
    last = None
    try:
        for i in range(args.times):
            result = client.submit_with_retry(
                blif_text,
                flow=args.flow,
                retries=args.retries,
                deadline=args.deadline,
                **knobs,
            )
            cache = result.get("cache") or {}
            depth = result.get("depth")
            attempts = result.get("client_attempts", 1)
            print(
                f"pass {i + 1}/{args.times}: {result['luts']} LUTs"
                + (f" (depth {depth})" if depth is not None else "")
                + f", {result['service_seconds']:.3f}s service time, "
                f"cache {cache.get('hits', 0)} hit(s) / "
                f"{cache.get('misses', 0)} miss(es)"
                + (f", {attempts} attempt(s)" if attempts > 1 else "")
            )
            if last is not None and last["blif"] != result["blif"]:
                print("ERROR: repeat submission produced different BLIF",
                      file=sys.stderr)
                return 1
            last = result
        if args.shutdown:
            client.shutdown()
            print("daemon dismissed")
    except ServiceError as exc:
        print(f"service error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if args.output and last is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(last["blif"])
        print(f"wrote {args.output}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (or, with --check, gate on) a result-store file."""
    from .service import ResultStore

    with ResultStore(args.path) as store:
        if args.prune:
            pruned = store.prune_stale()
            print(f"pruned {pruned} stale row(s)")
        stats = store.stats()
        if args.check:
            problems = store.validate()
            for problem in problems:
                print(f"store: {problem}")
            if problems:
                return 1
            print(
                f"store ok: {stats['current_rows']} row(s) at schema "
                f"{stats['schema']}, {stats['verified_rows']} verified, "
                f"{stats['stale_rows']} stale"
            )
            return 0
        print(f"result store {stats['path']}")
        print(f"  schema          {stats['schema']}")
        print(f"  rows            {stats['rows']}")
        print(f"  current rows    {stats['current_rows']}")
        print(f"  stale rows      {stats['stale_rows']}")
        print(f"  verified rows   {stats['verified_rows']}")
        print(f"  stored hits     {stats['stored_hits']}")
        print(f"  max rows        {stats['max_rows']}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="HYDE (DAC 1998) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list benchmark circuits")

    for name, help_text in [
        ("map", "map a registered benchmark circuit"),
        ("blif", "map a BLIF file"),
    ]:
        p = sub.add_parser(name, help=help_text)
        if name == "map":
            p.add_argument("circuit", choices=sorted(CIRCUITS))
        else:
            p.add_argument("path")
        p.add_argument("--flow", default="hyde",
                       choices=list(FLOWS) + ["all"])
        p.add_argument("-k", type=int, default=5, help="LUT input count")
        p.add_argument("--verify", default="bdd",
                       choices=["bdd", "sim", "none", "finegrain"])
        p.add_argument("--jobs", type=int, default=1,
                       help="decompose ingredient groups in N processes")
        p.add_argument("--fast-path", default="auto",
                       choices=["auto", "bitpack", "bdd"],
                       help="class-counting backend (packed tables vs "
                            "BDD walks; results are identical)")
        _add_cost_flags(p)
        _add_governance_flags(p)
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a JSONL span trace of the run here")
        p.add_argument("-o", "--output", help="write mapped BLIF here")

    p = sub.add_parser(
        "exact",
        help="exact (provably minimal) k-LUT mapping of a small BLIF's "
        "output cones — the optimality oracle",
    )
    p.add_argument("path", help="BLIF file; every output cone must have "
                   "at most 10 inputs to be scored")
    p.add_argument("-k", type=int, default=5, help="LUT input count")
    p.add_argument("--cost", default="area", choices=["area", "delay"],
                   help="'area': minimum LUT count; 'delay': minimum "
                   "depth at that LUT count")
    p.add_argument("--budget-seconds", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget per cone (default 5); an "
                   "exhausted search reports 'budget exceeded', never "
                   "an unproven number")
    p.add_argument("--cache", default=None, metavar="FILE",
                   help="NPN-canonical SQLite result memo (created on "
                   "first use; shared across runs)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL span trace of the run here")
    p.add_argument("-o", "--output",
                   help="write the spliced exact witness BLIF here "
                   "(verified equivalent first)")

    p = sub.add_parser(
        "stats", help="run a flow and print its perf-counter report"
    )
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--flow", default="hyde", choices=list(FLOWS))
    p.add_argument("-k", type=int, default=5, help="LUT input count")
    p.add_argument("--verify", default="bdd",
                   choices=["bdd", "sim", "none", "finegrain"])
    p.add_argument("--jobs", type=int, default=1,
                   help="decompose ingredient groups in N processes")
    p.add_argument("--fast-path", default="auto",
                   choices=["auto", "bitpack", "bdd"],
                   help="class-counting backend (packed tables vs "
                        "BDD walks; results are identical)")
    _add_cost_flags(p)
    _add_governance_flags(p)
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL span trace of the run here")

    p = sub.add_parser(
        "trace", help="render a JSONL trace file as a flame-style summary"
    )
    p.add_argument("path", help="trace file written by --trace")
    p.add_argument(
        "--check", action="store_true",
        help="validate instead of render: schema, coverage floor and "
        "merged worker counters; non-zero exit on failure",
    )
    p.add_argument(
        "--min-coverage", type=float, default=None, metavar="FRACTION",
        help="with --check: require children of each root span to cover "
        "at least this fraction of its wall time (e.g. 0.9)",
    )

    p = sub.add_parser(
        "verify",
        help="check a mapped BLIF against its golden source "
        "(fine-grained localization, mutation self-validation)",
    )
    p.add_argument("golden", help="golden (source) BLIF file")
    p.add_argument("mapped", help="mapped BLIF file to verify")
    p.add_argument(
        "--finegrain", action="store_true",
        help="localize any mismatch to the smallest wrong cone with a "
        "simulation-confirmed counterexample",
    )
    p.add_argument(
        "--mutants", type=int, default=0, metavar="N",
        help="instead of verifying, self-validate the checker on N "
        "single-point faults injected into the mapped network",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="seed for simulation vectors / mutant sampling")
    p.add_argument("--vectors", type=int, default=64,
                   help="random simulation width for signature pairing")
    p.add_argument(
        "--repro-dir", default=None, metavar="DIR",
        help="with --finegrain: shrink each failing output's XOR miter "
        "and save it here as a standalone witness BLIF",
    )

    p = sub.add_parser(
        "journal", help="render a checkpoint journal written by --checkpoint"
    )
    p.add_argument("path", help="journal file written by --checkpoint")
    p.add_argument(
        "--check", action="store_true",
        help="validate instead of render: schema, record hashes, "
        "fragment parses and the final equivalence verdict; non-zero "
        "exit on failure",
    )

    p = sub.add_parser(
        "serve",
        help="run the mapping daemon (warm worker pool + result cache)",
    )
    p.add_argument("--store", required=True, metavar="FILE",
                   help="SQLite result-store path (created on first use)")
    p.add_argument("--jobs", type=int, default=2,
                   help="warm worker-pool size (1 = in-process, no pool)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = let the OS pick; see --info)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="map requests served at once; extras queue")
    p.add_argument("--info", default=None, metavar="FILE",
                   help="write the bound endpoint here (atomic JSON) "
                   "for client discovery")
    p.add_argument("--max-rows", type=int, default=None,
                   help="LRU capacity of the result store")
    p.add_argument("--max-queue", type=int, default=16,
                   help="map requests allowed to wait for a slot; "
                   "anyone past that is shed with a typed 'busy' error "
                   "and a retry-after hint")
    p.add_argument("--queue-timeout", type=float, default=30.0,
                   help="longest a queued map request waits for a slot "
                   "before being shed")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="seconds a connection may take to deliver its "
                   "request line before being dropped (slow-loris "
                   "defense; 0 disables)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive pool recycles that trip the "
                   "circuit breaker into cache-only serial mapping")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds the breaker stays open before probing "
                   "the pool again")
    p.add_argument("--supervise", action="store_true",
                   help="run the daemon as a supervised child and "
                   "restart it on crashes with crash-loop backoff "
                   "(clean exits 0/75 stop the watchdog)")
    p.add_argument("--max-restarts", type=int, default=None, metavar="N",
                   help="give up after N crash restarts (default: "
                   "restart forever)")
    p.add_argument("--quiet", action="store_true")

    p = sub.add_parser(
        "submit", help="submit a circuit to a running mapping daemon"
    )
    p.add_argument("circuit", nargs="?", choices=sorted(CIRCUITS),
                   help="registered benchmark circuit (or use --blif)")
    p.add_argument("--blif", default=None, metavar="FILE",
                   help="submit this BLIF file instead of a circuit")
    p.add_argument("--info", default=None, metavar="FILE",
                   help="endpoint file written by serve --info")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--flow", default="hyde", choices=["hyde", "per-output"])
    p.add_argument("-k", type=int, default=5, help="LUT input count")
    p.add_argument("--verify", default=None,
                   choices=["bdd", "sim", "none", "finegrain"],
                   help="whole-network verify (service default: none; "
                   "fragments are validated regardless)")
    _add_cost_flags(p)
    p.add_argument("--times", type=int, default=1, metavar="N",
                   help="submit N times (repeats should hit the cache)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="client socket timeout in seconds")
    p.add_argument("--retries", type=int, default=4,
                   help="retry budget for retryable service errors "
                   "(busy/draining/torn stream/unreachable)")
    p.add_argument("--deadline", type=float, default=None, metavar="SEC",
                   help="end-to-end deadline per submission; also "
                   "propagated into the daemon's task budget")
    p.add_argument("--shutdown", action="store_true",
                   help="dismiss the daemon after the last submission")
    p.add_argument("-o", "--output", help="write the mapped BLIF here")

    p = sub.add_parser(
        "health", help="probe a running daemon's health endpoint"
    )
    p.add_argument("--info", default=None, metavar="FILE",
                   help="endpoint file written by serve --info")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--json", action="store_true",
                   help="print the raw health record")

    p = sub.add_parser(
        "cache", help="inspect or validate a result-store file"
    )
    p.add_argument("path", help="SQLite store written by serve/--cache")
    p.add_argument(
        "--check", action="store_true",
        help="validate instead of render: row hashes, key shapes and "
        "fragment parses; non-zero exit on failure",
    )
    p.add_argument(
        "--prune", action="store_true",
        help="delete rows stamped with a stale schema version first",
    )

    for table in (1, 2):
        p = sub.add_parser(f"table{table}",
                           help=f"regenerate the paper's Table {table}")
        p.add_argument("--classes", default="medium",
                       choices=["small", "medium", "all"])
        p.add_argument("--verbose", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "circuits":
        return _cmd_circuits(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "blif":
        return _cmd_blif(args)
    if args.command == "exact":
        return _cmd_exact(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "journal":
        return _cmd_journal(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        if not args.circuit and not args.blif:
            parser.error("submit needs a circuit name or --blif FILE")
        return _cmd_submit(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "table1":
        return _cmd_table(args, 1)
    if args.command == "table2":
        return _cmd_table(args, 2)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
