"""Command-line interface for the HYDE reproduction.

Usage examples::

    python -m repro.cli circuits                 # list benchmark circuits
    python -m repro.cli map 9sym --flow hyde     # map one circuit
    python -m repro.cli map rd84 --flow all      # compare every flow
    python -m repro.cli map duke2 --jobs 4        # parallel group mapping
    python -m repro.cli stats 9sym --flow hyde    # perf-counter report
    python -m repro.cli table1 --classes small   # regenerate Table 1
    python -m repro.cli table2 --classes small
    python -m repro.cli blif my_circuit.blif --flow hyde -o mapped.blif
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from . import obs
from .circuits import CIRCUITS, build
from .harness import (
    TABLE1_CLB,
    TABLE2_LUT,
    render_comparison,
    render_table,
    run_experiment,
)
from .mapping import (
    MapResult,
    hyde_map,
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
    map_structural,
)
from .network import read_blif, write_blif
from .runstate import RunInterrupted, load_journal, open_journal, validate_journal

#: Exit code of an interrupted (but journaled and resumable) run —
#: EX_TEMPFAIL, the sysexits convention for "try again later".
EXIT_INTERRUPTED = 75

FLOWS: Dict[str, Callable] = {
    "hyde": lambda net, k, verify="bdd", jobs=1, **kw: hyde_map(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    "per-output": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output(
        net, k, encoding_policy="chart", verify=verify, jobs=jobs, **kw
    ),
    "random": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output(
        net, k, encoding_policy="random", verify=verify, jobs=jobs, **kw
    ),
    "resub": lambda net, k, verify="bdd", jobs=1, **kw: map_per_output_resub(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    "column": lambda net, k, verify="bdd", jobs=1, **kw: map_column_encoding(
        net, k, verify=verify, jobs=jobs, **kw
    ),
    # Flows below have no group-level parallelism (and hence no fault
    # tolerance or checkpointing); ``jobs`` and the governance kwargs
    # are accepted (so ``--flow all --jobs N`` works) and ignored.
    "shannon": lambda net, k, verify="bdd", jobs=1, **kw: map_shannon(
        net, k, verify=verify
    ),
    "structural": lambda net, k, verify="bdd", jobs=1, **kw: map_structural(
        net, k, verify=verify
    ),
}

#: Flows that accept a ``journal=`` kwarg (checkpoint/resume support).
JOURNALED_FLOWS = {"hyde", "per-output", "random", "resub", "column"}


def _open_flow_journal(args, circuit: str, label: str):
    """Open the checkpoint journal for one (circuit, flow) run, or None."""
    directory = getattr(args, "checkpoint", None)
    if directory is None or label not in JOURNALED_FLOWS:
        return None
    return open_journal(
        directory, circuit, label, args.k,
        resume=getattr(args, "resume", False),
    )


def _governance_kwargs(args) -> Dict[str, object]:
    """Map the fault-tolerance CLI flags to flow keyword arguments."""
    from .mapping import TaskPolicy

    kw: Dict[str, object] = {}
    if getattr(args, "max_bdd_nodes", None) is not None:
        kw["max_bdd_nodes"] = args.max_bdd_nodes
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    if timeout is not None or retries is not None:
        kw["policy"] = TaskPolicy(
            timeout_seconds=timeout,
            retries=retries if retries is not None else 1,
        )
    if getattr(args, "inject_faults", None):
        from .testing import FaultPlan

        kw["faults"] = FaultPlan.parse(args.inject_faults)
    fast_path = getattr(args, "fast_path", None)
    if fast_path is not None:
        kw["fast_path"] = fast_path
    return kw


def _print_degradation(result: MapResult) -> None:
    """Surface what the fault-tolerance layer had to recover from."""
    fallback = result.details.get("pool_fallback")
    if fallback:
        print(f"  [pool fallback to serial: {fallback}]")
    for entry in result.details.get("degraded") or []:
        outs = ", ".join(entry["group"])
        causes = "; ".join(entry["causes"])
        print(
            f"  [group {entry['gi']} ({outs}) recovered via "
            f"{entry['resolution']} after: {causes}]"
        )


def _cmd_circuits(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.num_inputs, spec.num_outputs,
         "exact" if spec.exact else "stand-in", spec.size_class]
        for spec in sorted(CIRCUITS.values(), key=lambda s: s.name)
    ]
    print(render_table(
        "registered benchmark circuits",
        ["name", "PI", "PO", "provenance", "class"],
        rows,
    ))
    return 0


def _write_trace_file(
    path: str,
    recorder: "obs.TraceRecorder",
    results: List[MapResult],
    flow: str,
    circuit: str,
    k: int,
    jobs: int,
    wall_seconds: float,
) -> None:
    """Dump a run's trace as JSONL with a merged-perf meta header."""
    from .perf import PerfCounters

    merged = PerfCounters()
    for result in results:
        perf = result.details.get("perf")
        if perf:
            merged.merge_dict(perf)
    count = obs.write_trace(
        path,
        recorder,
        {
            "flow": flow,
            "circuit": circuit,
            "k": k,
            "jobs": jobs,
            "wall_seconds": round(wall_seconds, 6),
            "perf": merged.snapshot(),
        },
    )
    print(f"wrote {count} trace records to {path}")


def _run_flows(net, args) -> int:
    labels = list(FLOWS) if args.flow == "all" else [args.flow]
    jobs = getattr(args, "jobs", 1)
    governance = _governance_kwargs(args)
    trace_path: Optional[str] = getattr(args, "trace", None)
    recorder = obs.TraceRecorder() if trace_path else None
    rows = []
    results: List[MapResult] = []
    wall_start = time.time()
    with obs.installed(recorder):
        for label in labels:
            journal = _open_flow_journal(args, net.name, label)
            flow_kwargs = dict(governance)
            if journal is not None:
                flow_kwargs["journal"] = journal
            try:
                with obs.span(
                    f"flow:{label}", circuit=net.name, k=args.k, jobs=jobs
                ):
                    result = FLOWS[label](
                        net.copy(), args.k, verify=args.verify, jobs=jobs,
                        **flow_kwargs,
                    )
            except RunInterrupted as exc:
                print(
                    f"interrupted ({exc.reason}): {exc.completed}/"
                    f"{exc.total} groups journaled"
                    + (f" in {exc.journal_path}" if exc.journal_path else "")
                )
                print("re-run with --resume to pick up where this left off")
                return EXIT_INTERRUPTED
            if journal is not None:
                info = result.details.get("journal") or {}
                if info.get("replayed"):
                    print(
                        f"  [resumed: {info['replayed']} group(s) replayed "
                        f"from journal, {info['executed']} executed; "
                        "equivalence gate passed]"
                    )
            _print_degradation(result)
            rows.append(
                [label, result.lut_count, result.clb_count,
                 round(result.seconds, 2)]
            )
            results.append(result)
    print(render_table(
        f"mapping {net.name} (k={args.k})",
        ["flow", "LUTs", "CLBs", "seconds"],
        rows,
    ))
    if recorder is not None:
        _write_trace_file(
            trace_path, recorder, results, args.flow, net.name, args.k,
            jobs, time.time() - wall_start,
        )
    if args.output and results:
        write_blif(results[-1].network, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one flow and print its perf-counter report."""
    from .perf import format_perf_report

    net = build(args.circuit)
    trace_path: Optional[str] = getattr(args, "trace", None)
    recorder = obs.TraceRecorder() if trace_path else None
    journal = _open_flow_journal(args, net.name, args.flow)
    flow_kwargs = _governance_kwargs(args)
    if journal is not None:
        flow_kwargs["journal"] = journal
    wall_start = time.time()
    try:
        with obs.installed(recorder):
            with obs.span(
                f"flow:{args.flow}", circuit=net.name, k=args.k,
                jobs=args.jobs,
            ):
                result = FLOWS[args.flow](
                    net, args.k, verify=args.verify, jobs=args.jobs,
                    **flow_kwargs,
                )
    except RunInterrupted as exc:
        print(
            f"interrupted ({exc.reason}): {exc.completed}/{exc.total} "
            "groups journaled"
            + (f" in {exc.journal_path}" if exc.journal_path else "")
        )
        print("re-run with --resume to pick up where this left off")
        return EXIT_INTERRUPTED
    if recorder is not None:
        _write_trace_file(
            trace_path, recorder, [result], args.flow, net.name, args.k,
            args.jobs, time.time() - wall_start,
        )
    _print_degradation(result)
    print(
        f"{args.flow} on {net.name}: {result.lut_count} LUTs, "
        f"{result.seconds:.2f}s total"
    )
    perf = result.details.get("perf")
    if not perf:
        print("(flow reports no perf counters)")
        return 0
    print(format_perf_report(perf))
    oracle = perf.get("oracle")
    if oracle:
        print("oracle:")
        for key, value in sorted(oracle.items()):
            print(f"  {key:28s} {value}")
    if perf.get("jobs_requested") is not None:
        print(
            f"jobs: requested {perf['jobs_requested']}, "
            f"used {perf['jobs_used']}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render (or, with --check, gate on) a JSONL trace file."""
    records = obs.read_trace(args.path)
    problems = obs.validate_trace(records)
    if not args.check:
        print(obs.render_trace_summary(records))
        if problems:
            print(
                f"\n[{len(problems)} schema problem(s); "
                "run with --check for details]"
            )
        return 0

    failed = False
    for problem in problems:
        print(f"schema: {problem}")
        failed = True
    cov = obs.coverage(records)
    if args.min_coverage is not None:
        if cov is None:
            print("coverage: no root span with positive duration")
            failed = True
        elif cov < args.min_coverage:
            print(
                f"coverage: {cov:.1%} below required "
                f"{args.min_coverage:.1%}"
            )
            failed = True
    has_tasks = any(
        str(r.get("proc", "")).startswith("task:")
        for r in records
        if r.get("type") in ("span", "event")
    )
    if has_tasks:
        totals = obs.worker_perf_totals(records)
        if totals.get("apply_calls", 0) <= 0:
            print(
                "worker counters: task spans present but merged "
                "apply_calls is zero"
            )
            failed = True
    if failed:
        return 1
    cov_text = f"{cov:.1%}" if cov is not None else "n/a"
    spans = sum(1 for r in records if r.get("type") in ("span", "event"))
    print(
        f"trace ok: {spans} spans, coverage {cov_text}, "
        f"task trees {'present' if has_tasks else 'absent'}"
    )
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Render (or, with --check, gate on) a checkpoint journal file."""
    records, problems = load_journal(args.path)
    problems = list(problems) + validate_journal(records)
    if args.check:
        for problem in problems:
            print(f"journal: {problem}")
        if problems:
            return 1
        groups = sum(1 for r in records if r.get("type") == "group")
        verdicts = [r for r in records if r.get("type") == "verdict"]
        if verdicts and not verdicts[-1].get("equivalent"):
            print("journal: last equivalence verdict is negative")
            return 1
        done = any(r.get("type") == "done" for r in records)
        print(
            f"journal ok: {groups} group(s), {len(verdicts)} verdict(s), "
            f"run {'complete' if done else 'incomplete'}"
        )
        return 0

    meta = records[0] if records and records[0].get("type") == "meta" else {}
    print(
        f"journal {args.path}: circuit={meta.get('circuit')} "
        f"flow={meta.get('flow')} k={meta.get('k')} "
        f"version={meta.get('version')}"
    )
    for record in records:
        kind = record.get("type")
        if kind == "group":
            outs = ",".join(record.get("group", []))
            print(
                f"  group {record.get('gi'):>3} [{record.get('key')}] "
                f"({outs}) {record.get('mode')} "
                f"{record.get('seconds', 0):.3f}s"
                + (
                    f" via {record['resolution']}"
                    if record.get("resolution")
                    else ""
                )
            )
        elif kind == "event":
            if record.get("kind") == "interrupted":
                print(
                    f"  interrupted ({record.get('reason')}): "
                    f"{record.get('completed')}/{record.get('total')} groups"
                )
            elif record.get("kind") == "failing_cone":
                print(
                    f"  failing cone: output {record.get('output')!r} at "
                    f"{record.get('root')!r} "
                    f"({len(record.get('cone_nodes') or [])} node(s), "
                    f"{'confirmed' if record.get('confirmed') else 'unconfirmed'})"
                )
            else:
                print(f"  event: {record.get('kind')}")
        elif kind == "verdict":
            status = "equivalent" if record.get("equivalent") else "DIFFERS"
            print(
                f"  verdict: {status} (replayed {record.get('replayed')}, "
                f"executed {record.get('executed')}, "
                f"engine {record.get('engine')})"
            )
        elif kind == "done":
            print(
                f"  done: flow={record.get('flow')} "
                f"luts={record.get('lut_count')} "
                f"clbs={record.get('clb_count')} "
                f"seconds={record.get('seconds')}"
            )
    if problems:
        print(
            f"\n[{len(problems)} problem(s); "
            "run with --check for a non-zero exit]"
        )
        for problem in problems:
            print(f"  {problem}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    return _run_flows(build(args.circuit), args)


def _cmd_blif(args: argparse.Namespace) -> int:
    return _run_flows(read_blif(args.path), args)


def _cmd_table(args: argparse.Namespace, table: int) -> int:
    classes = {"small": ["small"], "medium": ["small", "medium"],
               "all": ["small", "medium", "large"]}[args.classes]
    from .circuits import names

    if table == 1:
        paper, metric = TABLE1_CLB, "clb_count"
        flows = {
            "imodec-like": FLOWS["random"],
            "fgsyn-like": FLOWS["column"],
            "hyde": FLOWS["hyde"],
        }
        columns = {"imodec-like": "imodec", "fgsyn-like": "fgsyn",
                   "hyde": "hyde"}
    else:
        paper, metric = TABLE2_LUT, "lut_count"
        flows = {
            "no-resub": FLOWS["random"],
            "resub": FLOWS["resub"],
            "hyde": FLOWS["hyde"],
        }
        columns = {"no-resub": "no_resub", "resub": "resub", "hyde": "hyde"}

    selected = [
        n for n in sorted(paper)
        if n in CIRCUITS and CIRCUITS[n].size_class in classes
    ]
    record = run_experiment(
        f"table{table}", flows, selected, metric=metric, verbose=args.verbose
    )
    print(render_comparison(
        record, list(flows), paper, columns,
        f"Table {table} (measured vs paper)",
    ))
    return 0


def _add_governance_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-group wall-clock timeout; failures walk the "
        "degradation ladder (retry, per-output, structural)",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retries (with decaying budgets) per failed group",
    )
    p.add_argument(
        "--max-bdd-nodes", type=int, default=None, metavar="N",
        help="BDD node budget per decomposition manager",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash@0,hang@1:2' "
        "(kind@group[:times]; kinds: crash, hang, oversized_bdd, "
        "corrupt_blif; parent_kill@N stops the run after N groups)",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal each completed group to DIR so an interrupted run "
        "can be resumed (one journal file per circuit/flow/k)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint: replay completed groups from the "
        "journal instead of re-executing them (the spliced network is "
        "equivalence-checked against the source before the run counts "
        "as complete)",
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    """Check a mapped BLIF against its golden source.

    Default engine is the monolithic BDD check; ``--finegrain`` localizes
    any mismatch to the smallest wrong cone with a simulation-confirmed
    counterexample, and ``--repro-dir`` additionally shrinks each failing
    output's XOR miter into a minimal self-contained witness BLIF.
    ``--mutants N`` instead self-validates the checker: N single-point
    faults are injected into the mapped network and every one must be
    caught, localized and confirmed (or proven masked).
    """
    from .network import check_equivalence
    from .verify import (
        build_miter,
        finegrain_check,
        miter_satisfiable,
        mutation_failures,
        self_validate,
    )

    golden = read_blif(args.golden)
    mapped = read_blif(args.mapped)

    if args.mutants:
        report = self_validate(
            mapped,
            num_mutants=args.mutants,
            seed=args.seed,
            num_vectors=args.vectors,
        )
        print(report.summary())
        for problem in mutation_failures(report):
            print(f"  {problem}")
        return 0 if report.ok else 1

    if not args.finegrain:
        bad = check_equivalence(golden, mapped)
        if bad is None:
            print(f"equivalent: {args.mapped} matches {args.golden}")
            return 0
        print(f"NOT equivalent: output {bad!r} differs")
        return 1

    report = finegrain_check(
        golden, mapped, num_vectors=args.vectors, seed=args.seed
    )
    print(report.summary())
    if report.equivalent:
        return 0
    if args.repro_dir:
        from .testing import save_repro, shrink_network

        for cone in report.failing_cones:
            miter = build_miter(golden, mapped, cone.output)
            shrunk = shrink_network(miter, miter_satisfiable)
            path = save_repro(
                shrunk,
                args.repro_dir,
                f"{golden.name}_{cone.output}_miter",
                note=(
                    f"XOR miter of output {cone.output!r}: "
                    f"{args.mapped} vs {args.golden}; satisfiable "
                    "assignments are counterexamples.\n" + cone.describe()
                ),
            )
            print(f"shrunk witness for {cone.output!r}: {path}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="HYDE (DAC 1998) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list benchmark circuits")

    for name, help_text in [
        ("map", "map a registered benchmark circuit"),
        ("blif", "map a BLIF file"),
    ]:
        p = sub.add_parser(name, help=help_text)
        if name == "map":
            p.add_argument("circuit", choices=sorted(CIRCUITS))
        else:
            p.add_argument("path")
        p.add_argument("--flow", default="hyde",
                       choices=list(FLOWS) + ["all"])
        p.add_argument("-k", type=int, default=5, help="LUT input count")
        p.add_argument("--verify", default="bdd",
                       choices=["bdd", "sim", "none", "finegrain"])
        p.add_argument("--jobs", type=int, default=1,
                       help="decompose ingredient groups in N processes")
        p.add_argument("--fast-path", default="auto",
                       choices=["auto", "bitpack", "bdd"],
                       help="class-counting backend (packed tables vs "
                            "BDD walks; results are identical)")
        _add_governance_flags(p)
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a JSONL span trace of the run here")
        p.add_argument("-o", "--output", help="write mapped BLIF here")

    p = sub.add_parser(
        "stats", help="run a flow and print its perf-counter report"
    )
    p.add_argument("circuit", choices=sorted(CIRCUITS))
    p.add_argument("--flow", default="hyde", choices=list(FLOWS))
    p.add_argument("-k", type=int, default=5, help="LUT input count")
    p.add_argument("--verify", default="bdd",
                   choices=["bdd", "sim", "none", "finegrain"])
    p.add_argument("--jobs", type=int, default=1,
                   help="decompose ingredient groups in N processes")
    p.add_argument("--fast-path", default="auto",
                   choices=["auto", "bitpack", "bdd"],
                   help="class-counting backend (packed tables vs "
                        "BDD walks; results are identical)")
    _add_governance_flags(p)
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL span trace of the run here")

    p = sub.add_parser(
        "trace", help="render a JSONL trace file as a flame-style summary"
    )
    p.add_argument("path", help="trace file written by --trace")
    p.add_argument(
        "--check", action="store_true",
        help="validate instead of render: schema, coverage floor and "
        "merged worker counters; non-zero exit on failure",
    )
    p.add_argument(
        "--min-coverage", type=float, default=None, metavar="FRACTION",
        help="with --check: require children of each root span to cover "
        "at least this fraction of its wall time (e.g. 0.9)",
    )

    p = sub.add_parser(
        "verify",
        help="check a mapped BLIF against its golden source "
        "(fine-grained localization, mutation self-validation)",
    )
    p.add_argument("golden", help="golden (source) BLIF file")
    p.add_argument("mapped", help="mapped BLIF file to verify")
    p.add_argument(
        "--finegrain", action="store_true",
        help="localize any mismatch to the smallest wrong cone with a "
        "simulation-confirmed counterexample",
    )
    p.add_argument(
        "--mutants", type=int, default=0, metavar="N",
        help="instead of verifying, self-validate the checker on N "
        "single-point faults injected into the mapped network",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="seed for simulation vectors / mutant sampling")
    p.add_argument("--vectors", type=int, default=64,
                   help="random simulation width for signature pairing")
    p.add_argument(
        "--repro-dir", default=None, metavar="DIR",
        help="with --finegrain: shrink each failing output's XOR miter "
        "and save it here as a standalone witness BLIF",
    )

    p = sub.add_parser(
        "journal", help="render a checkpoint journal written by --checkpoint"
    )
    p.add_argument("path", help="journal file written by --checkpoint")
    p.add_argument(
        "--check", action="store_true",
        help="validate instead of render: schema, record hashes, "
        "fragment parses and the final equivalence verdict; non-zero "
        "exit on failure",
    )

    for table in (1, 2):
        p = sub.add_parser(f"table{table}",
                           help=f"regenerate the paper's Table {table}")
        p.add_argument("--classes", default="medium",
                       choices=["small", "medium", "all"])
        p.add_argument("--verbose", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "circuits":
        return _cmd_circuits(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "blif":
        return _cmd_blif(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "journal":
        return _cmd_journal(args)
    if args.command == "table1":
        return _cmd_table(args, 1)
    if args.command == "table2":
        return _cmd_table(args, 2)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
