"""HYDE reproduction: compatible class encoding in hyper-function
decomposition for LUT-based FPGA synthesis (Jiang, Jou, Huang — DAC 1998).

Layering (each package documented in DESIGN.md):

* :mod:`repro.bdd` — from-scratch ROBDD engine.
* :mod:`repro.boolfunc` — truth tables, BDD-backed functions, don't cares.
* :mod:`repro.network` — Boolean networks, BLIF/PLA I/O, simulation,
  equivalence checking.
* :mod:`repro.decompose` — Roth-Karp decomposition with the paper's
  compatible class encoding (Section 3).
* :mod:`repro.hyper` — hyper-function decomposition (Section 4).
* :mod:`repro.mapping` — the HYDE flow, baselines, LUT/CLB costing.
* :mod:`repro.circuits` — benchmark circuits and the paper's examples.
* :mod:`repro.harness` — experiment runner and paper-data comparison.

Quick start::

    from repro.circuits import build
    from repro.mapping import hyde_map

    result = hyde_map(build("rd84"), k=5)
    print(result.lut_count, result.clb_count)
"""

from .bdd import BddManager
from .boolfunc import BoolFunction, FunctionSpace, TruthTable
from .decompose import DecompositionOptions, decompose_step, decompose_to_network
from .hyper import build_hyper_function, decompose_hyper_function
from .mapping import (
    MapResult,
    hyde_map,
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
)
from .network import Network, check_equivalence

__version__ = "1.0.0"

__all__ = [
    "BddManager",
    "TruthTable",
    "BoolFunction",
    "FunctionSpace",
    "Network",
    "check_equivalence",
    "DecompositionOptions",
    "decompose_step",
    "decompose_to_network",
    "build_hyper_function",
    "decompose_hyper_function",
    "MapResult",
    "hyde_map",
    "map_per_output",
    "map_per_output_resub",
    "map_column_encoding",
    "map_shannon",
    "__version__",
]
