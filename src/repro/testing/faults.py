"""Deterministic fault injection for the parallel mapping flow.

The fault-tolerance layer (budgets, timeouts, retries, the degradation
ladder in :func:`repro.mapping.parallel.run_group_tasks`) is only worth
having if every recovery path can be exercised on demand.  This module
provides seeded fault points that a :class:`~repro.mapping.parallel.GroupTask`
carries across the process boundary:

``crash``
    The worker raises :class:`InjectedFault` before doing any work —
    models a worker dying mid-decomposition.
``hang``
    The worker sleeps in small increments until either the parent's
    wall-clock timeout kills it (pool mode) or the manager's cooperative
    time budget expires (in-process mode) — models a BDD blow-up that
    allocates nothing but never terminates.
``oversized_bdd``
    The worker's manager is armed with an implausibly small node budget,
    so the *real* decomposition path raises
    :class:`~repro.bdd.BddBudgetExceeded` — models a genuine BDD
    explosion caught by the resource governor.
``corrupt_blif``
    The worker completes but its BLIF reply is sabotaged (seed-dependent:
    either a truth-table bit flip, caught by fragment verification, or a
    truncation, caught by the parse step) — models a torn or garbled
    result crossing the serialization boundary.

Faults fire on the first ``times`` attempts of a task and then stop, so
bounded retries deterministically recover from transient kinds while
persistent kinds (``times`` large) push the ladder all the way down.

These are *worker*-level faults.  Their service-layer siblings — daemon
kills, torn socket writes, slow-loris clients, SQLite lock contention,
injected disk failures — live in :mod:`repro.testing.service_chaos`
(plus the daemon's request-level ``chaos`` field and the store's
``REPRO_STORE_CHAOS`` budgets), and are scripted end to end by
``tools/chaos_smoke.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "InjectedFault"]

#: Every fault point the injector knows how to trigger.
FAULT_KINDS = ("crash", "hang", "oversized_bdd", "corrupt_blif")

#: Node budget armed by ``oversized_bdd`` — small enough that any real
#: decomposition trips it immediately, large enough for the terminals
#: and a literal or two so the failure comes from *growth*, not setup.
OVERSIZED_BDD_NODE_BUDGET = 16


class InjectedFault(RuntimeError):
    """Raised by a triggered ``crash`` (or an unkilled ``hang``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One seeded fault point attached to one group task.

    ``times`` is the number of *attempts* to sabotage: with ``times=1``
    the first try fails and the first retry succeeds; a large ``times``
    makes the fault persistent so the flow must fall further down the
    degradation ladder.

    ``strategy`` narrows the fault to one portfolio rung: a group task
    racing under the portfolio expands into per-strategy variants, and
    a spec with ``strategy="exact"`` rides only on the matching variant
    (others run clean).  ``None`` sabotages every variant — and is the
    only sensible value outside portfolio mode.
    """

    kind: str
    times: int = 1
    seed: int = 0
    hang_seconds: float = 300.0
    strategy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def fires(self, attempt: int) -> bool:
        """True when this spec sabotages the given (0-based) attempt."""
        return attempt < self.times


@dataclass
class FaultPlan:
    """Fault specs keyed by group index (``GroupTask.gi``).

    ``parent_kill_after`` is a *parent-side* fault: the dispatch loop in
    :func:`repro.mapping.parallel.run_group_tasks` raises
    :class:`~repro.runstate.ShutdownRequested` after that many groups
    have landed (and been journaled), exercising the exact graceful-
    shutdown path a real SIGTERM takes — deterministically, with no
    signal-delivery race.  Interrupted-then-resumed tests are built on
    it.
    """

    specs: Dict[int, FaultSpec] = field(default_factory=dict)
    parent_kill_after: Optional[int] = None

    def spec_for(self, gi: int) -> Optional[FaultSpec]:
        return self.specs.get(gi)

    def __bool__(self) -> bool:
        return bool(self.specs) or self.parent_kill_after is not None

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI spec like ``crash@0,hang@1,corrupt_blif@2:3``.

        Each comma-separated entry is ``kind@group_index`` with an
        optional ``.strategy`` portfolio-rung target (e.g.
        ``hang@0.exact``) and an optional ``:times`` suffix (default 1).
        The special entry ``parent_kill@N`` stops the parent-side loop
        after N completed groups instead of sabotaging a worker.
        """
        specs: Dict[int, FaultSpec] = {}
        parent_kill_after: Optional[int] = None
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, _, target = entry.partition("@")
                times = 1
                strategy: Optional[str] = None
                if ":" in target:
                    target, _, times_text = target.partition(":")
                    times = int(times_text)
                if "." in target:
                    target, _, strategy = target.partition(".")
                    strategy = strategy or None
                gi = int(target)
            except ValueError as exc:
                raise ValueError(
                    f"bad fault entry {entry!r} "
                    "(want kind@group[.strategy][:times])"
                ) from exc
            if kind == "parent_kill":
                if gi < 1:
                    raise ValueError("parent_kill@N needs N >= 1")
                parent_kill_after = gi
                continue
            specs[gi] = FaultSpec(
                kind=kind, times=times, seed=gi, strategy=strategy
            )
        return cls(specs, parent_kill_after=parent_kill_after)


# --------------------------------------------------------------------- #
# Trigger hooks (called from repro.mapping.parallel's worker body)
# --------------------------------------------------------------------- #


def before_decompose(spec: Optional[FaultSpec], manager, attempt: int) -> None:
    """Fire pre-compute fault points (crash / hang / oversized_bdd)."""
    if spec is None or not spec.fires(attempt):
        return
    if spec.kind == "crash":
        raise InjectedFault(
            f"injected worker crash (attempt {attempt}, seed {spec.seed})"
        )
    if spec.kind == "hang":
        _hang(manager, spec.hang_seconds)
    elif spec.kind == "oversized_bdd":
        # Arm a tiny node budget so the genuine decomposition path blows
        # it — this exercises the real BddBudgetExceeded machinery.
        manager.set_budget(max_nodes=OVERSIZED_BDD_NODE_BUDGET)


def _hang(manager, seconds: float) -> None:
    """Sleep until killed (pool timeout) or budget-cancelled (in-process).

    The loop polls the manager's cooperative budget so an in-process
    retry with a decayed time budget escapes deterministically; in pool
    mode the parent's per-task timeout gives up on us and the pool exit
    terminates the process.
    """
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        manager.check_budget()
        time.sleep(0.02)
    raise InjectedFault(f"injected hang survived {seconds}s without being killed")


def after_decompose(
    spec: Optional[FaultSpec], blif_text: str, attempt: int
) -> str:
    """Fire the post-compute fault point (corrupt_blif)."""
    if spec is None or spec.kind != "corrupt_blif" or not spec.fires(attempt):
        return blif_text
    return corrupt_blif_text(blif_text, spec.seed)


def corrupt_blif_text(text: str, seed: int) -> str:
    """Deterministically sabotage a BLIF reply.

    Even seeds flip the output bit of the first truth-table cube — for a
    single-cube cover the reply stays parseable but computes the wrong
    function (only fragment *verification* catches it), for a multi-cube
    cover the mixed polarity fails the parse.  Odd seeds truncate the
    file and splice in an unsupported construct so the parse itself
    always fails.  Every variant is caught by the parent's reply
    validation, just at different depths.
    """
    lines = text.splitlines()
    if seed % 2 == 0:
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not stripped or stripped.startswith("."):
                continue
            # A cube line "in-pattern out-bit": flip the output bit.
            head, _, out_bit = stripped.rpartition(" ")
            if out_bit in ("0", "1") and head:
                lines[i] = f"{head} {'0' if out_bit == '1' else '1'}"
                return "\n".join(lines) + "\n"
        # No cube line found (e.g. all-constant fragment): fall through
        # to the syntactic corruption so the fault still fires.
    keep = max(1, (2 * len(lines)) // 3)
    return "\n".join(lines[:keep]) + "\n.latch torn_reply q 0\n.end\n"
