"""Service-layer fault injection for the chaos harness.

:mod:`repro.testing.faults` injects faults *inside workers* (crash,
hang, oversized BDDs, corrupted replies).  This module injects them at
the layers PR 7 added around the workers — the socket, the SQLite
store, the daemon process — so ``tools/chaos_smoke.py`` can script a
schedule of real service-level failures:

* :func:`slow_loris` — a client that connects and dribbles (or
  withholds) its request bytes, the classic handler-thread-pinning
  attack the daemon's ``request_timeout`` must bound.
* :func:`hold_store_lock` — takes SQLite's write lock on a store file
  (``BEGIN IMMEDIATE``) and sits on it, forcing ``database is locked``
  pressure on a live daemon's cache writes.
* :func:`kill_process` — SIGKILL a daemon mid-stream (pid from its
  ``--info`` file); with ``--supervise`` this is the
  crash-and-self-heal drill.
* :class:`ChaosJournal` — an append-only JSONL log of everything the
  harness did and observed; uploaded by CI on failure so a red chaos
  run is diagnosable from the artifact alone.

Wire-level torn writes and worker faults are *daemon-side* injections:
request fields ``chaos`` (``torn_result``, ``torn_fragment``,
``drop_before_result``, ``close_early``) and ``faults``
(``FaultPlan.parse`` specs); store-side disk faults are the
``REPRO_STORE_CHAOS`` budgets (``put_error:N,get_error:N``).  This
module is the client-side half.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sqlite3
import threading
import time
from typing import Dict, Optional

__all__ = [
    "ChaosJournal",
    "slow_loris",
    "hold_store_lock",
    "kill_process",
    "read_info",
    "wait_for_info",
]


class ChaosJournal:
    """Append-only JSONL event log for a chaos run (thread-safe)."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._start = time.monotonic()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Truncate: one journal per run.
        with open(self.path, "w", encoding="utf-8"):
            pass

    def log(self, kind: str, **fields) -> None:
        record = {
            "t": round(time.monotonic() - self._start, 4),
            "kind": kind,
            **fields,
        }
        line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")


def slow_loris(
    host: str,
    port: int,
    duration: float = 5.0,
    interval: float = 0.25,
    payload: bytes = b'{"op": "ping"',
) -> str:
    """Dribble a never-finished request line at the daemon.

    Sends one byte of ``payload`` (which deliberately has no trailing
    newline) every ``interval`` seconds for up to ``duration`` seconds.
    Returns what ended the attack: ``"closed"`` (the daemon hung up —
    its ``request_timeout`` worked), ``"refused"`` (nothing listening),
    or ``"survived"`` (the connection was still open at the end — the
    daemon has no slow-loris defense).
    """
    try:
        sock = socket.create_connection((host, port), timeout=5.0)
    except OSError:
        return "refused"
    deadline = time.monotonic() + duration
    i = 0
    try:
        with sock:
            sock.settimeout(interval)
            while time.monotonic() < deadline:
                try:
                    sock.sendall(payload[i % len(payload) : i % len(payload) + 1])
                    i += 1
                except OSError:
                    return "closed"
                # A closed peer shows up as readable EOF, not always as
                # a send error (the first send after FIN succeeds).
                try:
                    if sock.recv(4096) == b"":
                        return "closed"
                except socket.timeout:
                    pass
                except OSError:
                    return "closed"
        return "survived"
    except OSError:
        return "closed"


def hold_store_lock(
    path: str,
    seconds: float,
    acquired: Optional[threading.Event] = None,
) -> bool:
    """Hold SQLite's write lock on ``path`` for ``seconds``.

    ``BEGIN IMMEDIATE`` takes the writer lock immediately (WAL readers
    are unaffected — exactly the contention shape of a second daemon on
    the same store).  ``acquired`` is set once the lock is held, so the
    caller can sequence traffic against it.  Returns False if the lock
    could not be taken (someone else holds it).
    """
    try:
        conn = sqlite3.connect(path, timeout=1.0)
    except sqlite3.Error:
        return False
    try:
        try:
            conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError:
            return False
        if acquired is not None:
            acquired.set()
        time.sleep(seconds)
        conn.rollback()
        return True
    finally:
        conn.close()


def kill_process(pid: int, sig: int = signal.SIGKILL) -> bool:
    """Deliver ``sig`` to ``pid``; False if the process is already gone."""
    try:
        os.kill(pid, sig)
        return True
    except ProcessLookupError:
        return False


def read_info(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def wait_for_info(
    path: str,
    timeout: float = 30.0,
    not_pid: Optional[int] = None,
) -> Dict[str, object]:
    """Wait for a daemon discovery file (optionally a *new* daemon).

    ``not_pid`` waits until the published pid differs — the way the
    harness waits out a supervisor restart after killing a child.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            info = read_info(path)
            if not_pid is None or info.get("pid") != not_pid:
                return info
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise TimeoutError(
        f"no {'fresh ' if not_pid is not None else ''}daemon info at {path} "
        f"within {timeout:g}s"
    )
