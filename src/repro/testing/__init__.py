"""Test-support machinery: deterministic fault injection and the
failing-case shrinker.

Everything in this package is production code in the sense that the CLI
exposes it (``--inject-faults``) and the fault-tolerance layer is
validated through it — but nothing in the mapping flows *depends* on it:
:mod:`repro.mapping.parallel` imports it lazily and only when a task
actually carries an injection spec.
"""

from .faults import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault
from .shrink import save_repro, shrink_network

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "shrink_network",
    "save_repro",
]
