"""Test-support machinery: deterministic fault injection and the
failing-case shrinker.

Everything in this package is production code in the sense that the CLI
exposes it (``--inject-faults``) and the fault-tolerance layer is
validated through it — but nothing in the mapping flows *depends* on it:
:mod:`repro.mapping.parallel` imports it lazily and only when a task
actually carries an injection spec.
"""

from .faults import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault
from .service_chaos import (
    ChaosJournal,
    hold_store_lock,
    kill_process,
    read_info,
    slow_loris,
    wait_for_info,
)
from .shrink import save_repro, shrink_network

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ChaosJournal",
    "hold_store_lock",
    "kill_process",
    "read_info",
    "slow_loris",
    "wait_for_info",
    "shrink_network",
    "save_repro",
]
