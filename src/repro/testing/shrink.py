"""Greedy shrinker for failing mapper inputs.

When a differential test finds a source network on which a mapping flow
crashes or produces a non-equivalent result, the raw witness is usually
far larger than the actual trigger.  :func:`shrink_network` minimizes it
the way property-based testing shrinkers do: apply the cheapest
structure-removing transformations one at a time, keep a candidate only
if the caller's ``predicate`` still reports the failure, and repeat to a
fixpoint.  The passes, in order of how much they remove:

1. **Drop outputs** — re-extract the cone of every output but one.
2. **Constant-propagate inputs** — fix one primary input to 0/1 and
   sweep (removes the input and everything only it drove).
3. **Constant-replace internal nodes** — replace one node's function
   with a constant and sweep.

The predicate sees only candidates that are structurally valid networks
with at least one input and one output, so flows can be run on them
directly.  :func:`save_repro` writes the minimized witness as BLIF under
``tests/_repros/`` so a failing CI run leaves a ready-to-replay case.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from ..boolfunc import TruthTable
from ..network import Network, extract_cone, propagate_constant_inputs, sweep, to_blif
from ..runstate.atomic import atomic_write

__all__ = ["shrink_network", "save_repro"]

Predicate = Callable[[Network], bool]


def _size(net: Network) -> int:
    return net.num_nodes + len(net.inputs) + len(net.outputs)


def _restore_output_order(candidate: Network, reference: Network) -> None:
    """Force ``candidate``'s outputs into ``reference``'s relative order.

    Shrink passes rebuild networks output-by-output; the surviving
    outputs must keep the source network's relative order or the saved
    witness would fail the replay validator (output order is part of the
    BLIF interface).  Enforced explicitly here rather than trusted to
    each pass's iteration order.
    """
    surviving = set(candidate.output_names)
    order = [o for o in reference.output_names if o in surviving]
    order += [o for o in candidate.output_names if o not in set(order)]
    if order != candidate.output_names:
        candidate.reorder_outputs(order)


def _restore_input_order(candidate: Network, reference: Network) -> None:
    """Force ``candidate``'s PIs into ``reference``'s relative order.

    Same contract as :func:`_restore_output_order`, for the ``.inputs``
    declaration: shrink passes that rebuild the PI list (dropping
    outputs of a multi-output repro, constant-propagating inputs) must
    leave surviving PIs in the source's relative order, or the shrunk
    witness replays with a permuted input interface — the exact oracle
    and ``repro verify`` both flatten cones by PI declaration order, so
    a permutation changes the truth table they see.  Enforced
    explicitly here rather than trusted to each pass's iteration order.
    """
    surviving = set(candidate.inputs)
    order = [pi for pi in reference.inputs if pi in surviving]
    order += [pi for pi in candidate.inputs if pi not in set(order)]
    if order != candidate.inputs:
        candidate.reorder_inputs(order)


def _constant_node_variant(
    net: Network, target: str, value: int
) -> Optional[Network]:
    """A copy of ``net`` with ``target`` replaced by a constant, swept."""
    trial = Network(net.name)
    for pi in net.inputs:
        trial.add_input(pi)
    for name in net.topological_order():
        node = net.node(name)
        if name == target:
            trial.add_constant(name, value)
        else:
            trial.add_node(name, list(node.fanins), node.table)
    for out, driver in net.outputs:
        trial.add_output(driver, out)
    sweep(trial)
    return trial


def shrink_network(
    net: Network,
    predicate: Predicate,
    max_rounds: int = 16,
) -> Network:
    """Greedily minimize ``net`` while ``predicate`` keeps returning True.

    ``predicate`` must return True on ``net`` itself (the caller asserts
    the failure before shrinking); candidates on which it raises are
    treated as not preserving the failure and discarded — the predicate
    owns the decision of whether a crash counts as "still failing".
    """
    if not predicate(net):
        raise ValueError("predicate does not hold on the network to shrink")

    def holds(candidate: Network) -> bool:
        if not candidate.inputs or not candidate.outputs:
            return False
        if _size(candidate) >= _size(current):
            return False
        _restore_output_order(candidate, net)
        _restore_input_order(candidate, net)
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    current = net
    for _ in range(max_rounds):
        improved = False

        # Pass 1: drop outputs one at a time.
        for out in list(current.output_names):
            if len(current.output_names) <= 1:
                break
            keep = [o for o in current.output_names if o != out]
            trial = extract_cone(current, keep, name=f"{net.name}_shrunk")
            if holds(trial):
                current = trial
                improved = True

        # Pass 2: fix primary inputs to constants.
        for pi in list(current.inputs):
            if len(current.inputs) <= 1:
                break
            done = False
            for value in (0, 1):
                trial = propagate_constant_inputs(
                    current, {pi: value}, new_name=f"{net.name}_shrunk"
                )
                if holds(trial):
                    current = trial
                    improved = True
                    done = True
                    break
            if done:
                continue

        # Pass 3: replace internal nodes with constants.
        for name in current.node_names():
            if current.is_input(name) or not current.has_signal(name):
                continue
            if current.node(name).table.num_inputs == 0:
                continue
            for value in (0, 1):
                trial = _constant_node_variant(current, name, value)
                if trial is not None and holds(trial):
                    current = trial
                    improved = True
                    break

        if not improved:
            break
    return current


def save_repro(
    net: Network,
    directory: str,
    name: str,
    note: str = "",
) -> str:
    """Write a shrunk witness as ``<directory>/<name>.blif`` and return its path.

    ``note`` (e.g. the flow and seed that failed) is prepended as a BLIF
    comment so the file is self-describing.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.blif")
    # One atomic write (note header + body together): a crash while
    # saving a repro never leaves a half-written witness to chase.
    with atomic_write(path) as handle:
        for line in note.splitlines():
            handle.write(f"# {line}\n")
        handle.write(to_blif(net))
    return path
