"""Graceful shutdown: turn SIGINT/SIGTERM into a clean, journaled stop.

A long MCNC sweep killed by a scheduler (SIGTERM) or an operator
(ctrl-C) should not die mid-splice with a truncated journal: it should
stop dispatching new group tasks, terminate outstanding workers, flush
the run journal and surface a partial report marked ``interrupted``.

The mechanism is deliberately exception-shaped: the installed handler
raises :class:`ShutdownRequested` in the main thread, which unwinds
whatever blocking call the dispatch loop was in (``AsyncResult.get``,
an in-process decomposition) through the ordinary ``finally`` chain.
:class:`ShutdownRequested` derives from :class:`BaseException` — like
``KeyboardInterrupt`` — precisely so the fault-tolerance ladder's broad
``except Exception`` recovery arms cannot mistake an operator's stop
request for a worker crash and "recover" from it.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Optional, Tuple

__all__ = ["ShutdownRequested", "RunInterrupted", "graceful_shutdown"]


class ShutdownRequested(BaseException):
    """Raised in the main thread when a shutdown signal arrives."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RunInterrupted(RuntimeError):
    """A mapping run stopped early on a shutdown request.

    Raised by the flows *after* the journal recorded the interruption,
    so the caller (CLI, harness) knows the checkpoint is consistent and
    a re-run with ``resume`` will pick up where this one stopped.
    """

    def __init__(
        self,
        reason: str,
        completed: int,
        total: int,
        journal_path: Optional[str] = None,
    ):
        super().__init__(
            f"run interrupted ({reason}) after {completed}/{total} groups"
            + (f"; resume from {journal_path}" if journal_path else "")
        )
        self.reason = reason
        self.completed = completed
        self.total = total
        self.journal_path = journal_path


_DEFAULT_SIGNALS: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)


@contextlib.contextmanager
def graceful_shutdown(
    signals: Tuple[int, ...] = _DEFAULT_SIGNALS
) -> Iterator[None]:
    """Install raise-on-signal handlers for the duration of the body.

    Only the main thread may install signal handlers; anywhere else this
    is a no-op (the run then keeps the process default — no worse than
    before).  The previous handlers are restored on exit, and a signal
    delivered *while unwinding* falls back to them rather than raising a
    second :class:`ShutdownRequested` mid-cleanup: the handler disarms
    itself after the first delivery.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    fired = {"done": False}

    def _handler(signum, frame):  # noqa: ARG001 - signal API
        if fired["done"]:  # second delivery: let cleanup finish
            return
        fired["done"] = True
        raise ShutdownRequested(signal.Signals(signum).name)

    previous = {}
    for signum in signals:
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signum, old)
