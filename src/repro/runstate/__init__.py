"""Crash-safe run state: durable journals, graceful shutdown, atomic
artifacts.

Three cooperating pieces make long mapping runs killable at any instant
without losing finished work or leaving torn files:

* :mod:`repro.runstate.journal` — a WAL-style JSONL run journal with
  content-addressed task keys; ``resume`` replays completed groups and
  rejects stale or option-mismatched records by key.
* :mod:`repro.runstate.shutdown` — SIGINT/SIGTERM handlers that unwind
  the dispatch loop via :class:`ShutdownRequested`, letting it terminate
  workers, flush the journal and report ``interrupted`` instead of dying
  mid-splice.
* :mod:`repro.runstate.atomic` — :func:`atomic_write`, the tmp-file +
  ``os.replace`` + fsync writer every artifact producer goes through.
"""

from .atomic import atomic_write, fsync_directory
from .journal import (
    JOURNAL_VERSION,
    JournalError,
    RunJournal,
    journal_path,
    load_journal,
    open_journal,
    task_key,
    validate_journal,
)
from .shutdown import RunInterrupted, ShutdownRequested, graceful_shutdown

__all__ = [
    "atomic_write",
    "fsync_directory",
    "JOURNAL_VERSION",
    "JournalError",
    "RunJournal",
    "journal_path",
    "load_journal",
    "open_journal",
    "task_key",
    "validate_journal",
    "RunInterrupted",
    "ShutdownRequested",
    "graceful_shutdown",
]
