"""Atomic file writes: no crash ever leaves a half-written artifact.

Every artifact the reproduction persists — mapped BLIF/PLA output,
JSONL traces, harness records, benchmark trajectories, minimized repro
witnesses — used to be written with a plain ``open(path, "w")``, which
truncates the *old* content before the new content exists.  A crash (or
``kill -9``) between the truncate and the final ``write`` leaves a torn
file that silently poisons the next consumer.

:func:`atomic_write` is the one shared fix: serialize into a temporary
file in the *same directory* (so the final rename cannot cross a
filesystem boundary), ``fsync`` it, then :func:`os.replace` it over the
destination.  POSIX guarantees the replace is atomic, so a reader — or a
resumed run — only ever observes the complete old content or the
complete new content, never a prefix.  Any exception while serializing
(including ``KeyboardInterrupt``) discards the temporary file and leaves
the previous artifact untouched.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator, Union

__all__ = ["atomic_write", "fsync_directory"]


def fsync_directory(directory: str) -> None:
    """Flush a directory entry to disk (best effort, POSIX only).

    After :func:`os.replace` the *file* contents are durable but the
    directory entry pointing at them may not be; fsyncing the directory
    closes that window.  Platforms that cannot open directories simply
    skip this — the rename is still atomic, just not yet durable.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(
    path: Union[str, "os.PathLike[str]"],
    mode: str = "w",
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Iterator[IO]:
    """Context manager yielding a handle whose content replaces ``path``
    atomically on a clean exit.

    The handle writes to a temporary file next to ``path``; on normal
    exit the data is flushed, fsynced (unless ``fsync=False``; tests and
    throwaway artifacts may skip the physical flush) and renamed over
    the destination in one atomic :func:`os.replace`.  If the body
    raises — a serializer choking halfway through, an injected fault, a
    signal — the temporary file is deleted and the previous content of
    ``path`` survives byte for byte.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write needs a plain write mode, got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory or ".",
        prefix=f".{os.path.basename(path)}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(
            fd, mode, encoding=None if "b" in mode else encoding
        ) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
