"""WAL-style run journal: durable checkpoint/resume for mapping runs.

A journal is a JSONL file the parent process appends to as a run makes
progress — one record per completed ingredient group, plus run metadata,
interruption events and the final verification verdict.  Appends are
flushed and fsynced record by record (write-ahead-log discipline), so a
crash at any instant loses at most the record being written; the loader
tolerates exactly that one torn trailing line.

Record schema (version 1, one JSON object per line, every record carries
a truncated-SHA256 integrity hash ``h`` over its own canonical body):

* ``meta`` — first line; binds the journal to a run identity::

      {"type": "meta", "version": 1, "circuit": "misex1",
       "flow": "hyde", "k": 5, "ts": ..., "h": "..."}

* ``group`` — one completed group task::

      {"type": "group", "key": "<task key>", "gi": 0,
       "group": ["f0", "f1"], "mode": "hyper", "resolution": null,
       "seconds": 0.41, "blif": ".model ...", "info": {...},
       "ts": ..., "h": "..."}

  ``key`` is the **content-addressed task key**: SHA256 over the cone's
  BLIF text, every :class:`~repro.decompose.DecompositionOptions` field
  and the task's policy-relevant attributes (mode, ingredient policy,
  PPI placement, per-output fallback).  A re-run only replays a record
  whose key it re-derives identically — change the options, the cone or
  the policy and the key changes, forcing re-execution instead of a
  stale splice.

* ``event`` — one-shot facts, notably ``{"kind": "interrupted",
  "reason": "SIGTERM", "completed": N, "total": M}``.

* ``verdict`` — the resume verification gate's outcome::

      {"type": "verdict", "equivalent": true, "replayed": 2,
       "executed": 1, "engine": "bdd", ...}

* ``done`` — the run finished end to end; carries the headline metrics
  so sweeps (harness runner) can skip the circuit entirely on resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "RunJournal",
    "task_key",
    "journal_path",
    "open_journal",
    "load_journal",
    "validate_journal",
]

JOURNAL_VERSION = 1

#: Length of the hex task key (SHA256 truncated; 128 bits is plenty).
KEY_HEX_LEN = 32

#: Length of the per-record integrity hash.
RECORD_HASH_LEN = 16

#: Test/CI hook: seconds to sleep after journaling each group, so an
#: external SIGTERM can deterministically land mid-run (resume smoke).
DELAY_ENV = "REPRO_JOURNAL_DELAY"


class JournalError(ValueError):
    """A journal could not be opened or does not match the run."""


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _record_hash(record: Dict[str, object]) -> str:
    body = {k: v for k, v in record.items() if k != "h"}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()[
        :RECORD_HASH_LEN
    ]


def task_key(task) -> str:
    """Content-addressed identity of one group task.

    ``task`` is anything shaped like a
    :class:`~repro.mapping.parallel.GroupTask` (duck-typed to avoid a
    package cycle).  The key covers everything that determines the
    fragment a deterministic worker would produce: the cone BLIF, the
    ordered output group, the full ``DecompositionOptions`` and the
    group-level policy knobs.  Deliberately *excluded*: ``gi`` (a
    position, not content), ``attempt``/``inject``/``trace`` (run-time
    machinery that must not split the cache).
    """
    payload = {
        "blif": task.blif_text,
        "group": list(task.group),
        "mode": task.mode,
        "base_name": task.base_name,
        "ingredient_policy": task.ingredient_policy,
        "ppi_placement": task.ppi_placement,
        "fallback_per_output": task.fallback_per_output,
        "options": dataclasses.asdict(task.options),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[
        :KEY_HEX_LEN
    ]


def journal_path(
    directory: Union[str, "os.PathLike[str]"], circuit: str, flow: str, k: int
) -> str:
    """The canonical journal file for one (circuit, flow, k) run."""

    def safe(text: str) -> str:
        return "".join(c if c.isalnum() or c in "-_." else "_" for c in text)

    return os.path.join(
        os.fspath(directory), f"{safe(circuit)}.{safe(flow)}.k{k}.journal.jsonl"
    )


def load_journal(path: str) -> Tuple[List[Dict[str, object]], List[str]]:
    """Read a journal, tolerating a torn trailing line.

    Returns ``(records, problems)``.  A JSON-undecodable *last* line is
    the expected signature of a crash mid-append and is dropped with a
    note; garbage anywhere else, or a record whose integrity hash does
    not match, is reported and skipped — a skipped group record simply
    re-executes on resume, so corruption degrades to recomputation,
    never to a wrong splice.
    """
    records: List[Dict[str, object]] = []
    problems: List[str] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    last_content = None
    for number, line in enumerate(lines, 1):
        if line.strip():
            last_content = number
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == last_content:
                problems.append(
                    f"line {number}: torn trailing record dropped "
                    "(crash mid-append)"
                )
            else:
                problems.append(f"line {number}: not valid JSON, skipped")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {number}: record is not an object")
            continue
        if record.get("h") != _record_hash(record):
            problems.append(
                f"line {number}: integrity hash mismatch, record skipped"
            )
            continue
        records.append(record)
    return records, problems


def validate_journal(
    records: Sequence[Dict[str, object]], check_fragments: bool = True
) -> List[str]:
    """Schema-check a journal's records; empty return means valid.

    With ``check_fragments`` every group record's BLIF payload is also
    parsed — a journal whose fragments cannot be spliced is flagged here
    rather than at resume time.
    """
    problems: List[str] = []
    metas = [r for r in records if r.get("type") == "meta"]
    if len(metas) != 1:
        problems.append(f"expected exactly one meta record, found {len(metas)}")
    else:
        if records and records[0].get("type") != "meta":
            problems.append("meta record is not the first record")
        version = metas[0].get("version")
        if version != JOURNAL_VERSION:
            problems.append(
                f"unsupported journal version {version!r} "
                f"(expected {JOURNAL_VERSION})"
            )
    for index, record in enumerate(records):
        kind = record.get("type")
        if kind == "meta":
            continue
        if kind == "group":
            missing = [
                field
                for field in ("key", "gi", "group", "mode", "blif", "seconds")
                if field not in record
            ]
            if missing:
                problems.append(f"record {index}: missing keys {missing}")
                continue
            key = record["key"]
            if (
                not isinstance(key, str)
                or len(key) != KEY_HEX_LEN
                or any(c not in "0123456789abcdef" for c in key)
            ):
                problems.append(f"record {index}: malformed task key {key!r}")
            group = record["group"]
            if not isinstance(group, list) or not all(
                isinstance(out, str) for out in group
            ):
                problems.append(f"record {index}: group must be a name list")
                continue
            if check_fragments:
                from ..network.blif import parse_blif  # lazy: package cycle

                try:
                    fragment = parse_blif(record["blif"])
                except ValueError as exc:
                    problems.append(
                        f"record {index}: fragment BLIF rejected: {exc}"
                    )
                    continue
                if sorted(fragment.output_names) != sorted(group):
                    problems.append(
                        f"record {index}: fragment outputs "
                        f"{sorted(fragment.output_names)} do not match "
                        f"journaled group {sorted(group)}"
                    )
        elif kind == "event":
            if "kind" not in record:
                problems.append(f"record {index}: event without kind")
        elif kind == "verdict":
            if not isinstance(record.get("equivalent"), bool):
                problems.append(
                    f"record {index}: verdict.equivalent must be a bool"
                )
        elif kind == "done":
            if "seconds" not in record:
                problems.append(f"record {index}: done without seconds")
        else:
            problems.append(f"record {index}: unknown type {kind!r}")
    return problems


class RunJournal:
    """Append-only run journal bound to one (circuit, flow, k) identity.

    ``resume=True`` loads an existing file (if any) and serves completed
    group records by task key; ``resume=False`` starts fresh,
    atomically replacing whatever was there.  A resumed journal whose
    ``meta`` disagrees with the requested identity raises
    :class:`JournalError` — stale checkpoints are rejected loudly, never
    silently reused (the per-record task keys enforce the same contract
    one level deeper).
    """

    def __init__(
        self,
        path: str,
        circuit: str,
        flow: str,
        k: int,
        resume: bool = False,
    ):
        self.path = path
        self.circuit = circuit
        self.flow = flow
        self.k = k
        self.load_problems: List[str] = []
        self._groups: Dict[str, Dict[str, object]] = {}
        self._records: List[Dict[str, object]] = []
        identity = {"circuit": circuit, "flow": flow, "k": k}
        if resume and os.path.exists(path):
            records, self.load_problems = load_journal(path)
            metas = [r for r in records if r.get("type") == "meta"]
            if not metas:
                raise JournalError(
                    f"{path}: no usable meta record; refusing to resume"
                )
            meta = metas[0]
            mismatched = {
                field: (meta.get(field), value)
                for field, value in identity.items()
                if meta.get(field) != value
            }
            if mismatched:
                raise JournalError(
                    f"{path}: journal belongs to a different run: "
                    + ", ".join(
                        f"{field}={have!r} (want {want!r})"
                        for field, (have, want) in sorted(mismatched.items())
                    )
                )
            self._records = records
            for record in records:
                if record.get("type") == "group":
                    self._groups[str(record["key"])] = record
        else:
            from .atomic import atomic_write

            meta: Dict[str, object] = {
                "type": "meta",
                "version": JOURNAL_VERSION,
                "ts": round(time.time(), 3),
                **identity,
            }
            meta["h"] = _record_hash(meta)
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with atomic_write(path) as handle:
                handle.write(_canonical(meta) + "\n")
            self._records = [meta]

    # ----------------------------------------------------------------- #
    # Reading
    # ----------------------------------------------------------------- #

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def lookup(self, key: str) -> Optional[Dict[str, object]]:
        """The completed group record for a task key, if journaled."""
        return self._groups.get(key)

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def completed_run(self) -> Optional[Dict[str, object]]:
        """The final ``done`` record when the run finished end to end.

        Only honored when the last verdict (if any) was positive — a
        journal whose equivalence gate failed must re-run.
        """
        done = None
        verdict_ok = True
        for record in self._records:
            if record.get("type") == "done":
                done = record
            elif record.get("type") == "verdict":
                verdict_ok = bool(record.get("equivalent"))
        return done if (done is not None and verdict_ok) else None

    # ----------------------------------------------------------------- #
    # Appending (WAL discipline: one fsynced line per fact)
    # ----------------------------------------------------------------- #

    def _append(self, record: Dict[str, object]) -> Dict[str, object]:
        record = dict(record)
        record.setdefault("ts", round(time.time(), 3))
        record["h"] = _record_hash(record)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_canonical(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records.append(record)
        return record

    def record_group(
        self,
        key: str,
        task,
        result,
        seconds: float,
        resolution: Optional[str] = None,
    ) -> None:
        """Journal one landed group fragment (called as results arrive)."""
        record = self._append(
            {
                "type": "group",
                "key": key,
                "gi": task.gi,
                "group": list(task.group),
                "mode": str(result.info.get("mode", task.mode)),
                "resolution": resolution,
                "seconds": round(seconds, 6),
                "blif": result.blif_text,
                "info": _jsonable(result.info),
            }
        )
        self._groups[key] = record
        delay = float(os.environ.get(DELAY_ENV, 0) or 0)
        if delay > 0:  # deterministic window for the resume smoke's SIGTERM
            time.sleep(delay)

    def record_interrupted(
        self, reason: str, completed: int, total: int
    ) -> None:
        self._append(
            {
                "type": "event",
                "kind": "interrupted",
                "reason": reason,
                "completed": completed,
                "total": total,
            }
        )

    def record_event(self, kind: str, **payload) -> None:
        """Journal a free-form diagnostic event (e.g. a failing cone).

        Events are informational: :func:`validate_journal` accepts any
        record with a ``kind``, and replay ignores them — they exist so
        a post-mortem can see *why* a fragment was rejected, not just
        that the ladder recovered from it.
        """
        self._append({"type": "event", "kind": kind, **_jsonable(payload)})

    def record_verdict(
        self,
        equivalent: bool,
        replayed: int,
        executed: int,
        engine: str = "bdd",
        detail: Optional[str] = None,
    ) -> None:
        record: Dict[str, object] = {
            "type": "verdict",
            "equivalent": bool(equivalent),
            "replayed": replayed,
            "executed": executed,
            "engine": engine,
        }
        if detail:
            record["detail"] = detail
        self._append(record)

    def record_done(self, **metrics) -> None:
        self._append({"type": "done", **_jsonable(metrics)})


def _jsonable(value):
    """Best-effort conversion of info/metric payloads to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def open_journal(
    directory: Union[str, "os.PathLike[str]"],
    circuit: str,
    flow: str,
    k: int,
    resume: bool = False,
) -> RunJournal:
    """Open (creating the directory if needed) the run's journal."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    return RunJournal(
        journal_path(directory, circuit, flow, k),
        circuit=circuit,
        flow=flow,
        k=k,
        resume=resume,
    )
