"""Exact k-LUT mapping for small cones — the optimality oracle.

See :mod:`repro.exact.mapper` for the search and
:mod:`repro.exact.cache` for the NPN-canonical memo.
"""

from .cache import EXACT_SCHEMA_VERSION, ExactCache
from .mapper import (
    DEFAULT_BUDGET_SECONDS,
    DEFAULT_MAX_LUTS,
    EXACT_MAX_INPUTS,
    ExactBudgetExceeded,
    ExactResult,
    cone_spec,
    exact_map,
    exact_map_network,
)

__all__ = [
    "DEFAULT_BUDGET_SECONDS",
    "DEFAULT_MAX_LUTS",
    "EXACT_MAX_INPUTS",
    "EXACT_SCHEMA_VERSION",
    "ExactBudgetExceeded",
    "ExactCache",
    "ExactResult",
    "cone_spec",
    "exact_map",
    "exact_map_network",
]
