"""NPN-canonical memo for exact mapping results.

A deliberately small sibling of :class:`repro.service.ResultStore`,
sharing its trust idioms: schema-version stamping (a bumped
:data:`EXACT_SCHEMA_VERSION` silently invalidates every old row),
per-row integrity hashes (a corrupt payload is deleted and treated as
a miss, never served), LRU accounting with bounded eviction, and
lock-retried writes (the cache is an accelerator — a write that loses
a race must never fail the search that already ran).

Keys are content-addressed over ``(n, k, cost, canonical mask,
schema version)``; the stored payload is the canonical-space plan
(wiring + table masks), so one row answers every NPN variant of its
class.  :data:`EXACT_SCHEMA_VERSION` also joins the service store's
schema digest (see :func:`repro.service.store.schema_version`) so a
format change invalidates service-side keys too.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from typing import Dict, Optional

#: Bump when the payload format or search semantics change: every
#: existing row (and, via the service schema digest, every service
#: cache key) stops matching.
EXACT_SCHEMA_VERSION = 1

#: Truncated sha256 hex digests: 32 for keys, 16 for row integrity.
KEY_HEX_LEN = 32
ROW_HASH_LEN = 16

_SCHEMA = """
CREATE TABLE IF NOT EXISTS exact_results (
    key TEXT PRIMARY KEY,
    version INTEGER NOT NULL,
    payload TEXT NOT NULL,
    row_hash TEXT NOT NULL,
    created REAL NOT NULL,
    last_used REAL NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0
)
"""


def _row_hash(payload_text: str) -> str:
    return hashlib.sha256(payload_text.encode()).hexdigest()[:ROW_HASH_LEN]


class ExactCache:
    """SQLite-backed NPN-canonical result memo for :func:`exact_map`."""

    def __init__(self, path: str = ":memory:", max_rows: int = 4096):
        self.path = path
        self.max_rows = max_rows
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()
        self.hits = 0
        self.misses = 0
        self.rejects = 0

    # ------------------------------------------------------------------ #

    @staticmethod
    def key_for(n: int, k: int, cost: str, mask: int) -> str:
        payload = json.dumps(
            {
                "n": n,
                "k": k,
                "cost": cost,
                "mask": format(mask, "x"),
                "version": EXACT_SCHEMA_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:KEY_HEX_LEN]

    def get(self, key: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT version, payload, row_hash FROM exact_results "
            "WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        version, payload_text, row_hash = row
        if version != EXACT_SCHEMA_VERSION or _row_hash(payload_text) != row_hash:
            # Stale schema or bit rot: drop the row, report a miss.
            self.rejects += 1
            self._conn.execute(
                "DELETE FROM exact_results WHERE key = ?", (key,)
            )
            self._conn.commit()
            return None
        self.hits += 1
        self._conn.execute(
            "UPDATE exact_results SET last_used = ?, hits = hits + 1 "
            "WHERE key = ?",
            (time.time(), key),
        )
        self._conn.commit()
        return json.loads(payload_text)

    def put(self, key: str, payload: Dict[str, object]) -> None:
        payload_text = json.dumps(payload, sort_keys=True)
        now = time.time()
        for attempt in range(3):
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO exact_results "
                    "(key, version, payload, row_hash, created, "
                    "last_used, hits) VALUES (?, ?, ?, ?, ?, ?, 0)",
                    (
                        key,
                        EXACT_SCHEMA_VERSION,
                        payload_text,
                        _row_hash(payload_text),
                        now,
                        now,
                    ),
                )
                self._conn.commit()
                break
            except sqlite3.OperationalError:
                if attempt == 2:
                    return  # accelerator only: losing the row is fine
                time.sleep(0.02 * (attempt + 1))
        self._evict()

    def _evict(self) -> None:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM exact_results"
        ).fetchone()
        excess = count - self.max_rows
        if excess > 0:
            self._conn.execute(
                "DELETE FROM exact_results WHERE key IN ("
                "SELECT key FROM exact_results "
                "ORDER BY last_used ASC LIMIT ?)",
                (excess,),
            )
            self._conn.commit()

    def stats(self) -> Dict[str, int]:
        (rows,) = self._conn.execute(
            "SELECT COUNT(*) FROM exact_results"
        ).fetchone()
        return {
            "rows": rows,
            "hits": self.hits,
            "misses": self.misses,
            "rejects": self.rejects,
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExactCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
