"""Exact k-LUT mapping of small cones — the optimality oracle.

Answers "what is the minimum number of k-LUTs realizing this function?"
(and, under ``cost="delay"``, the minimum depth at that LUT count) by
iterative-deepening search over LUT-network topologies: for N = 1, 2,
3… the question "∃ wiring + ∃ truth-table bits such that the N-LUT
network equals the spec on all 2^n input vectors" is decided by a
hybrid of combinatorial wiring enumeration and a pure-python DPLL over
the truth-table bits, with values derived by propagation (QBM frames
the same decision problem as QBF satisfiability; here the inner ∃ is
solved directly instead of handed to a solver, keeping the oracle
dependency-free).

Three structural facts keep the search honest and fast:

* **Lower bound.** Every LUT past the first contributes at most k-1
  fresh inputs, so N ≥ ceil((n-1)/(k-1)); the deepening starts there.
* **Monotone fanins.**  Giving any node more fanins only enlarges its
  realizable function set (the table can ignore pins), so for the
  area question only *maximal* fanin sets need enumerating; the found
  tables are support-pruned afterwards.  The delay refinement re-runs
  the final level with full (non-maximal) enumeration under an exact
  structural depth cap, because a superset wiring can be deeper.
* **N=2 is 2-coloring.**  With one inner LUT g and the output h(D,
  g(S1)), two assignments in the same D-class with different spec
  values force g apart — feasibility is bipartiteness of that
  conflict graph, decided directly without DPLL.

Every found plan is re-checked bit-parallel (big-int vectors built
from :func:`repro.fastpath.bitops.var_masks` — the all-vectors check
is a handful of big-int ops) before it is trusted, and results are
memoized NPN-canonically (:mod:`repro.boolfunc.npn`) in
:class:`~repro.exact.cache.ExactCache`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..boolfunc import TruthTable
from ..boolfunc.npn import Transform, npn_canonical
from ..fastpath.bitops import var_masks
from ..network import Network

#: Widest cone the oracle accepts (2^10 vectors; beyond this the table
#: explodes and the heuristic flow is the only practical answer).
EXACT_MAX_INPUTS = 10

#: Wall-clock budget when the caller does not pass one.
DEFAULT_BUDGET_SECONDS = 5.0

#: Deepening cap when no upper bound is supplied: proving "≥ 8 LUTs"
#: exactly is far beyond what the budget allows anyway.
DEFAULT_MAX_LUTS = 7

# Plan representation: one (fanins, table_mask) pair per LUT in
# topological order; signal ids 0..n-1 are spec inputs, n+i is LUT i.
Plan = List[Tuple[Tuple[int, ...], int]]


class ExactBudgetExceeded(RuntimeError):
    """The search ran out of budget (wall clock or LUT cap) before an
    exact answer was proven.  Never raised once an optimum is known."""


@dataclass(frozen=True)
class ExactResult:
    """An *optimal* answer: ``luts`` is exactly the minimum.

    ``network`` realizes the spec (BDD-checkable); it is ``None`` only
    when the optimum was certified via ``upper_bound`` and the caller
    passed no ``upper_witness``.  ``source`` says how the answer was
    obtained: ``"search"``, ``"trivial"`` (constant/wire/single LUT
    shortcuts), ``"upper_bound"`` (all smaller N proven UNSAT, the
    caller's bound is the optimum) or ``"cache"``.
    """

    luts: int
    depth: int
    network: Optional[Network]
    seconds: float
    source: str = "search"
    cache_hit: bool = False
    key: Optional[str] = None


class _Deadline:
    """Cooperative budget: wall clock plus an optional external poll
    (the portfolio rung passes the BDD manager's ``check_budget`` so an
    armed ``max_seconds``/fault injection interrupts the search too)."""

    __slots__ = ("at", "poll")

    def __init__(self, budget_seconds: float, poll=None) -> None:
        self.at = time.monotonic() + budget_seconds
        self.poll = poll

    def check(self) -> None:
        if time.monotonic() > self.at:
            raise ExactBudgetExceeded(
                "exact search exceeded its time budget"
            )
        if self.poll is not None:
            self.poll()


def _lower_bound(n: int, k: int) -> int:
    if n <= k:
        return 1
    return -(-(n - 1) // (k - 1))


# --------------------------------------------------------------------- #
# Bit-parallel plan evaluation (the all-vectors check)
# --------------------------------------------------------------------- #


def _eval_plan(plan: Plan, n: int) -> int:
    """Truth-table mask the plan computes, via big-int vector eval."""
    total = 1 << n
    full = (1 << total) - 1
    sigs = [var_masks(n, j)[1] for j in range(n)]
    for fanins, tmask in plan:
        fvecs = [sigs[s] for s in fanins]
        out = 0
        for p in range(1 << len(fanins)):
            if not (tmask >> p) & 1:
                continue
            sel = full
            for pos, fv in enumerate(fvecs):
                sel &= fv if (p >> pos) & 1 else ~fv & full
                if not sel:
                    break
            out |= sel
        sigs.append(out)
    return sigs[-1] if plan else 0


def _plan_depth(plan: Plan, n: int) -> int:
    depths: List[int] = []
    for fanins, _ in plan:
        d = 0
        for s in fanins:
            ds = 0 if s < n else depths[s - n]
            if ds > d:
                d = ds
        depths.append(d + 1)
    return depths[-1] if depths else 0


def _prune_plan(plan: Plan) -> Plan:
    """Drop table-ignored pins (maximal-set search wires generously)."""
    pruned: Plan = []
    for fanins, tmask in plan:
        tt = TruthTable(len(fanins), tmask)
        reduced, kept = tt.minimize_support()
        pruned.append((tuple(fanins[j] for j in kept), reduced.mask))
    return pruned


# --------------------------------------------------------------------- #
# N = 2: feasibility is bipartiteness of the conflict graph
# --------------------------------------------------------------------- #


def _two_feasible(
    mask: int, n: int, s1: Tuple[int, ...], d: Tuple[int, ...],
    apat: List[int],
) -> Optional[Plan]:
    total = 1 << n
    groups: Dict[int, Tuple[Set[int], Set[int]]] = {}
    for v in range(total):
        dpat = 0
        for pos, j in enumerate(d):
            if (v >> j) & 1:
                dpat |= 1 << pos
        bucket = groups.get(dpat)
        if bucket is None:
            bucket = groups[dpat] = (set(), set())
        bucket[(mask >> v) & 1].add(apat[v])
    adj: Dict[int, Set[int]] = {}
    for zeros, ones in groups.values():
        if zeros & ones:
            return None  # same g-class forced both ways: no g exists
        for a1 in zeros:
            for a2 in ones:
                adj.setdefault(a1, set()).add(a2)
                adj.setdefault(a2, set()).add(a1)
    color: Dict[int, int] = {}
    for start in sorted(adj):
        if start in color:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            cu = color[u]
            for w in adj[u]:
                cw = color.get(w)
                if cw is None:
                    color[w] = 1 - cu
                    stack.append(w)
                elif cw == cu:
                    return None  # odd cycle: not 2-colorable
    gmask = 0
    for a, c in color.items():
        if c:
            gmask |= 1 << a
    hmask = 0
    dlen = len(d)
    for dpat, (_, ones) in groups.items():
        for a in ones:
            hmask |= 1 << (dpat | (((gmask >> a) & 1) << dlen))
    return [(tuple(s1), gmask), (tuple(d) + (n,), hmask)]


def _search_two(
    mask: int, n: int, k: int, deadline: _Deadline
) -> Optional[Plan]:
    if 2 * k - 1 < n:
        return None
    total = 1 << n
    s1_size = min(k, n)
    for s1 in itertools.combinations(range(n), s1_size):
        deadline.check()
        s1set = set(s1)
        required = [j for j in range(n) if j not in s1set]
        if len(required) > k - 1:
            continue
        apat = [0] * total
        for pos, j in enumerate(s1):
            bit = 1 << pos
            for v in range(total):
                if (v >> j) & 1:
                    apat[v] |= bit
        extra_size = min(k - 1 - len(required), len(s1))
        for extras in itertools.combinations(s1, extra_size):
            plan = _two_feasible(
                mask, n, s1, tuple(sorted(required + list(extras))), apat
            )
            if plan is not None:
                return plan
    return None


# --------------------------------------------------------------------- #
# N >= 3: wiring DFS + DPLL over truth-table bits
# --------------------------------------------------------------------- #


def _general_wirings(
    n: int,
    k: int,
    N: int,
    maximal: bool,
    depth_cap: Optional[int] = None,
    depth_exact: bool = False,
):
    """Yield complete wirings (a fanin tuple per node, topo order).

    Pruned by: coverage (all n inputs read somewhere), consumption
    (every inner node read downstream), lex-nondecreasing adjacent
    input-only nodes (symmetry), and — when ``depth_cap`` is set — the
    structural depth bound (``depth_exact`` additionally requires the
    output to sit exactly at the cap, so the delay refinement never
    re-visits wirings a smaller cap already covered).
    """
    wiring: List[Tuple[int, ...]] = []
    depths: List[int] = []

    def rec(i: int, cover: int, unconsumed: Set[int]):
        cand = list(range(n)) + [n + j for j in range(i)]
        if i == N - 1:
            forced = [n + j for j in sorted(unconsumed)]
            missing = [j for j in range(n) if not (cover >> j) & 1]
            base = forced + missing
            if len(base) > k:
                return
            pool = [s for s in cand if s not in set(base)]
            if maximal:
                sizes = [min(k, len(cand)) - len(base)]
            else:
                lo = max(0, 2 - len(base))
                sizes = range(lo, k - len(base) + 1)
            for size in sizes:
                if size < 0 or size > len(pool):
                    continue
                for extras in itertools.combinations(pool, size):
                    fan = tuple(sorted(base + list(extras)))
                    if len(fan) < 2:
                        continue  # absorbable at minimal N
                    d = 1 + max(
                        (0 if s < n else depths[s - n]) for s in fan
                    )
                    if depth_cap is not None:
                        if d > depth_cap:
                            continue
                        if depth_exact and d != depth_cap:
                            continue
                    wiring.append(fan)
                    yield list(wiring)
                    wiring.pop()
            return
        sizes = (
            [min(k, len(cand))]
            if maximal
            else range(2, min(k, len(cand)) + 1)
        )
        prev = wiring[i - 1] if i > 0 else None
        prev_inputs_only = prev is not None and all(s < n for s in prev)
        for size in sizes:
            for fan in itertools.combinations(cand, size):
                if (
                    prev_inputs_only
                    and all(s < n for s in fan)
                    and fan < prev
                ):
                    continue  # symmetric twin already enumerated
                d = 1 + max((0 if s < n else depths[s - n]) for s in fan)
                # An inner node must be read by a deeper node, so under
                # a cap it cannot itself sit at the cap.
                if depth_cap is not None and d >= depth_cap:
                    continue
                ncover = cover
                nuncon = set(unconsumed)
                for s in fan:
                    if s < n:
                        ncover |= 1 << s
                    else:
                        nuncon.discard(s - n)
                nuncon.add(i)
                missing_ct = n - bin(ncover).count("1")
                if len(nuncon) + missing_ct > (N - 1 - i) * k:
                    continue  # not enough pins left downstream
                wiring.append(fan)
                depths.append(d)
                yield from rec(i + 1, ncover, nuncon)
                depths.pop()
                wiring.pop()

    yield from rec(0, 0, set())


def _propagate(
    wiring: List[Tuple[int, ...]],
    tables: List[Dict[int, int]],
    values: List[List[Optional[int]]],
    mask: int,
    n: int,
    N: int,
    total: int,
) -> bool:
    """Fixpoint propagation; ``False`` on contradiction with the spec."""
    changed = True
    while changed:
        changed = False
        for i in range(N):
            fan = wiring[i]
            tab = tables[i]
            vals = values[i]
            is_output = i == N - 1
            for v in range(total):
                if vals[v] is not None:
                    continue
                p = 0
                known = True
                for pos, s in enumerate(fan):
                    if s < n:
                        b = (v >> s) & 1
                    else:
                        b = values[s - n][v]
                        if b is None:
                            known = False
                            break
                    if b:
                        p |= 1 << pos
                if not known:
                    continue
                if is_output:
                    want = (mask >> v) & 1
                    cur = tab.get(p)
                    if cur is None:
                        tab[p] = want
                    elif cur != want:
                        return False
                    vals[v] = want
                    changed = True
                else:
                    b = tab.get(p)
                    if b is not None:
                        vals[v] = b
                        changed = True
    return True


def _pick_branch(
    wiring: List[Tuple[int, ...]],
    values: List[List[Optional[int]]],
    n: int,
    N: int,
    total: int,
) -> Optional[Tuple[int, int]]:
    """The earliest undetermined (node, pattern) — its fanins are all
    determined (every earlier node is complete), so the unknown is the
    table bit itself.  ``None`` means the whole network is determined
    and (propagation having enforced the spec at the output) SAT."""
    for i in range(N):
        vals = values[i]
        for v in range(total):
            if vals[v] is None:
                p = 0
                for pos, s in enumerate(wiring[i]):
                    b = (v >> s) & 1 if s < n else values[s - n][v]
                    if b:
                        p |= 1 << pos
                return i, p
    return None


class _CapReached(Exception):
    """DPLL node cap hit: this wiring is 'hard', verdict unknown."""


class _NodeCap:
    __slots__ = ("left",)

    def __init__(self, budget: Optional[int]) -> None:
        self.left = budget

    def spend(self) -> None:
        if self.left is None:
            return
        self.left -= 1
        if self.left < 0:
            raise _CapReached()


def _dpll(
    wiring: List[Tuple[int, ...]],
    tables: List[Dict[int, int]],
    values: List[List[Optional[int]]],
    mask: int,
    n: int,
    N: int,
    total: int,
    deadline: _Deadline,
    cap: _NodeCap,
) -> Optional[List[Dict[int, int]]]:
    deadline.check()
    cap.spend()
    pick = _pick_branch(wiring, values, n, N, total)
    if pick is None:
        return tables
    i, p = pick
    for bit in (0, 1):
        t2 = [dict(t) for t in tables]
        v2 = [list(v) for v in values]
        t2[i][p] = bit
        if _propagate(wiring, t2, v2, mask, n, N, total):
            found = _dpll(
                wiring, t2, v2, mask, n, N, total, deadline, cap
            )
            if found is not None:
                return found
    return None


def _solve_wiring(
    wiring: List[Tuple[int, ...]],
    mask: int,
    n: int,
    N: int,
    deadline: _Deadline,
    node_cap: Optional[int] = None,
) -> Optional[Plan]:
    total = 1 << n
    tables: List[Dict[int, int]] = [dict() for _ in range(N)]
    values: List[List[Optional[int]]] = [
        [None] * total for _ in range(N)
    ]
    # Polarity symmetry-breaking: flipping an inner node's output can
    # always be absorbed by its consumers' (free) tables, so every
    # solvable wiring has a solution with g_i(0…0) = 0.  Halves each
    # inner table's search dimension.
    for i in range(N - 1):
        tables[i][0] = 0
    if not _propagate(wiring, tables, values, mask, n, N, total):
        return None
    solved = _dpll(
        wiring, tables, values, mask, n, N, total, deadline,
        _NodeCap(node_cap),
    )
    if solved is None:
        return None
    plan: Plan = []
    for fan, tab in zip(wiring, solved):
        tmask = 0
        for p, bit in tab.items():
            if bit:
                tmask |= 1 << p
        plan.append((tuple(fan), tmask))
    return plan


#: Pass-1 DPLL node cap: enough to settle easy wirings (structured
#: functions solve in tens of nodes), small enough that a sweep over
#: thousands of wirings stays interactive.
_EASY_NODE_CAP = 400


def _search_general(
    mask: int, n: int, k: int, N: int, deadline: _Deadline
) -> Optional[Plan]:
    """Two-pass sweep: a capped pass surfaces easy SAT wirings fast
    (finding a solution must not be blocked behind some early wiring's
    expensive UNSAT proof); hard wirings are revisited uncapped only
    when the capped pass proves nothing — the UNSAT verdict needs every
    wiring settled."""
    hard: List[List[Tuple[int, ...]]] = []
    for wiring in _general_wirings(n, k, N, maximal=True):
        deadline.check()
        try:
            plan = _solve_wiring(
                wiring, mask, n, N, deadline, node_cap=_EASY_NODE_CAP
            )
        except _CapReached:
            hard.append(wiring)
            continue
        if plan is not None:
            return plan
    for wiring in hard:
        deadline.check()
        plan = _solve_wiring(wiring, mask, n, N, deadline)
        if plan is not None:
            return plan
    return None


def _search_general_delay(
    mask: int, n: int, k: int, N: int, deadline: _Deadline
) -> Tuple[Plan, int]:
    """Minimum structural depth at N LUTs (full enumeration, exact
    depth caps from 2 upward; a chain of N is the worst case so the
    scan always terminates with the plan the area search proved
    exists)."""
    for cap in range(2, N + 1):
        hard: List[List[Tuple[int, ...]]] = []
        for wiring in _general_wirings(
            n, k, N, maximal=False, depth_cap=cap, depth_exact=True
        ):
            deadline.check()
            try:
                plan = _solve_wiring(
                    wiring, mask, n, N, deadline,
                    node_cap=_EASY_NODE_CAP,
                )
            except _CapReached:
                hard.append(wiring)
                continue
            if plan is not None:
                return plan, cap
        for wiring in hard:
            deadline.check()
            plan = _solve_wiring(wiring, mask, n, N, deadline)
            if plan is not None:
                return plan, cap
    raise RuntimeError(
        f"delay refinement found no network at N={N} although the "
        "area search did — enumeration bug"
    )


# --------------------------------------------------------------------- #
# NPN canonical keying and witness reconstruction
# --------------------------------------------------------------------- #


def _identity_transform(n: int) -> Transform:
    return (tuple(range(n)), 0, 0)


def _untransform_plan(plan: Plan, transform: Transform, n: int) -> Plan:
    """Rewrite a plan for the canonical function into one for the
    original: ``canonical(y) = out_flip ^ f(x)`` with ``y[perm[j]] =
    x[j] ^ flips[j]``, so input pin ``y_i`` becomes ``x_{pinv[i]}``
    (table pin flipped when that input was), and the output table
    absorbs ``out_flip``."""
    perm, flips, out_flip = transform
    pinv = [0] * n
    for j, pj in enumerate(perm):
        pinv[pj] = j
    out: Plan = []
    for node_idx, (fanins, tmask) in enumerate(plan):
        tt = TruthTable(len(fanins), tmask)
        new_fan = []
        for pos, s in enumerate(fanins):
            if s < n:
                src = pinv[s]
                if (flips >> src) & 1:
                    tt = tt.flip_input(pos)
                new_fan.append(src)
            else:
                new_fan.append(s)
        if out_flip and node_idx == len(plan) - 1:
            tt = ~tt
        out.append((tuple(new_fan), tt.mask))
    return out


def _plan_payload(
    plan: Plan, n: int, k: int, cost: str, mask: int, depth: int
) -> Dict[str, object]:
    return {
        "n": n,
        "k": k,
        "cost": cost,
        "mask": format(mask, "x"),
        "luts": len(plan),
        "depth": depth,
        "wiring": [list(fanins) for fanins, _ in plan],
        "tables": [tmask for _, tmask in plan],
    }


def _plan_from_payload(payload: Dict[str, object]) -> Plan:
    return [
        (tuple(fanins), tmask)
        for fanins, tmask in zip(payload["wiring"], payload["tables"])
    ]


def _witness_network(
    plan: Plan,
    kept: Sequence[int],
    input_names: Sequence[str],
    output_name: str,
    net_name: str,
) -> Network:
    """Materialize a plan (in reduced-spec space) as a Network whose
    PIs are the *original* spec inputs, in the original order."""
    net = Network(net_name)
    for pi in input_names:
        net.add_input(pi)
    # Plan signal ids are 0..n-1 (reduced-spec inputs) then n+i (LUT
    # i); ``signals`` is laid out identically, so ids index directly.
    signals: List[str] = [input_names[j] for j in kept]
    for i, (fanins, tmask) in enumerate(plan):
        node_name = net.fresh_name(f"{output_name}_ex{i}")
        net.add_node(
            node_name,
            [signals[s] for s in fanins],
            TruthTable(len(fanins), tmask),
        )
        signals.append(node_name)
    net.add_output(signals[-1] if plan else signals[0], output_name)
    return net


# --------------------------------------------------------------------- #
# The oracle
# --------------------------------------------------------------------- #


def exact_map(
    spec: TruthTable,
    k: int = 5,
    *,
    cost: str = "area",
    budget_seconds: Optional[float] = None,
    cache=None,
    upper_bound: Optional[int] = None,
    upper_witness: Optional[Network] = None,
    upper_depth: Optional[int] = None,
    max_luts: Optional[int] = None,
    input_names: Optional[Sequence[str]] = None,
    output_name: str = "f",
    name: Optional[str] = None,
    poll: Optional[Callable[[], None]] = None,
) -> ExactResult:
    """The minimum k-LUT realization of ``spec`` — exactly.

    Returns an :class:`ExactResult` whose ``luts`` is *proven* minimal
    (and whose ``depth`` is the minimum at that LUT count under
    ``cost="delay"``), or raises :class:`ExactBudgetExceeded` when the
    proof did not complete within ``budget_seconds`` (default
    ``DEFAULT_BUDGET_SECONDS``) / ``max_luts``.  It never returns a
    wrong or unproven answer.

    ``upper_bound`` (with optional ``upper_witness``/``upper_depth``,
    e.g. the heuristic flow's cone) truncates the deepening: once every
    N below the bound is UNSAT the bound itself is the optimum — which
    makes "is the heuristic already optimal?" the *cheap* question.

    ``cache`` is an :class:`~repro.exact.cache.ExactCache`; results are
    stored under the NPN-canonical key (≤5 inputs; raw support-reduced
    mask beyond, where canonicalization itself would dwarf the search)
    so one stored class answers every input permutation/negation of it.
    Hits reconstruct the witness through the exact same payload path a
    fresh search uses, so a hit is byte-identical to the miss that
    seeded it.  ``poll`` is called inside search loops (the portfolio
    rung passes the BDD manager's budget check so fault injection and
    ``max_seconds`` arming interrupt the search cooperatively).
    """
    start = time.perf_counter()
    if spec.num_inputs > EXACT_MAX_INPUTS:
        raise ValueError(
            f"spec has {spec.num_inputs} inputs; the exact oracle "
            f"accepts at most {EXACT_MAX_INPUTS}"
        )
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if cost not in ("area", "delay"):
        raise ValueError(f"cost must be 'area' or 'delay', got {cost!r}")
    names = (
        list(input_names)
        if input_names is not None
        else [f"x{j}" for j in range(spec.num_inputs)]
    )
    if len(names) != spec.num_inputs:
        raise ValueError(
            f"{len(names)} input names for {spec.num_inputs} inputs"
        )
    net_name = name or "exact"

    reduced, kept = spec.minimize_support()
    n = reduced.num_inputs

    def _done(
        luts: int,
        depth: int,
        network: Optional[Network],
        source: str,
        cache_hit: bool = False,
        key: Optional[str] = None,
    ) -> ExactResult:
        return ExactResult(
            luts=luts,
            depth=depth,
            network=network,
            seconds=time.perf_counter() - start,
            source=source,
            cache_hit=cache_hit,
            key=key,
        )

    # Trivial shortcuts — also the cases where the LUT count is *not*
    # NPN-invariant (a wire is 0 LUTs, its negation 1), so they must
    # resolve before canonical keying.
    if n == 0:
        net = Network(net_name)
        for pi in names:
            net.add_input(pi)
        cname = net.fresh_name(f"{output_name}_const")
        net.add_constant(cname, 1 if reduced.mask else 0)
        net.add_output(cname, output_name)
        return _done(0, 0, net, "trivial")
    if n == 1 and reduced == TruthTable.projection(1, 0):
        net = Network(net_name)
        for pi in names:
            net.add_input(pi)
        net.add_output(names[kept[0]], output_name)
        return _done(0, 0, net, "trivial")

    # Canonical key + memo.
    if n <= 5:
        canonical, transform = npn_canonical(reduced)
    else:
        canonical, transform = reduced, _identity_transform(n)
    ckey = cache.key_for(n, k, cost, canonical.mask) if cache else None
    if cache is not None:
        payload = cache.get(ckey)
        if payload is not None:
            plan = _untransform_plan(
                _plan_from_payload(payload), transform, n
            )
            if _eval_plan(plan, n) != reduced.mask:
                raise RuntimeError(
                    "cached exact plan fails bit-parallel replay "
                    f"(key {ckey})"
                )
            witness = _witness_network(
                plan, kept, names, output_name, net_name
            )
            return _done(
                int(payload["luts"]),
                int(payload["depth"]),
                witness,
                "cache",
                cache_hit=True,
                key=ckey,
            )

    lb = _lower_bound(n, k)
    if upper_bound is not None and upper_bound <= lb:
        depth = (
            upper_depth
            if upper_depth is not None
            else (1 if upper_bound <= 1 else upper_bound)
        )
        return _done(
            upper_bound, depth, upper_witness, "upper_bound", key=ckey
        )

    deadline = _Deadline(
        DEFAULT_BUDGET_SECONDS if budget_seconds is None else budget_seconds,
        poll,
    )
    stop = (
        upper_bound
        if upper_bound is not None
        else (max_luts if max_luts is not None else DEFAULT_MAX_LUTS) + 1
    )
    cmask = canonical.mask
    plan: Optional[Plan] = None
    depth: Optional[int] = None
    found_n = 0
    for N in range(lb, stop):
        deadline.check()
        if N == 1:
            if n <= k:
                plan, depth, found_n = [(tuple(range(n)), cmask)], 1, 1
                break
            continue
        if N * k - (N - 1) < n:
            continue  # coverage impossible: N LUTs reach < n inputs
        if N == 2:
            plan = _search_two(cmask, n, k, deadline)
            if plan is not None:
                depth, found_n = 2, 2
                break
        else:
            plan = _search_general(cmask, n, k, N, deadline)
            if plan is not None:
                found_n = N
                if cost == "delay":
                    plan, depth = _search_general_delay(
                        cmask, n, k, N, deadline
                    )
                break
    if plan is None:
        if upper_bound is not None:
            depth = (
                upper_depth if upper_depth is not None else upper_bound
            )
            return _done(
                upper_bound, depth, upper_witness, "upper_bound",
                key=ckey,
            )
        raise ExactBudgetExceeded(
            f"proved no realization with < {stop} LUTs exists, but the "
            "LUT cap stopped the deepening; raise max_luts or pass an "
            "upper bound"
        )

    plan = _prune_plan(plan)
    if _eval_plan(plan, n) != cmask:
        raise RuntimeError(
            "exact search produced a plan that fails its own "
            "bit-parallel replay — solver bug"
        )
    if depth is None or cost == "area":
        depth = _plan_depth(plan, n)
    payload = _plan_payload(plan, n, k, cost, cmask, depth)
    if cache is not None:
        cache.put(ckey, payload)
    # Reconstruct the witness *through the payload* — the same path a
    # cache hit takes — so hit and miss are byte-identical.
    final_plan = _untransform_plan(
        _plan_from_payload(payload), transform, n
    )
    if _eval_plan(final_plan, n) != reduced.mask:
        raise RuntimeError(
            "NPN un-transform broke the plan — transform bug"
        )
    witness = _witness_network(
        final_plan, kept, names, output_name, net_name
    )
    return _done(found_n, depth, witness, "search", key=ckey)


def cone_spec(net: Network, output: str) -> Tuple[TruthTable, List[str]]:
    """Flatten one output of ``net`` to ``(truth table, support)``.

    Input ``j`` of the table is ``support[j]`` (the cone's PIs in
    declaration order), matching :func:`exact_map`'s ``input_names``.
    """
    from ..network.simulate import simulate_vectors

    driver = dict(net.outputs)[output]
    support = net.support_of(driver)
    if len(support) > EXACT_MAX_INPUTS:
        raise ValueError(
            f"output {output!r} depends on {len(support)} inputs; the "
            f"exact oracle accepts at most {EXACT_MAX_INPUTS}"
        )
    n = len(support)
    total = 1 << n
    patterns = {pi: [0] * total for pi in net.inputs}
    for j, pi in enumerate(support):
        patterns[pi] = [(v >> j) & 1 for v in range(total)]
    values = simulate_vectors(net, patterns, total)[output]
    mask = 0
    for v, bit in enumerate(values):
        if bit:
            mask |= 1 << v
    return TruthTable(n, mask), support


def exact_map_network(
    net: Network, output: Optional[str] = None, k: int = 5, **kwargs
) -> ExactResult:
    """:func:`exact_map` for one output cone of a parsed network.

    The witness's PIs are the cone's support (declaration order); pad
    with the dropped PIs before an equivalence check against ``net``.
    """
    if output is None:
        outs = net.output_names
        if len(outs) != 1:
            raise ValueError(
                f"{net.name} has {len(outs)} outputs; pass output="
            )
        output = outs[0]
    spec, support = cone_spec(net, output)
    kwargs.setdefault("input_names", support)
    kwargs.setdefault("output_name", output)
    kwargs.setdefault("name", f"{net.name}_exact")
    return exact_map(spec, k, **kwargs)
