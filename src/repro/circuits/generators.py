"""Parametric circuit generators (arithmetic, symmetric, control logic).

These produce :class:`~repro.network.Network` objects used both as exact
reconstructions of MCNC benchmarks with publicly known semantics (9sym,
rd73, rd84, z4ml, parity, ...) and as building blocks of the synthetic
stand-ins in :mod:`repro.circuits.mcnc`.

Wide circuits are built *structurally* (ripple carry, trees of small
nodes) so their networks stay representable even when a flat truth table
would be astronomically large.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set

from ..boolfunc import TruthTable
from ..network import Network

__all__ = [
    "symmetric_function",
    "parity",
    "majority",
    "popcount",
    "ripple_adder",
    "incrementer",
    "comparator",
    "alu",
    "multiplier",
    "decoder",
    "mux_tree",
    "gray_encoder",
    "saturating_abs",
]

_XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
_AND2 = TruthTable.from_function(2, lambda a, b: a & b)
_OR2 = TruthTable.from_function(2, lambda a, b: a | b)
_MAJ3 = TruthTable.from_function(3, lambda a, b, c: 1 if a + b + c >= 2 else 0)
_XOR3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)


def _input_names(net: Network, n: int, prefix: str = "i") -> List[str]:
    return [net.add_input(f"{prefix}{j}") for j in range(n)]


def symmetric_function(n: int, on_counts: Iterable[int], name: str = "sym") -> Network:
    """A totally symmetric single-output function of ``n`` inputs.

    Output is 1 iff the input popcount is in ``on_counts``.  ``9sym`` is
    ``symmetric_function(9, {3, 4, 5, 6})``.
    """
    counts: Set[int] = set(on_counts)
    net = Network(name)
    inputs = _input_names(net, n)
    mask = 0
    for idx in range(1 << n):
        if bin(idx).count("1") in counts:
            mask |= 1 << idx
    net.add_node("f", inputs, TruthTable(n, mask))
    net.add_output("f")
    return net


def parity(n: int, name: str = "parity") -> Network:
    """Odd parity of ``n`` inputs, built as an XOR chain."""
    net = Network(name)
    inputs = _input_names(net, n)
    acc = inputs[0]
    for j, sig in enumerate(inputs[1:]):
        nxt = f"x{j}"
        net.add_node(nxt, [acc, sig], _XOR2)
        acc = nxt
    net.add_output(acc, "p")
    return net


def majority(n: int, name: str = "maj") -> Network:
    """Majority-of-n (flat table; n must be modest)."""
    if n > 16:
        raise ValueError("flat majority limited to 16 inputs")
    return symmetric_function(n, range((n // 2) + 1, n + 1), name)


def popcount(n: int, name: str = "popcount") -> Network:
    """Population count: ``ceil(log2(n+1))`` sum outputs (rd73, rd84).

    Flat tables per output bit — intended for n <= 12.
    """
    if n > 12:
        raise ValueError("flat popcount limited to 12 inputs")
    net = Network(name)
    inputs = _input_names(net, n)
    width = (n).bit_length()
    for bit in range(width):
        mask = 0
        for idx in range(1 << n):
            if (bin(idx).count("1") >> bit) & 1:
                mask |= 1 << idx
        net.add_node(f"s{bit}_n", inputs, TruthTable(n, mask))
        net.add_output(f"s{bit}_n", f"s{bit}")
    return net


def ripple_adder(width: int, carry_in: bool = True, name: str = "adder") -> Network:
    """Structural ripple-carry adder: a + b (+ cin), sum plus carry-out.

    ``z4ml`` is ``ripple_adder(3, carry_in=True)`` (7 inputs, 4 outputs).
    """
    net = Network(name)
    a = [net.add_input(f"a{j}") for j in range(width)]
    b = [net.add_input(f"b{j}") for j in range(width)]
    carry: Optional[str] = net.add_input("cin") if carry_in else None
    for j in range(width):
        if carry is None:
            net.add_node(f"s{j}", [a[j], b[j]], _XOR2)
            net.add_node(f"c{j}", [a[j], b[j]], _AND2)
        else:
            net.add_node(f"s{j}", [a[j], b[j], carry], _XOR3)
            net.add_node(f"c{j}", [a[j], b[j], carry], _MAJ3)
        net.add_output(f"s{j}", f"sum{j}")
        carry = f"c{j}"
    net.add_output(carry, f"sum{width}")
    return net


def incrementer(width: int, name: str = "inc") -> Network:
    """v + 1 with ripple carries; outputs the incremented word + overflow."""
    net = Network(name)
    v = [net.add_input(f"v{j}") for j in range(width)]
    carry = None
    for j in range(width):
        if carry is None:
            net.add_node(f"s{j}", [v[j]], TruthTable.from_function(1, lambda x: 1 - x))
            net.add_node(f"c{j}", [v[j]], TruthTable.from_function(1, lambda x: x))
        else:
            net.add_node(f"s{j}", [v[j], carry], _XOR2)
            net.add_node(f"c{j}", [v[j], carry], _AND2)
        net.add_output(f"s{j}", f"o{j}")
        carry = f"c{j}"
    net.add_output(carry, "ovf")
    return net


def comparator(width: int, name: str = "cmp") -> Network:
    """a > b, a == b over two ``width``-bit words (bit-serial structure)."""
    net = Network(name)
    a = [net.add_input(f"a{j}") for j in range(width)]
    b = [net.add_input(f"b{j}") for j in range(width)]
    gt = None
    eq = None
    gt_tab = TruthTable.from_function(2, lambda x, y: x & (1 - y))
    eq_tab = TruthTable.from_function(2, lambda x, y: 1 - (x ^ y))
    # MSB first: gt = gt_hi | (eq_hi & gt_lo)
    for j in range(width - 1, -1, -1):
        net.add_node(f"g{j}", [a[j], b[j]], gt_tab)
        net.add_node(f"e{j}", [a[j], b[j]], eq_tab)
        if gt is None:
            gt, eq = f"g{j}", f"e{j}"
        else:
            net.add_node(
                f"gt{j}", [gt, eq, f"g{j}"],
                TruthTable.from_function(3, lambda G, E, g: G | (E & g)),
            )
            net.add_node(f"eq{j}", [eq, f"e{j}"], _AND2)
            gt, eq = f"gt{j}", f"eq{j}"
    net.add_output(gt, "gt")
    net.add_output(eq, "eq")
    return net


def alu(width: int, name: str = "alu") -> Network:
    """A small ALU: op(2 bits) selects ADD / AND / OR / XOR.

    Inputs: 2*width operand bits + 2 control = ``2*width + 2``.
    Outputs: ``width`` result bits + carry-out + zero flag =
    ``width + 2``.  ``alu(4)`` has the 10/6 profile of MCNC ``alu2``;
    ``alu(6)`` the 14/8 profile of ``alu4``.
    """
    net = Network(name)
    a = [net.add_input(f"a{j}") for j in range(width)]
    b = [net.add_input(f"b{j}") for j in range(width)]
    op0 = net.add_input("op0")
    op1 = net.add_input("op1")

    select = TruthTable.from_function(
        6,
        lambda add, land, lor, lxor, s0, s1: (
            add if (s0 == 0 and s1 == 0)
            else land if (s0 == 1 and s1 == 0)
            else lor if (s0 == 0 and s1 == 1)
            else lxor
        ),
    )
    carry = None
    result: List[str] = []
    for j in range(width):
        if carry is None:
            net.add_node(f"add{j}", [a[j], b[j]], _XOR2)
            net.add_node(f"c{j}", [a[j], b[j]], _AND2)
        else:
            net.add_node(f"add{j}", [a[j], b[j], carry], _XOR3)
            net.add_node(f"c{j}", [a[j], b[j], carry], _MAJ3)
        carry = f"c{j}"
        net.add_node(f"and{j}", [a[j], b[j]], _AND2)
        net.add_node(f"or{j}", [a[j], b[j]], _OR2)
        net.add_node(f"xor{j}", [a[j], b[j]], _XOR2)
        net.add_node(
            f"r{j}", [f"add{j}", f"and{j}", f"or{j}", f"xor{j}", op0, op1], select
        )
        net.add_output(f"r{j}", f"res{j}")
        result.append(f"r{j}")
    net.add_output(carry, "cout")
    zero = result[0]
    nor_tab = TruthTable.from_function(2, lambda x, y: 1 - (x | y))
    inv_tab = TruthTable.from_function(1, lambda x: 1 - x)
    net.add_node("nz0", [result[0]], inv_tab)
    zero = "nz0"
    for j, r in enumerate(result[1:]):
        net.add_node(f"nz{j + 1}", [zero, r], TruthTable.from_function(2, lambda z, x: z & (1 - x)))
        zero = f"nz{j + 1}"
    net.add_output(zero, "zero")
    return net


def multiplier(width: int, name: str = "mult") -> Network:
    """``width`` x ``width`` array multiplier (structural)."""
    net = Network(name)
    a = [net.add_input(f"a{j}") for j in range(width)]
    b = [net.add_input(f"b{j}") for j in range(width)]
    # Partial products.
    pp = [[None] * width for _ in range(width)]
    for i in range(width):
        for j in range(width):
            net.add_node(f"pp{i}_{j}", [a[j], b[i]], _AND2)
            pp[i][j] = f"pp{i}_{j}"
    # Row-by-row ripple accumulation.
    acc: List[Optional[str]] = [None] * (2 * width)
    for j in range(width):
        acc[j] = pp[0][j]
    for i in range(1, width):
        carry: Optional[str] = None
        for j in range(width):
            pos = i + j
            operands = [x for x in (acc[pos], pp[i][j], carry) if x is not None]
            if len(operands) == 1:
                new_sum = operands[0]
                new_carry = None
            elif len(operands) == 2:
                net.add_node(f"s{i}_{j}", operands, _XOR2)
                net.add_node(f"k{i}_{j}", operands, _AND2)
                new_sum, new_carry = f"s{i}_{j}", f"k{i}_{j}"
            else:
                net.add_node(f"s{i}_{j}", operands, _XOR3)
                net.add_node(f"k{i}_{j}", operands, _MAJ3)
                new_sum, new_carry = f"s{i}_{j}", f"k{i}_{j}"
            acc[pos] = new_sum
            carry = new_carry
        if carry is not None:
            pos = i + width
            if acc[pos] is None:
                acc[pos] = carry
            else:
                net.add_node(f"s{i}_f", [acc[pos], carry], _XOR2)
                acc[pos] = f"s{i}_f"
    for j in range(2 * width):
        if acc[j] is None:
            const = net.fresh_name("zero")
            net.add_constant(const, 0)
            acc[j] = const
        net.add_output(acc[j], f"p{j}")
    return net


def decoder(select_bits: int, name: str = "dec") -> Network:
    """Full binary decoder: ``select_bits`` inputs, ``2**select_bits`` outputs."""
    net = Network(name)
    sel = _input_names(net, select_bits, "s")
    for idx in range(1 << select_bits):
        mask = 1 << idx
        net.add_node(f"d{idx}", sel, TruthTable.from_minterms(select_bits, [idx]))
        net.add_output(f"d{idx}", f"o{idx}")
    return net


def mux_tree(select_bits: int, name: str = "mux") -> Network:
    """``2**select_bits``-to-1 multiplexer built as a tree of 2:1 muxes."""
    net = Network(name)
    data = _input_names(net, 1 << select_bits, "d")
    sel = [net.add_input(f"s{j}") for j in range(select_bits)]
    mux2 = TruthTable.from_function(3, lambda s, a, b: b if s else a)
    layer = data
    for level in range(select_bits):
        nxt = []
        for j in range(0, len(layer), 2):
            name_j = f"m{level}_{j // 2}"
            net.add_node(name_j, [sel[level], layer[j], layer[j + 1]], mux2)
            nxt.append(name_j)
        layer = nxt
    net.add_output(layer[0], "y")
    return net


def gray_encoder(width: int, name: str = "gray") -> Network:
    """Binary-to-Gray converter (XOR of neighbours)."""
    net = Network(name)
    v = [net.add_input(f"v{j}") for j in range(width)]
    net.add_output(v[width - 1], f"g{width - 1}")
    for j in range(width - 1):
        net.add_node(f"x{j}", [v[j], v[j + 1]], _XOR2)
        net.add_output(f"x{j}", f"g{j}")
    return net


def saturating_abs(in_bits: int, out_bits: int, name: str = "clip") -> Network:
    """|v| of a two's-complement input, saturated to ``out_bits`` bits.

    The 9-input/5-output instance stands in for MCNC ``clip``.
    """
    if in_bits > 12:
        raise ValueError("flat clip limited to 12 inputs")
    net = Network(name)
    inputs = _input_names(net, in_bits)
    limit = (1 << out_bits) - 1
    for bit in range(out_bits):
        mask = 0
        for idx in range(1 << in_bits):
            value = idx - (1 << in_bits) if (idx >> (in_bits - 1)) & 1 else idx
            magnitude = min(abs(value), limit)
            if (magnitude >> bit) & 1:
                mask |= 1 << idx
        net.add_node(f"m{bit}", inputs, TruthTable(in_bits, mask))
        net.add_output(f"m{bit}", f"o{bit}")
    return net
