"""Benchmark circuits: parametric generators, the MCNC registry (exact
reconstructions + documented stand-ins) and the paper's worked examples."""

from .datapath import (
    barrel_shifter,
    bin_to_bcd,
    crc_step,
    lfsr_next,
    priority_encoder,
    saturating_adder,
)
from .generators import (
    alu,
    comparator,
    decoder,
    gray_encoder,
    incrementer,
    majority,
    multiplier,
    mux_tree,
    parity,
    popcount,
    ripple_adder,
    saturating_abs,
    symmetric_function,
)
from .mcnc import CIRCUITS, CircuitSpec, build, names, names_by_class
from .paper_examples import (
    example_3_1_function,
    example_3_2_partitions,
    example_4_1_ingredients,
    example_4_2_partitions,
)
from .synthetic import layered_network, sbox_network, windowed_network

__all__ = [
    "priority_encoder",
    "barrel_shifter",
    "crc_step",
    "lfsr_next",
    "bin_to_bcd",
    "saturating_adder",
    "symmetric_function",
    "parity",
    "majority",
    "popcount",
    "ripple_adder",
    "incrementer",
    "comparator",
    "alu",
    "multiplier",
    "decoder",
    "mux_tree",
    "gray_encoder",
    "saturating_abs",
    "windowed_network",
    "layered_network",
    "sbox_network",
    "CIRCUITS",
    "CircuitSpec",
    "build",
    "names",
    "names_by_class",
    "example_3_1_function",
    "example_3_2_partitions",
    "example_4_1_ingredients",
    "example_4_2_partitions",
]
