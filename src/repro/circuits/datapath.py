"""Additional datapath/control generators (beyond the MCNC profiles).

These widen the benchmark net for users of the library: priority
encoders, barrel shifters, CRC/LFSR next-state logic, BCD conversion and
saturating arithmetic — the kinds of blocks LUT mappers meet in practice.
All are structural (small nodes), so they scale to wide words.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..boolfunc import TruthTable
from ..network import Network

__all__ = [
    "priority_encoder",
    "barrel_shifter",
    "crc_step",
    "lfsr_next",
    "bin_to_bcd",
    "saturating_adder",
]

_AND2 = TruthTable.from_function(2, lambda a, b: a & b)
_OR2 = TruthTable.from_function(2, lambda a, b: a | b)
_XOR2 = TruthTable.from_function(2, lambda a, b: a ^ b)
_MUX = TruthTable.from_function(3, lambda s, a, b: b if s else a)
_NOT = TruthTable.from_function(1, lambda a: 1 - a)


def priority_encoder(width: int, name: str = "prio") -> Network:
    """Highest-set-bit encoder: ``ceil(log2 width)`` index bits + valid.

    Input ``r{width-1}`` has the highest priority.
    """
    net = Network(name)
    req = [net.add_input(f"r{j}") for j in range(width)]
    # valid = OR of all requests (chain).
    acc = req[0]
    for j, r in enumerate(req[1:]):
        net.add_node(f"v{j}", [acc, r], _OR2)
        acc = f"v{j}"
    net.add_output(acc, "valid")
    # grant[j] = r[j] & none of the higher requests.
    higher: List[Optional[str]] = [None] * width
    above = None
    for j in range(width - 1, -1, -1):
        higher[j] = above
        if above is None:
            above = req[j]
        else:
            net.add_node(f"hi{j}", [above, req[j]], _OR2)
            above = f"hi{j}"
    grants: List[str] = []
    for j in range(width):
        if higher[j] is None:
            grants.append(req[j])
            continue
        net.add_node(
            f"g{j}", [req[j], higher[j]],
            TruthTable.from_function(2, lambda r, h: r & (1 - h)),
        )
        grants.append(f"g{j}")
    # index bits = OR of grants whose position has that bit set.
    bits = max(1, (width - 1).bit_length())
    for b in range(bits):
        members = [grants[j] for j in range(width) if (j >> b) & 1]
        if not members:
            zero = net.fresh_name("zero")
            net.add_constant(zero, 0)
            net.add_output(zero, f"idx{b}")
            continue
        acc = members[0]
        for i, g in enumerate(members[1:]):
            node = f"ix{b}_{i}"
            net.add_node(node, [acc, g], _OR2)
            acc = node
        net.add_output(acc, f"idx{b}")
    return net


def barrel_shifter(width: int, name: str = "barrel") -> Network:
    """Logarithmic left-rotate: data word rotated by a binary amount."""
    net = Network(name)
    data = [net.add_input(f"d{j}") for j in range(width)]
    stages = max(1, (width - 1).bit_length())
    sel = [net.add_input(f"s{b}") for b in range(stages)]
    layer = data
    for b in range(stages):
        shift = 1 << b
        nxt: List[str] = []
        for j in range(width):
            src_rot = layer[(j - shift) % width]
            node = f"m{b}_{j}"
            net.add_node(node, [sel[b], layer[j], src_rot], _MUX)
            nxt.append(node)
        layer = nxt
    for j in range(width):
        net.add_output(layer[j], f"q{j}")
    return net


def crc_step(
    width: int, polynomial: int, name: str = "crc"
) -> Network:
    """One serial CRC step: next state of a ``width``-bit CRC register.

    ``polynomial`` gives the feedback taps (bit j set -> state bit j is
    XORed with the feedback).  Inputs: state bits + one data bit.
    """
    net = Network(name)
    state = [net.add_input(f"c{j}") for j in range(width)]
    din = net.add_input("din")
    net.add_node("fb", [state[width - 1], din], _XOR2)
    for j in range(width):
        below = state[j - 1] if j > 0 else None
        if (polynomial >> j) & 1:
            if below is None:
                net.add_node(f"n{j}", ["fb"], TruthTable.from_function(1, lambda x: x))
            else:
                net.add_node(f"n{j}", [below, "fb"], _XOR2)
        else:
            source = below if below is not None else None
            if source is None:
                zero = net.fresh_name("zero")
                net.add_constant(zero, 0)
                source = zero
            net.add_node(f"n{j}", [source], TruthTable.from_function(1, lambda x: x))
        net.add_output(f"n{j}", f"q{j}")
    return net


def lfsr_next(width: int, taps: Sequence[int], name: str = "lfsr") -> Network:
    """Next state of a Fibonacci LFSR with the given tap positions."""
    net = Network(name)
    state = [net.add_input(f"s{j}") for j in range(width)]
    if not taps:
        raise ValueError("need at least one tap")
    acc = state[taps[0]]
    for i, t in enumerate(taps[1:]):
        net.add_node(f"fb{i}", [acc, state[t]], _XOR2)
        acc = f"fb{i}"
    # Shift: q[0] = feedback, q[j] = s[j-1].
    net.add_output(acc, "q0")
    for j in range(1, width):
        net.add_output(state[j - 1], f"q{j}")
    return net


def bin_to_bcd(bits: int, name: str = "bcd") -> Network:
    """Binary to BCD (double-dabble unrolled; flat per-digit tables).

    Limited to ``bits <= 10`` so the flat tables stay small.
    """
    if bits > 10:
        raise ValueError("flat bin_to_bcd limited to 10 bits")
    net = Network(name)
    inputs = [net.add_input(f"b{j}") for j in range(bits)]
    max_value = (1 << bits) - 1
    digits = len(str(max_value))
    for d in range(digits):
        for bit in range(4):
            mask = 0
            for v in range(1 << bits):
                digit = (v // (10 ** d)) % 10
                if (digit >> bit) & 1:
                    mask |= 1 << v
            table = TruthTable(bits, mask)
            reduced, kept = table.minimize_support()
            node = f"d{d}_{bit}"
            if reduced.num_inputs == 0:
                net.add_constant(node, 1 if reduced.mask else 0)
            else:
                net.add_node(node, [inputs[i] for i in kept], reduced)
            net.add_output(node, f"bcd{d}_{bit}")
    return net


def saturating_adder(width: int, name: str = "sadd") -> Network:
    """Unsigned a + b with saturation at 2**width - 1."""
    net = Network(name)
    a = [net.add_input(f"a{j}") for j in range(width)]
    b = [net.add_input(f"b{j}") for j in range(width)]
    maj3 = TruthTable.from_function(3, lambda x, y, z: 1 if x + y + z >= 2 else 0)
    xor3 = TruthTable.from_function(3, lambda x, y, z: x ^ y ^ z)
    carry = None
    sums: List[str] = []
    for j in range(width):
        if carry is None:
            net.add_node(f"s{j}", [a[j], b[j]], _XOR2)
            net.add_node(f"c{j}", [a[j], b[j]], _AND2)
        else:
            net.add_node(f"s{j}", [a[j], b[j], carry], xor3)
            net.add_node(f"c{j}", [a[j], b[j], carry], maj3)
        sums.append(f"s{j}")
        carry = f"c{j}"
    for j in range(width):
        net.add_node(f"o{j}_n", [sums[j], carry], _OR2)  # saturate on ovf
        net.add_output(f"o{j}_n", f"o{j}")
    net.add_output(carry, "sat")
    return net
