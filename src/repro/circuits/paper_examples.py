"""The worked examples of the paper, reconstructed as data and circuits.

* Example 3.2 / Figures 4-7: the ten partitions Π0..Π9 — given verbatim
  in the paper, reproduced here exactly.
* Example 4.2 / Figure 10: the three 16-position partitions of f0, f1, f2.
* Example 3.1 / Figures 1-2: the paper prints the function only as a
  chart image, so :func:`example_3_1_function` *reconstructs* a function
  with the stated properties — five relevant inputs, λ = {a, b, c}, three
  compatible classes, and encodings that change the class count of the
  subsequent decomposition of g (the property Figure 2 demonstrates).
* Example 4.1 / Figures 8-9: four ingredient functions with the stated
  support profile (9/7/6/6 inputs) for the duplication-cone experiment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bdd import BddManager
from ..boolfunc import TruthTable
from ..decompose import Partition
from ..network import Network

__all__ = [
    "example_3_2_partitions",
    "example_4_2_partitions",
    "example_3_1_function",
    "example_4_1_ingredients",
]


def example_3_2_partitions() -> List[Partition]:
    """The ten partitions of Example 3.2, verbatim from the paper."""
    raw = [
        (0, 1, 2, 3),
        (0, 2, 1, 3),
        (3, 0, 1, 3),
        (2, 1, 0, 1),
        (0, 1, 3, 1),
        (0, 1, 0, 2),
        (1, 0, 0, 0),
        (1, 1, 2, 1),
        (1, 2, 1, 2),
        (3, 2, 1, 0),
    ]
    return [Partition(t) for t in raw]


def example_4_2_partitions() -> List[Partition]:
    """Π0, Π1, Π2 of Example 4.2, verbatim from the paper."""
    raw = [
        (0, 0, 1, 0, 1, 2, 2, 0, 3, 2, 0, 0, 0, 0, 0, 2),
        (0, 1, 2, 0, 2, 3, 3, 2, 4, 3, 0, 2, 1, 5, 1, 3),
        (0, 1, 1, 0, 1, 2, 2, 3, 3, 2, 0, 3, 1, 4, 5, 2),
    ]
    return [Partition(t) for t in raw]


def example_3_1_function() -> Tuple[BddManager, int, List[int], List[int]]:
    """A 6-input function with Example 3.1's structure.

    Returns ``(manager, f, bound_levels, free_levels)`` where the bound
    set {a, b, c} yields exactly three compatible classes.  The class
    functions over (x, y, z) are chosen so that different encodings give
    different class counts in the decomposition of g with λ' = {α0, x, y}
    — the phenomenon Figure 2 illustrates.
    """
    manager = BddManager()
    for name in ("a", "b", "c", "x", "y", "z"):
        manager.add_var(name)
    x = manager.var("x")
    y = manager.var("y")
    z = manager.var("z")

    # Three deliberately-different class functions over (x, y, z):
    # fc0 = x & y, fc1 = x ^ z, fc2 = y | z.
    fc0 = manager.apply_and(x, y)
    fc1 = manager.apply_xor(x, z)
    fc2 = manager.apply_or(y, z)
    class_functions = [fc0, fc1, fc2]

    # λ-assignment -> class: abc in {000,001,010} -> 0, {011,100,101} -> 1,
    # {110,111} -> 2 (three non-trivially distributed classes).
    class_of_position = [0, 0, 0, 1, 1, 1, 2, 2]

    from ..bdd import build_cube

    f = 0
    for position, cls in enumerate(class_of_position):
        assignment = {lv: (position >> lv) & 1 for lv in range(3)}
        cube = build_cube(manager, assignment)
        f = manager.apply_or(f, manager.apply_and(cube, class_functions[cls]))
    return manager, f, [0, 1, 2], [3, 4, 5]


def example_4_1_ingredients() -> Tuple[Network, int]:
    """Four functions with Example 4.1's support profile (9/7/6/6).

    f0 uses i0..i5 plus i7, i8 (and i6 is absent, as in the paper's
    signature f0(i0..i5, i7, i8)); f1 uses i0..i6; f2, f3 use i0..i5.
    Returns the multi-output network and the LUT size k = 5 used in the
    example.
    """
    net = Network("ex41")
    inputs = [net.add_input(f"i{j}") for j in range(9)]

    def sym_table(n: int, counts) -> TruthTable:
        mask = 0
        for idx in range(1 << n):
            if bin(idx).count("1") in counts:
                mask |= 1 << idx
        return TruthTable(n, mask)

    base6 = inputs[:6]
    # Shared 6-input cores with different thresholds, plus extra inputs
    # for f0/f1 so the supports match the example's signatures.
    net.add_node("core_a", base6, sym_table(6, {2, 3}))
    net.add_node("core_b", base6, sym_table(6, {3, 4, 5}))
    xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
    xor2 = TruthTable.from_function(2, lambda a, b: a ^ b)
    net.add_node("f0_n", ["core_a", inputs[7], inputs[8]], xor3)
    net.add_node("f1_n", ["core_b", inputs[6]], xor2)
    net.add_node("f2_n", ["core_a", "core_b"], TruthTable.from_function(2, lambda a, b: a & b))
    net.add_node("f3_n", ["core_a", "core_b"], TruthTable.from_function(2, lambda a, b: a | b))
    for j in range(4):
        net.add_output(f"f{j}_n", f"f{j}")
    return net, 5
