"""Seeded synthetic circuits standing in for unavailable MCNC benchmarks.

The MCNC'91 benchmark files are not distributable here, so benchmarks
without a publicly known functional definition are replaced by
deterministic pseudo-random circuits with the same PI/PO profile and a
comparable decomposition workload (see DESIGN.md, "Substitutions").

Two families:

* :func:`windowed_network` — every output is a random function of a
  contiguous window of inputs (window width ~8-11), giving each output a
  genuinely wide support that the decomposition flow must break up, while
  keeping global BDDs tractable;
* :func:`layered_network` — adds intermediate random layers so the
  netlist is multi-level like the optimised circuits the paper maps.

All randomness is derived from ``random.Random(seed)``; the same name and
seed always produce the identical circuit.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence

from ..boolfunc import TruthTable
from ..network import Network

__all__ = ["windowed_network", "layered_network", "sbox_network"]


def _random_table(rng: random.Random, arity: int) -> TruthTable:
    """A random non-degenerate truth table of the given arity."""
    size = 1 << arity
    while True:
        mask = rng.getrandbits(size)
        table = TruthTable(arity, mask)
        if not table.is_constant() and len(table.support()) == arity:
            return table


def windowed_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    window: int = 9,
    seed: int = 0,
) -> Network:
    """Outputs are random functions of rotating input windows."""
    if window > num_inputs:
        window = num_inputs
    rng = random.Random(seed * 1000003 + zlib.crc32(f"windowed:{name}".encode()))
    net = Network(name)
    inputs = [net.add_input(f"i{j}") for j in range(num_inputs)]
    stride = max(1, num_inputs // max(1, num_outputs))
    for o in range(num_outputs):
        start = (o * stride) % num_inputs
        fanins = [inputs[(start + j) % num_inputs] for j in range(window)]
        table = _random_table(rng, window)
        net.add_node(f"w{o}", fanins, table)
        net.add_output(f"w{o}", f"o{o}")
    return net


def layered_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    nodes_per_layer: int,
    num_layers: int = 2,
    fanin: int = 4,
    seed: int = 0,
) -> Network:
    """Multi-level random logic: layers of random ``fanin``-input nodes."""
    rng = random.Random(seed * 1000003 + zlib.crc32(f"layered:{name}".encode()))
    net = Network(name)
    signals: List[str] = [net.add_input(f"i{j}") for j in range(num_inputs)]
    for layer in range(num_layers):
        fresh: List[str] = []
        for n in range(nodes_per_layer):
            arity = min(fanin, len(signals))
            fanins = rng.sample(signals, arity)
            node = f"l{layer}_{n}"
            net.add_node(node, fanins, _random_table(rng, arity))
            fresh.append(node)
        signals = signals + fresh
    candidates = [s for s in signals if not net.is_input(s)]
    for o in range(num_outputs):
        driver = candidates[
            (o * max(1, len(candidates) // num_outputs)) % len(candidates)
        ]
        net.add_output(driver, f"o{o}")
    return net


def sbox_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    sbox_in: int = 6,
    sbox_out: int = 4,
    seed: int = 0,
) -> Network:
    """An S-box/XOR structure in the spirit of a DES round.

    Random ``sbox_in``->``sbox_out`` substitution boxes read rotating
    windows of the inputs; outputs XOR pairs of S-box bits with an input
    bit, giving wide, deep multi-output logic (the ``des`` stand-in).
    """
    rng = random.Random(seed * 1000003 + zlib.crc32(f"sbox:{name}".encode()))
    net = Network(name)
    inputs = [net.add_input(f"i{j}") for j in range(num_inputs)]
    num_boxes = max(1, (num_outputs + sbox_out - 1) // sbox_out)
    sbox_bits: List[str] = []
    for b in range(num_boxes):
        start = (b * sbox_in) % num_inputs
        fanins = [inputs[(start + j) % num_inputs] for j in range(sbox_in)]
        for bit in range(sbox_out):
            node = f"sb{b}_{bit}"
            net.add_node(node, fanins, _random_table(rng, sbox_in))
            sbox_bits.append(node)
    xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
    for o in range(num_outputs):
        a = sbox_bits[o % len(sbox_bits)]
        b = sbox_bits[(o * 7 + 3) % len(sbox_bits)]
        c = inputs[(o * 13) % num_inputs]
        if a == b:
            b = sbox_bits[(o * 7 + 4) % len(sbox_bits)]
        node = f"x{o}"
        net.add_node(node, [a, b, c], xor3)
        net.add_output(node, f"o{o}")
    return net
