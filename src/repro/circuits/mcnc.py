"""MCNC'91 benchmark registry: exact reconstructions and documented stand-ins.

The paper evaluates on MCNC benchmark circuits, which are not available in
this offline environment.  Each entry below either reconstructs the
benchmark's *known* function exactly (``exact=True``) or substitutes a
deterministic circuit with the same PI/PO profile and a comparable
decomposition workload (``exact=False``; the ``note`` documents the
substitution).  Either way the evaluation compares mapping *flows* on
identical inputs, so the relative results remain meaningful; absolute CLB
and LUT counts are not expected to match the 1998 tables.

``size_class`` drives the benchmark harness: ``small`` circuits run by
default, ``medium`` adds a few seconds each, ``large`` runs only with
``REPRO_FULL=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..boolfunc import TruthTable
from ..network import Network
from . import generators as gen
from . import synthetic as syn

__all__ = ["CircuitSpec", "CIRCUITS", "build", "names", "names_by_class"]


@dataclass(frozen=True)
class CircuitSpec:
    """One benchmark circuit: profile, provenance and builder."""

    name: str
    num_inputs: int
    num_outputs: int
    exact: bool
    size_class: str  # "small" | "medium" | "large"
    note: str
    builder: Callable[[], Network]


def _arith_flat(
    name: str, in_bits: int, out_bits: int, fn: Callable[[int], int]
) -> Network:
    """Flat network: out = fn(v) over an ``in_bits``-bit input word."""
    net = Network(name)
    inputs = [net.add_input(f"i{j}") for j in range(in_bits)]
    for bit in range(out_bits):
        mask = 0
        for idx in range(1 << in_bits):
            if (fn(idx) >> bit) & 1:
                mask |= 1 << idx
        net.add_node(f"b{bit}", inputs, TruthTable(in_bits, mask))
        net.add_output(f"b{bit}", f"o{bit}")
    return net


def _count_circuit() -> Network:
    """``count`` stand-in: 16-bit maskable incrementer (35 in / 16 out).

    Inputs: 16 data bits, 16 enable-mask bits, carry-in, two mode bits.
    out = mode ? (data + cin) & mask-gated ripple : data XOR mask.
    """
    net = Network("count")
    data = [net.add_input(f"d{j}") for j in range(16)]
    mask = [net.add_input(f"m{j}") for j in range(16)]
    cin = net.add_input("cin")
    m0 = net.add_input("mode0")
    m1 = net.add_input("mode1")
    xor2 = TruthTable.from_function(2, lambda a, b: a ^ b)
    and2 = TruthTable.from_function(2, lambda a, b: a & b)
    carry = cin
    for j in range(16):
        # Gated ripple increment: bit toggles when carry & mask allow.
        net.add_node(f"g{j}", [carry, mask[j]], and2)
        net.add_node(f"s{j}", [data[j], f"g{j}"], xor2)
        net.add_node(f"c{j}", [data[j], f"g{j}"], and2)
        net.add_node(f"x{j}", [data[j], mask[j]], xor2)
        sel = TruthTable.from_function(
            4, lambda s, x, a, b: (s if a and not b else x if b and not a else s ^ x)
        )
        net.add_node(f"o{j}_n", [f"s{j}", f"x{j}", m0, m1], sel)
        net.add_output(f"o{j}_n", f"o{j}")
        carry = f"c{j}"
    return net


def _c499_circuit() -> Network:
    """``C499`` stand-in: a 32-bit single-error-correction style circuit.

    The real C499 is a (41, 32) SEC decoder: XOR-heavy syndrome logic.
    This reconstruction computes a 5-bit syndrome from 32 data + 8 check
    inputs (+1 enable) and conditionally flips the addressed data bit —
    the same XOR-dominated, wide structure.
    """
    net = Network("C499")
    data = [net.add_input(f"d{j}") for j in range(32)]
    check = [net.add_input(f"c{j}") for j in range(8)]
    enable = net.add_input("en")
    xor2 = TruthTable.from_function(2, lambda a, b: a ^ b)
    # Five syndrome bits: parities of deterministic data subsets + checks.
    syndromes: List[str] = []
    for s in range(5):
        members = [data[j] for j in range(32) if (j >> s) & 1 or j % (s + 2) == 0]
        members.append(check[s % 8])
        acc = members[0]
        for idx, sig in enumerate(members[1:]):
            node = f"sy{s}_{idx}"
            net.add_node(node, [acc, sig], xor2)
            acc = node
        syndromes.append(acc)
    flip = TruthTable.from_function(
        7,
        lambda d, en, s0, s1, s2, s3, s4: d ^ (en & s0 & s1 & (s2 ^ s3 ^ s4)),
    )
    for j in range(32):
        net.add_node(f"o{j}_n", [data[j], enable] + syndromes, flip)
        net.add_output(f"o{j}_n", f"o{j}")
    return net


def _c880_circuit() -> Network:
    """``C880`` stand-in: 8-bit ALU slice network (60 in / 26 out).

    The real C880 is an 8-bit ALU.  This reconstruction: an 8-bit
    add/logic unit plus a comparator and mux-selected pass-through banks
    to reach the 60/26 profile.
    """
    net = Network("C880")
    a = [net.add_input(f"a{j}") for j in range(8)]
    b = [net.add_input(f"b{j}") for j in range(8)]
    c = [net.add_input(f"c{j}") for j in range(8)]
    d = [net.add_input(f"d{j}") for j in range(8)]
    e = [net.add_input(f"e{j}") for j in range(8)]
    f = [net.add_input(f"f{j}") for j in range(8)]
    ctl = [net.add_input(f"k{j}") for j in range(12)]
    xor3 = TruthTable.from_function(3, lambda x, y, z: x ^ y ^ z)
    maj3 = TruthTable.from_function(3, lambda x, y, z: 1 if x + y + z >= 2 else 0)
    mux2 = TruthTable.from_function(3, lambda s, x, y: y if s else x)
    carry = ctl[0]
    sums: List[str] = []
    for j in range(8):
        net.add_node(f"sum{j}", [a[j], b[j], carry], xor3)
        net.add_node(f"car{j}", [a[j], b[j], carry], maj3)
        carry = f"car{j}"
        sums.append(f"sum{j}")
    for j in range(8):
        net.add_node(f"mx{j}", [ctl[1 + (j % 4)], sums[j], c[j]], mux2)
        net.add_node(f"my{j}", [ctl[5 + (j % 4)], d[j], e[j]], mux2)
        net.add_node(
            f"out{j}_n", [ctl[9], f"mx{j}", f"my{j}"], mux2
        )
        net.add_output(f"out{j}_n", f"out{j}")
        net.add_node(
            f"aux{j}_n", [f[j], f"mx{j}", ctl[10]], xor3
        )
        net.add_output(f"aux{j}_n", f"aux{j}")
    net.add_output(carry, "cout")
    # Wide AND-reduce and parity flags over mixed operands.
    and2 = TruthTable.from_function(2, lambda x, y: x & y)
    xor2 = TruthTable.from_function(2, lambda x, y: x ^ y)
    acc_and, acc_xor = a[0], b[0]
    for j in range(1, 8):
        net.add_node(f"ra{j}", [acc_and, c[j]], and2)
        net.add_node(f"rx{j}", [acc_xor, d[j]], xor2)
        acc_and, acc_xor = f"ra{j}", f"rx{j}"
    net.add_output(acc_and, "allc")
    net.add_output(acc_xor, "pard")
    # Comparator flags on (e, f) complete the 26 outputs.
    gt_tab = TruthTable.from_function(2, lambda x, y: x & (1 - y))
    eq_tab = TruthTable.from_function(2, lambda x, y: 1 - (x ^ y))
    gt: Optional[str] = None
    eq: Optional[str] = None
    for j in range(7, -1, -1):
        net.add_node(f"cg{j}", [e[j], f[j]], gt_tab)
        net.add_node(f"ce{j}", [e[j], f[j]], eq_tab)
        if gt is None:
            gt, eq = f"cg{j}", f"ce{j}"
        else:
            net.add_node(
                f"cgt{j}", [gt, eq, f"cg{j}"],
                TruthTable.from_function(3, lambda G, E, g: G | (E & g)),
            )
            net.add_node(f"ceq{j}", [eq, f"ce{j}"], and2)
            gt, eq = f"cgt{j}", f"ceq{j}"
    net.add_output(gt, "gt")
    net.add_output(eq, "eq")
    # Mode-qualified zero flag plus raw high sum bits round out the 26
    # outputs.
    net.add_node("zf", [acc_and, ctl[11]], and2)
    net.add_output("zf", "zflag")
    for j in range(4, 8):
        net.add_output(f"sum{j}", f"rawsum{j}")
    return net


def _spec_list() -> List[CircuitSpec]:
    return [
        CircuitSpec(
            "5xp1", 7, 10, False, "small",
            "substitute: out = v*5 + 1 over a 7-bit word (profile-matched "
            "arithmetic; the MCNC PLA is unavailable)",
            lambda: _arith_flat("5xp1", 7, 10, lambda v: v * 5 + 1),
        ),
        CircuitSpec(
            "9sym", 9, 1, True, "small",
            "exact: 1 iff popcount in {3,4,5,6}",
            lambda: gen.symmetric_function(9, {3, 4, 5, 6}, "9sym"),
        ),
        CircuitSpec(
            "alu2", 10, 6, False, "medium",
            "substitute: 4-bit ALU (add/and/or/xor + carry + zero), same "
            "10/6 profile as the MCNC alu2",
            lambda: gen.alu(4, "alu2"),
        ),
        CircuitSpec(
            "alu4", 14, 8, False, "medium",
            "substitute: 6-bit ALU, same 14/8 profile as the MCNC alu4",
            lambda: gen.alu(6, "alu4"),
        ),
        CircuitSpec(
            "apex4", 9, 19, False, "medium",
            "substitute: 19 seeded random 9-input functions (apex4 is a "
            "dense 9/19 PLA)",
            lambda: syn.windowed_network("apex4", 9, 19, window=9, seed=4),
        ),
        CircuitSpec(
            "apex6", 135, 99, False, "medium",
            "substitute: seeded two-level random logic with the 135/99 "
            "profile",
            lambda: syn.layered_network(
                "apex6", 135, 99, nodes_per_layer=90, num_layers=2, seed=6
            ),
        ),
        CircuitSpec(
            "apex7", 49, 37, False, "medium",
            "substitute: seeded layered random logic, 49/37 profile",
            lambda: syn.layered_network(
                "apex7", 49, 37, nodes_per_layer=40, num_layers=2, seed=7
            ),
        ),
        CircuitSpec(
            "b9", 41, 21, False, "medium",
            "substitute: seeded layered random logic, 41/21 profile",
            lambda: syn.layered_network(
                "b9", 41, 21, nodes_per_layer=30, num_layers=2, seed=9
            ),
        ),
        CircuitSpec(
            "clip", 9, 5, False, "small",
            "substitute: saturating |v| of a 9-bit two's-complement word "
            "clipped to 5 bits (clip's published role is signal clipping)",
            lambda: gen.saturating_abs(9, 5, "clip"),
        ),
        CircuitSpec(
            "count", 35, 16, False, "medium",
            "substitute: 16-bit maskable incrementer, 35/16 profile "
            "(count is a counter-style circuit)",
            _count_circuit,
        ),
        CircuitSpec(
            "des", 256, 245, False, "large",
            "substitute: S-box/XOR round structure (6->4 seeded S-boxes), "
            "256/245 profile",
            lambda: syn.sbox_network("des", 256, 245, seed=56),
        ),
        CircuitSpec(
            "duke2", 22, 29, False, "medium",
            "substitute: seeded layered random logic, 22/29 profile",
            lambda: syn.layered_network(
                "duke2", 22, 29, nodes_per_layer=35, num_layers=2, seed=2
            ),
        ),
        CircuitSpec(
            "e64", 65, 65, False, "large",
            "substitute: seeded windowed random logic (8-input windows), "
            "65/65 profile",
            lambda: syn.windowed_network("e64", 65, 65, window=8, seed=64),
        ),
        CircuitSpec(
            "f51m", 8, 8, False, "small",
            "substitute: out = v*51 mod 256 over an 8-bit word "
            "(profile-matched arithmetic)",
            lambda: _arith_flat("f51m", 8, 8, lambda v: (v * 51) & 0xFF),
        ),
        CircuitSpec(
            "misex1", 8, 7, False, "small",
            "substitute: seeded two-level random logic, 8/7 profile "
            "(layered structure decomposes like the original PLA, unlike "
            "flat random tables)",
            lambda: syn.layered_network(
                "misex1", 8, 7, nodes_per_layer=10, num_layers=2, seed=1
            ),
        ),
        CircuitSpec(
            "misex2", 25, 18, False, "medium",
            "substitute: seeded two-level random logic, 25/18 profile "
            "(misex2 outputs have small supports)",
            lambda: syn.layered_network(
                "misex2", 25, 18, nodes_per_layer=24, num_layers=2, seed=2
            ),
        ),
        CircuitSpec(
            "misex3", 14, 14, False, "medium",
            "substitute: seeded layered random logic, 14/14 profile",
            lambda: syn.layered_network(
                "misex3", 14, 14, nodes_per_layer=20, num_layers=2, seed=3
            ),
        ),
        CircuitSpec(
            "rd73", 7, 3, True, "small",
            "exact: 7-input popcount (3 sum bits)",
            lambda: gen.popcount(7, "rd73"),
        ),
        CircuitSpec(
            "rd84", 8, 4, True, "small",
            "exact: 8-input popcount (4 sum bits)",
            lambda: gen.popcount(8, "rd84"),
        ),
        CircuitSpec(
            "rot", 135, 107, False, "medium",
            "substitute: seeded layered random logic, 135/107 profile",
            lambda: syn.layered_network(
                "rot", 135, 107, nodes_per_layer=100, num_layers=2, seed=8
            ),
        ),
        CircuitSpec(
            "sao2", 10, 4, False, "small",
            "substitute: seeded two-level random logic, 10/4 profile",
            lambda: syn.layered_network(
                "sao2", 10, 4, nodes_per_layer=12, num_layers=2, seed=10
            ),
        ),
        CircuitSpec(
            "vg2", 25, 8, False, "medium",
            "substitute: seeded two-level random logic, 25/8 profile",
            lambda: syn.layered_network(
                "vg2", 25, 8, nodes_per_layer=20, num_layers=2, seed=22
            ),
        ),
        CircuitSpec(
            "z4ml", 7, 4, True, "small",
            "exact: 3-bit + 3-bit + carry-in ripple adder (4-bit sum)",
            lambda: gen.ripple_adder(3, carry_in=True, name="z4ml"),
        ),
        CircuitSpec(
            "C499", 41, 32, False, "medium",
            "substitute: 32-bit SEC-style syndrome/correct circuit, 41/32 "
            "profile (C499 is an error-correction circuit)",
            _c499_circuit,
        ),
        CircuitSpec(
            "C880", 60, 26, False, "medium",
            "substitute: 8-bit ALU-style datapath, 60/26 profile (C880 is "
            "an 8-bit ALU)",
            _c880_circuit,
        ),
    ]


CIRCUITS: Dict[str, CircuitSpec] = {spec.name: spec for spec in _spec_list()}


def build(name: str) -> Network:
    """Instantiate a registered benchmark circuit by name."""
    spec = CIRCUITS.get(name)
    if spec is None:
        raise KeyError(f"unknown circuit {name!r}; known: {sorted(CIRCUITS)}")
    net = spec.builder()
    if len(net.inputs) != spec.num_inputs or len(net.outputs) != spec.num_outputs:
        raise AssertionError(
            f"{name}: built {len(net.inputs)}/{len(net.outputs)}, "
            f"spec says {spec.num_inputs}/{spec.num_outputs}"
        )
    return net


def names(size_classes: Optional[List[str]] = None) -> List[str]:
    """Registered circuit names, optionally filtered by size class."""
    if size_classes is None:
        return sorted(CIRCUITS)
    return sorted(
        n for n, spec in CIRCUITS.items() if spec.size_class in size_classes
    )


def names_by_class() -> Dict[str, List[str]]:
    """Circuit names grouped by size class."""
    out: Dict[str, List[str]] = {}
    for name, spec in sorted(CIRCUITS.items()):
        out.setdefault(spec.size_class, []).append(name)
    return out
