"""Technology-mapping flows: HYDE, baselines, LUT costing, XC3000 CLB
packing and support-minimising resubstitution."""

from .baselines import (
    map_column_encoding,
    map_per_output,
    map_per_output_resub,
    map_shannon,
)
from .clb import ClbPacking, can_pair, pack_xc3000
from .hyde import MapResult, cluster_outputs, hyde_map
from .lut import absorb_inverters, cleanup_for_lut_count, count_luts, dedup_nodes
from .parallel import RunReport, TaskPolicy, run_group_tasks, structural_fragment
from .resub import functionally_dependent, resubstitute
from .structural import map_structural
from .time_multiplex import TimeMultiplexResult, map_time_multiplexed
from .ti_extract import ExtractionReport, extract_common_sublogic

__all__ = [
    "MapResult",
    "hyde_map",
    "cluster_outputs",
    "map_per_output",
    "map_per_output_resub",
    "map_column_encoding",
    "map_shannon",
    "count_luts",
    "absorb_inverters",
    "dedup_nodes",
    "cleanup_for_lut_count",
    "ClbPacking",
    "pack_xc3000",
    "can_pair",
    "resubstitute",
    "functionally_dependent",
    "ExtractionReport",
    "extract_common_sublogic",
    "map_structural",
    "TimeMultiplexResult",
    "map_time_multiplexed",
    "TaskPolicy",
    "RunReport",
    "run_group_tasks",
    "structural_fragment",
]
