"""Xilinx XC3000 CLB packing (the target architecture of paper Table 1).

An XC3000 configurable logic block computes either one combinational
function of up to five inputs, or two functions of up to four inputs each
whose *combined* distinct inputs number at most five.  Packing k-feasible
LUT nodes into CLBs is therefore a pairing problem; we solve it as a
maximum-cardinality matching on the pairability graph (the role of SIS's
``xl_partition -tm`` in the paper's script).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..network import Network

__all__ = ["ClbPacking", "pack_xc3000", "can_pair"]

_MAX_SINGLE_INPUTS = 5
_MAX_PAIR_EACH = 4
_MAX_PAIR_UNION = 5


def can_pair(fanins_a: Sequence[str], fanins_b: Sequence[str]) -> bool:
    """May two LUT nodes share one XC3000 CLB?"""
    if len(fanins_a) > _MAX_PAIR_EACH or len(fanins_b) > _MAX_PAIR_EACH:
        return False
    return len(set(fanins_a) | set(fanins_b)) <= _MAX_PAIR_UNION


@dataclass
class ClbPacking:
    """A CLB assignment: pairs plus singleton blocks."""

    pairs: List[Tuple[str, str]]
    singles: List[str]

    @property
    def num_clbs(self) -> int:
        return len(self.pairs) + len(self.singles)


def pack_xc3000(net: Network, exact_limit: int = 400) -> ClbPacking:
    """Pack the network's LUT nodes into XC3000 CLBs.

    Every node must have at most five fan-ins.  Constant (zero-input)
    nodes cost nothing.  A node may be paired with a node it feeds
    (XC3000 allows internal feed); only the input-count rule matters.

    Pairing is a maximum matching: exact (blossom) up to ``exact_limit``
    nodes, greedy first-fit beyond that — the blossom algorithm's cubic
    cost is prohibitive on thousand-node networks and greedy pairing is
    within a few percent there.
    """
    nodes = [n for n in net.nodes() if n.table.num_inputs > 0]
    for n in nodes:
        if len(n.fanins) > _MAX_SINGLE_INPUTS:
            raise ValueError(
                f"node {n.name} has {len(n.fanins)} inputs; not CLB-mappable"
            )
    names = [n.name for n in nodes]
    if len(nodes) > exact_limit:
        pairs, paired = _greedy_pairs(nodes)
    else:
        pairs, paired = _matching_pairs(nodes)
    singles = [name for name in names if name not in paired]
    pairs.sort()
    singles.sort()
    return ClbPacking(pairs=pairs, singles=singles)


def _matching_pairs(nodes) -> Tuple[List[Tuple[str, str]], Set[str]]:
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(n.name for n in nodes)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if can_pair(a.fanins, b.fanins):
                graph.add_edge(a.name, b.name)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    paired: Set[str] = set()
    pairs: List[Tuple[str, str]] = []
    for u, v in matching:
        pairs.append(tuple(sorted((u, v))))  # type: ignore[arg-type]
        paired.add(u)
        paired.add(v)
    return pairs, paired


def _greedy_pairs(nodes) -> Tuple[List[Tuple[str, str]], Set[str]]:
    """First-fit pairing, smallest fan-in sets first (they pair easiest
    with many partners, so give them the pick of the litter last)."""
    order = sorted(nodes, key=lambda n: (-len(n.fanins), n.name))
    paired: Set[str] = set()
    pairs: List[Tuple[str, str]] = []
    for i, a in enumerate(order):
        if a.name in paired or len(a.fanins) > _MAX_PAIR_EACH:
            continue
        for b in order[i + 1 :]:
            if b.name in paired:
                continue
            if can_pair(a.fanins, b.fanins):
                pairs.append(tuple(sorted((a.name, b.name))))
                paired.add(a.name)
                paired.add(b.name)
                break
    return pairs, paired
