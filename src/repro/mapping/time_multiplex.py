"""Time-multiplexed reconfigurable mapping (the paper's Conclusions).

"Another possibility of application is the time-multiplexed
reconfigurable computing.  For time-multiplexed functions, we can combine
them together as a hyper-function.  After decomposition, we don't have to
duplicate the duplication cone at all.  Instead, we can use the pseudo
primary inputs to recover the time-multiplexed functions."

:func:`map_time_multiplexed` folds a set of *contexts* (single-output
functions over shared data inputs) into one hyper-function, decomposes it
to k-LUTs **keeping the PPIs as physical mode wires**, and returns the
single network plus the per-context mode codes.  Zero duplication is paid
— the mode wires select the behaviour cycle by cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..bdd import BddManager
from ..decompose import DecompositionOptions, decompose_to_network
from ..hyper import analyze_duplication, build_hyper_function
from ..network import Network
from .clb import pack_xc3000
from .lut import cleanup_for_lut_count, count_luts

__all__ = ["TimeMultiplexResult", "map_time_multiplexed"]


@dataclass
class TimeMultiplexResult:
    """A time-multiplexed implementation of several contexts."""

    network: Network  # inputs: data wires + mode wires; one output "y"
    mode_wires: List[str]
    context_codes: Dict[str, Dict[str, int]]  # context -> mode wire -> bit
    lut_count: int
    clb_count: int
    spatial_duplication_avoided: int  # cone nodes a spatial mapping copies
    seconds: float

    def mode_assignment(self, context: str) -> Dict[str, int]:
        """The mode-wire values that select ``context``."""
        return dict(self.context_codes[context])


def map_time_multiplexed(
    manager: BddManager,
    contexts: Sequence[Tuple[str, int]],
    input_names: Sequence[str],
    k: int = 5,
    encoding_policy: str = "chart",
    verify: bool = True,
) -> TimeMultiplexResult:
    """Build one k-LUT network computing any of the ``contexts``.

    ``contexts`` are (name, on-BDD) pairs over ``manager``;
    ``input_names`` are the shared data inputs (manager variables).
    """
    start = time.time()
    hyper = build_hyper_function(manager, contexts, k)

    net = Network("time_multiplexed")
    signal_of_level: Dict[int, str] = {}
    for name in input_names:
        net.add_input(name)
        signal_of_level[manager.level_of(name)] = name
    mode_wires: List[str] = []
    for i, lv in enumerate(hyper.ppi_levels):
        wire = f"mode{i}"
        net.add_input(wire)
        signal_of_level[lv] = wire
        mode_wires.append(wire)

    options = DecompositionOptions(k=k, encoding_policy=encoding_policy)
    root = decompose_to_network(
        manager, hyper.on, net, signal_of_level, options, dc=hyper.dc
    )
    net.add_output(root, "y")
    cleanup_for_lut_count(net)

    info = analyze_duplication(net, mode_wires)
    context_codes = {
        name: {mode_wires[a]: bit for a, bit in code.items()}
        for name, code in zip(hyper.ingredient_names, hyper.codes)
    }

    if verify:
        _verify_contexts(manager, net, contexts, input_names, context_codes)

    return TimeMultiplexResult(
        network=net,
        mode_wires=mode_wires,
        context_codes=context_codes,
        lut_count=count_luts(net, k),
        clb_count=pack_xc3000(net).num_clbs,
        spatial_duplication_avoided=len(info.duplication_cone),
        seconds=time.time() - start,
    )


def _verify_contexts(
    manager: BddManager,
    net: Network,
    contexts: Sequence[Tuple[str, int]],
    input_names: Sequence[str],
    context_codes: Dict[str, Dict[str, int]],
) -> None:
    """Exact check: specialising the mode wires recovers each context."""
    from ..network import GlobalBdds, propagate_constant_inputs

    for name, bdd in contexts:
        spec = propagate_constant_inputs(net, context_codes[name])
        gb = GlobalBdds(spec, pi_order=list(input_names), manager=manager)
        got = gb.of_output("y")
        if got != bdd:
            raise AssertionError(
                f"context {name!r} not recovered by its mode code"
            )
