"""Technology-independent common-sublogic extraction via hyper-functions.

The paper's conclusion proposes using hyper-function decomposition
"to identify common sub-logic in the technology-independent optimization
phase of logic synthesis".  This module implements that idea: a
restructuring pass (not a mapper) that folds groups of outputs into
hyper-functions, decomposes once, and rewrites the network so the
extracted decomposition functions become explicit shared nodes feeding
per-output image logic.

Unlike :func:`repro.mapping.hyde.hyde_map`, no LUT size drives the
process — ``k`` here only bounds how large an extracted sub-function may
grow — and the output network is *not* required to be k-feasible; it is
simply a re-factored, sharing-maximised version of the input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..decompose import DecompositionOptions
from ..hyper import decompose_hyper_function
from ..network import GlobalBdds, Network
from .hyde import _splice, cluster_outputs
from .lut import cleanup_for_lut_count

__all__ = ["ExtractionReport", "extract_common_sublogic"]


@dataclass
class ExtractionReport:
    """What the extraction pass did."""

    network: Network
    groups: List[List[str]]
    shared_nodes_per_group: List[int] = field(default_factory=list)
    total_nodes_before: int = 0
    total_nodes_after: int = 0

    @property
    def node_delta(self) -> int:
        """Negative when the rewrite shrank the network."""
        return self.total_nodes_after - self.total_nodes_before


def extract_common_sublogic(
    net: Network,
    k: int = 8,
    max_group: int = 4,
    verify: bool = True,
) -> ExtractionReport:
    """Rewrite ``net`` extracting sub-logic shared between outputs.

    Groups outputs by support similarity, hyper-decomposes each group and
    splices the recovered (shared-node) fragments into a fresh network.
    The result computes the same outputs; shared decomposition functions
    appear once instead of being re-derived per output.
    """
    gb = GlobalBdds(net)
    manager = gb.manager
    bdds = {out: gb.of_output(out) for out in net.output_names}
    supports = {
        out: [manager.name_of(lv) for lv in manager.support(bdd)]
        for out, bdd in bdds.items()
    }
    nonconstant = [o for o in net.output_names if supports[o]]
    groups = cluster_outputs(
        {o: supports[o] for o in nonconstant}, max_group
    )

    result = Network(f"{net.name}_ti")
    for pi in net.inputs:
        result.add_input(pi)

    shared_counts: List[int] = []
    driver_of: Dict[str, str] = {}
    options = DecompositionOptions(k=k, encoding_policy="chart")
    for gi, group in enumerate(groups):
        group_inputs = sorted(
            {pi for o in group for pi in supports[o]},
            key=net.inputs.index,
        )
        hres = decompose_hyper_function(
            manager,
            [(o, bdds[o]) for o in group],
            group_inputs,
            options,
            network_name=f"{net.name}_ti{gi}",
        )
        shared_counts.append(hres.shared_nodes)
        rename = _splice(result, hres.recovered, f"t{gi}_")
        for out in group:
            driver_of[out] = rename[hres.recovered.output_driver(out)]
    for out in net.output_names:
        if out in driver_of:
            result.add_output(driver_of[out], out)
        else:
            # Constant output.
            from ..bdd import TRUE
            const = result.fresh_name(f"{out}_const")
            result.add_constant(const, 1 if bdds[out] == TRUE else 0)
            result.add_output(const, out)

    cleanup_for_lut_count(result)
    if verify:
        from ..network import check_equivalence
        bad = check_equivalence(net, result)
        if bad is not None:
            raise AssertionError(f"extraction broke output {bad!r}")

    return ExtractionReport(
        network=result,
        groups=groups,
        shared_nodes_per_group=shared_counts,
        total_nodes_before=net.num_nodes,
        total_nodes_after=result.num_nodes,
    )
