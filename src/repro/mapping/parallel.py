"""Process-parallel decomposition of independent ingredient groups.

The HYDE flow's groups (and the per-output baselines' outputs) are
independent cones: nothing a group's decomposition produces is read by
another group until the final splice.  That makes them the natural unit of
coarse-grained parallelism — exactly the lever modern mappers use to
scale, since pure-Python decomposition is CPU bound and the GIL rules out
threads.

The serialization boundary is BLIF text (:mod:`repro.network.blif`): a
:class:`GroupTask` carries the standalone fan-in cone of one group's
outputs; the worker parses it, builds the group's global BDDs in its *own*
:class:`~repro.bdd.BddManager`, decomposes (with its own class-count
oracle), and ships the mapped fragment back as BLIF for the parent to
splice.  BDD node ids are only canonical within one manager, so nothing
manager-specific ever crosses the process boundary.

Workers fall back to in-process execution when a pool cannot be created
(restricted sandboxes without fork/semaphores), so ``jobs>1`` is always
safe to request.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import BddManager
from ..decompose import DecompositionOptions, decompose_to_network
from ..hyper import decompose_hyper_function
from ..network import GlobalBdds, Network, parse_blif, to_blif
from .lut import cleanup_for_lut_count, count_luts

__all__ = [
    "GroupTask",
    "GroupResult",
    "build_group_fragment",
    "per_output_fragment",
    "run_group_tasks",
]


@dataclass
class GroupTask:
    """Everything one worker needs, in picklable form."""

    blif_text: str  # standalone cone of the group's outputs
    group: List[str]  # output names, parent order
    gi: int  # group index (fragments are spliced in this order)
    options: DecompositionOptions
    ingredient_policy: str = "chart"
    ppi_placement: str = "prefer_free"
    fallback_per_output: bool = True
    base_name: str = "group"


@dataclass
class GroupResult:
    """One worker's answer: the mapped fragment plus bookkeeping."""

    gi: int
    blif_text: str  # fragment: inputs ⊆ parent PIs, outputs = group
    info: Dict[str, object] = field(default_factory=dict)
    perf: Dict[str, object] = field(default_factory=dict)


def per_output_fragment(
    manager: BddManager,
    ingredients: Sequence[Tuple[str, int]],
    group_inputs: Sequence[str],
    options: DecompositionOptions,
    name: str,
) -> Network:
    """Decompose a group output-by-output into a standalone fragment."""
    frag = Network(name)
    for pi in group_inputs:
        frag.add_input(pi)
    for oi, (out, bdd) in enumerate(ingredients):
        signal_of_level = {manager.level_of(pi): pi for pi in group_inputs}
        root = decompose_to_network(
            manager, bdd, frag, signal_of_level, options, prefix=f"p{oi}"
        )
        frag.add_output(root, out)
    return frag


def build_group_fragment(
    manager: BddManager,
    output_bdds: Dict[str, int],
    group: Sequence[str],
    group_inputs: Sequence[str],
    options: DecompositionOptions,
    ingredient_policy: str = "chart",
    ppi_placement: str = "prefer_free",
    fallback_per_output: bool = True,
    base_name: str = "group",
) -> Tuple[Network, Dict[str, object]]:
    """Map one ingredient group to a standalone k-feasible fragment.

    This is the per-group body of the HYDE flow, shared verbatim by the
    serial loop and the pool workers: hyper-function decomposition for
    multi-output groups (with the optional per-output fallback), plain
    recursive decomposition for singleton groups.  The fragment's inputs
    are ``group_inputs`` and its outputs are named after ``group``.
    """
    ingredients = [(out, output_bdds[out]) for out in group]
    if len(group) == 1:
        fragment = per_output_fragment(
            manager, ingredients, group_inputs, options, f"{base_name}_po"
        )
        cleanup_for_lut_count(fragment)
        return fragment, {"outputs": list(group), "hyper": False}

    hres = decompose_hyper_function(
        manager,
        ingredients,
        group_inputs,
        options,
        ingredient_policy=ingredient_policy,
        ppi_placement=ppi_placement,
        network_name=base_name,
    )
    fragment = hres.recovered
    cleanup_for_lut_count(fragment)
    info: Dict[str, object] = {
        "outputs": list(group),
        "hyper": True,
        "ppi_count": hres.hyper.num_ppis,
        "shared_nodes": hres.shared_nodes,
        "cone_nodes": len(hres.duplication.duplication_cone),
    }
    if fallback_per_output:
        alt = per_output_fragment(
            manager, ingredients, group_inputs, options, f"{base_name}_po"
        )
        cleanup_for_lut_count(alt)
        hyper_luts = count_luts(fragment, options.k)
        per_output_luts = count_luts(alt, options.k)
        info["hyper_luts"] = hyper_luts
        info["per_output_luts"] = per_output_luts
        if per_output_luts < hyper_luts:
            fragment = alt
            info["hyper"] = False
    return fragment, info


def decompose_group_task(task: GroupTask) -> GroupResult:
    """Pool worker: cone BLIF in, mapped fragment BLIF out.

    Runs entirely in a private manager — global BDDs of the cone, the
    shared class-count oracle and the decomposition all live and die with
    this call.  The cone's primary inputs keep the parent's relative
    order, so bound-set selection (whose ties break on level order) makes
    the same choices the serial flow would.
    """
    net = parse_blif(task.blif_text)
    gb = GlobalBdds(net)
    manager = gb.manager
    output_bdds = {out: gb.of_output(out) for out in net.output_names}
    support_union = sorted(
        {
            lv
            for out in task.group
            for lv in manager.support(output_bdds[out])
        }
    )
    group_inputs = [manager.name_of(lv) for lv in support_union]
    fragment, info = build_group_fragment(
        manager,
        output_bdds,
        task.group,
        group_inputs,
        task.options,
        ingredient_policy=task.ingredient_policy,
        ppi_placement=task.ppi_placement,
        fallback_per_output=task.fallback_per_output,
        base_name=task.base_name,
    )
    return GroupResult(
        gi=task.gi,
        blif_text=to_blif(fragment),
        info=info,
        perf=manager.perf.snapshot(),
    )


def run_group_tasks(
    tasks: Sequence[GroupTask], jobs: int
) -> Tuple[List[GroupResult], int]:
    """Execute group tasks, fanning out to ``jobs`` processes when >1.

    Returns ``(results, jobs_used)`` with results in task order.
    ``jobs_used`` is 1 when the tasks ran in-process — either because
    parallelism was not requested / not useful, or because the platform
    refused to give us a pool (the flow then degrades to serial instead
    of failing).
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [decompose_group_task(t) for t in tasks], 1
    workers = min(jobs, len(tasks))
    try:
        # fork shares the already-imported interpreter state — cheap
        # worker start-up; fall back to the platform default elsewhere.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        with ctx.Pool(workers) as pool:
            return list(pool.map(decompose_group_task, tasks)), workers
    except (OSError, PermissionError, RuntimeError):  # pragma: no cover
        # No usable process pool (sandboxed /dev/shm, missing sem_open…).
        return [decompose_group_task(t) for t in tasks], 1
