"""Process-parallel decomposition of independent ingredient groups.

The HYDE flow's groups (and the per-output baselines' outputs) are
independent cones: nothing a group's decomposition produces is read by
another group until the final splice.  That makes them the natural unit of
coarse-grained parallelism — exactly the lever modern mappers use to
scale, since pure-Python decomposition is CPU bound and the GIL rules out
threads.

The serialization boundary is BLIF text (:mod:`repro.network.blif`): a
:class:`GroupTask` carries the standalone fan-in cone of one group's
outputs; the worker parses it, builds the group's global BDDs in its *own*
:class:`~repro.bdd.BddManager`, decomposes (with its own class-count
oracle), and ships the mapped fragment back as BLIF for the parent to
splice.  BDD node ids are only canonical within one manager, so nothing
manager-specific ever crosses the process boundary.

Crossing a process boundary also means trusting what comes back.  With a
:class:`TaskPolicy` the parent stops trusting: each pooled task gets a
wall-clock timeout, each reply is parsed, checked against the group's
output set and (optionally) equivalence-checked against its cone, and any
failure walks a degradation ladder — in-process retries under decaying
resource budgets, then plain per-output decomposition, then a BDD-free
structural remap (:func:`structural_fragment`) that cannot fail.  The
flow therefore always produces a valid network; what it lost along the
way is recorded in :class:`RunReport`.

Workers fall back to in-process execution when a pool cannot be created
(restricted sandboxes without fork/semaphores), so ``jobs>1`` is always
safe to request; the fallback is recorded in ``RunReport.pool_fallback``.

Runs are additionally *crash-safe* when the caller supplies a
:class:`~repro.runstate.RunJournal`: every validated fragment is
journaled as it lands (WAL discipline), already-journaled tasks are
replayed by content-addressed key instead of re-executed, and a
SIGINT/SIGTERM while the loop is live unwinds through
:class:`~repro.runstate.ShutdownRequested` into a partial
:class:`RunReport` marked ``interrupted`` — workers terminated, journal
flushed, nothing torn.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bdd import BddBudgetExceeded, BddManager
from ..boolfunc import TruthTable
from ..decompose import CostModel, DecompositionOptions, decompose_to_network
from ..hyper import decompose_hyper_function
from ..network import (
    GlobalBdds,
    Network,
    check_equivalence,
    node_depths,
    parse_blif,
    to_blif,
)
from ..perf import PerfCounters
from ..runstate import RunJournal, ShutdownRequested, graceful_shutdown, task_key
from .lut import cleanup_for_lut_count, count_luts

__all__ = [
    "GroupTask",
    "GroupResult",
    "TaskPolicy",
    "RunReport",
    "PORTFOLIO_STRATEGIES",
    "KNOWN_STRATEGIES",
    "build_group_fragment",
    "per_output_fragment",
    "structural_fragment",
    "run_group_tasks",
]

#: The raced strategies of portfolio mode, in tie-break priority order
#: (earlier wins on equal cost).  ``per_output`` and ``column`` only
#: apply to multi-output groups; ``structural`` is the BDD-free floor.
PORTFOLIO_STRATEGIES: Tuple[str, ...] = (
    "hyper",
    "per_output",
    "column",
    "structural",
)

#: Every strategy a :class:`TaskPolicy` may request.  ``exact`` is the
#: optional highest rung — the :mod:`repro.exact` optimality oracle,
#: raced only on cones small enough for it (see
#: :data:`repro.exact.EXACT_MAX_INPUTS`) and *advisory*: it ranks after
#: every heuristic on ties, and when its search exhausts the budget the
#: group falls back to the heuristic winner instead of degrading the
#: result (the scoreboard records ``"budget_exceeded"``).
KNOWN_STRATEGIES: Tuple[str, ...] = PORTFOLIO_STRATEGIES + ("exact",)


@dataclass
class GroupTask:
    """Everything one worker needs, in picklable form."""

    blif_text: str  # standalone cone of the group's outputs
    group: List[str]  # output names, parent order
    gi: int  # group index (fragments are spliced in this order)
    options: DecompositionOptions
    ingredient_policy: str = "chart"
    ppi_placement: str = "prefer_free"
    fallback_per_output: bool = True
    base_name: str = "group"
    # "hyper" | "per_output" (ladder rung 2 / portfolio strategy) |
    # "structural" (portfolio strategy: the BDD-free remap).  The
    # "column" portfolio strategy is hyper with ppi_placement
    # "force_free", so its tasks share keys (and cache rows) with
    # column-encoding baseline runs.
    mode: str = "hyper"
    attempt: int = 0  # retry ordinal; gates fault injection via fires()
    inject: Optional[object] = None  # a repro.testing.faults.FaultSpec
    trace: bool = False  # record a span tree in the worker, ship it back


@dataclass
class GroupResult:
    """One worker's answer: the mapped fragment plus bookkeeping."""

    gi: int
    blif_text: str  # fragment: inputs ⊆ parent PIs, outputs = group
    info: Dict[str, object] = field(default_factory=dict)
    perf: Dict[str, object] = field(default_factory=dict)
    # Flat span records (obs.TraceRecorder.to_dicts(rebase=True)); times
    # start at 0 because perf_counter bases are process-local — the
    # parent grafts them with an offset into its own tree.
    spans: List[Dict[str, object]] = field(default_factory=list)
    # Wall-clock of the producing attempt, measured where the work ran
    # (worker-side for pooled tasks); journaled and restored on replay.
    seconds: float = 0.0


@dataclass(frozen=True)
class TaskPolicy:
    """Fault-tolerance knobs for :func:`run_group_tasks`.

    Passing no policy reproduces the historical fire-and-hope behavior
    byte for byte; any policy turns on reply validation and, for each
    failed or timed-out task, the degradation ladder:

    1. re-run in-process with every resource budget multiplied by
       ``budget_decay`` per attempt, up to ``retries`` times;
    2. re-run in plain per-output mode (hyper-function machinery skipped);
    3. rebuild the cone structurally (:func:`structural_fragment`) —
       BDD-free and budget-free, so it cannot fail.

    ``timeout_seconds`` bounds each pooled task's wall clock (enforced by
    the parent, so even a hung worker is recovered); in-process attempts
    reuse it as a cooperative time budget on the worker's manager, since
    pure Python cannot preempt itself.

    ``verify_mode`` selects the reply-equivalence engine: ``"bdd"`` is
    the monolithic check (pass/fail only); ``"finegrain"`` runs the
    cut-point checker from :mod:`repro.verify`, so a rejected reply's
    cause names the smallest non-equivalent cone and its counterexample
    (and, when a journal is attached, the cone is journaled as a
    ``failing_cone`` event before the ladder retries).

    ``portfolio`` turns the strategy ladder from a failure-recovery path
    into a quality-seeking one: every group races the strategies in
    ``strategies`` (default :data:`PORTFOLIO_STRATEGIES`) through the
    same governed runner, each candidate fragment is scored under the
    task options' cost model, and the cheapest wins — the per-group
    decisions land in ``RunReport.details["portfolio"]``.
    """

    timeout_seconds: Optional[float] = None
    retries: int = 1
    budget_decay: float = 0.5
    verify_fragments: bool = True
    per_output_fallback: bool = True
    structural_fallback: bool = True
    verify_mode: str = "bdd"
    portfolio: bool = False
    strategies: Optional[Tuple[str, ...]] = None


@dataclass
class RunReport:
    """What actually happened while running a batch of group tasks.

    ``degraded`` holds one entry per task that did not succeed on its
    first attempt: ``{"gi", "group", "causes", "resolution", "attempts"}``
    where ``resolution`` names the ladder rung that finally produced the
    fragment (``"retry"`` / ``"per_output"`` / ``"structural"``).

    With a run journal, ``replayed`` counts tasks satisfied from the
    journal without execution and ``executed`` counts tasks actually run
    (and journaled) this time; ``interrupted`` is set when a shutdown
    request stopped the batch early — the results list is then partial
    and the journal holds everything that completed.

    With a result cache (:class:`~repro.service.ResultStore`),
    ``cache_hits`` counts tasks served from the store, ``cache_misses``
    tasks that had to execute, and ``cache_rejected`` stored rows that
    failed revalidation (corrupt/stale entries — they are deleted and
    the task recomputed).  ``fragments`` then carries one per-task
    record (``gi``/``key``/``cached``/``seconds``/``blif``) in group
    order, so a serving layer can stream them to a client.
    """

    jobs_used: int = 1
    pool_fallback: Optional[str] = None  # why jobs>1 ran serially, if set
    # Free-form run decisions (e.g. the auto-serial estimate) for
    # surfacing in MapResult.details.
    details: Dict[str, object] = field(default_factory=dict)
    degraded: List[Dict[str, object]] = field(default_factory=list)
    timeouts: int = 0
    retries: int = 0
    replayed: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_rejected: int = 0
    # Per-task serving records (populated only when a cache is attached).
    fragments: List[Dict[str, object]] = field(default_factory=list)
    interrupted: bool = False
    interrupt_reason: Optional[str] = None
    journal_path: Optional[str] = None
    # Merged PerfCounters snapshot across every task reply — the one
    # place worker-side counters survive the process boundary.
    perf: Dict[str, object] = field(default_factory=dict)


#: What starting a fork pool must save to be worth it: pool creation,
#: per-task pickling and teardown, measured on the development machine.
_POOL_SETUP_SECONDS = 0.15

#: Coarse per-node decomposition cost for the auto-serial estimate.
_EST_SECONDS_PER_NODE = 0.0015


def _estimate_task_seconds(task: GroupTask) -> float:
    """Rough wall-clock estimate for decomposing one group's cone.

    Node count times a width factor that doubles every two cone inputs
    past a k-feasible baseline — bound-set search and class counting
    grow exponentially with support width, and ignoring that keeps
    genuinely expensive batches (many inputs, few nodes) off the pool.
    The estimate only has to be right about which side of the (large)
    pool-setup margin a batch falls on.
    """
    nodes = task.blif_text.count(".names")
    inputs = 0
    for line in task.blif_text.splitlines():
        if line.startswith(".inputs"):
            inputs = len(line.split()) - 1
            break
    width_factor = 2.0 ** (max(0, inputs - 8) / 2.0)
    return _EST_SECONDS_PER_NODE * nodes * width_factor


def _auto_serial_decision(
    tasks: Sequence[GroupTask], jobs: int
) -> Tuple[bool, Dict[str, object]]:
    """Should this batch skip the pool?  Returns ``(serial, record)``.

    A pool only pays off when the wall clock it saves — the work the
    extra workers take off the serial path — exceeds its setup cost.
    Small batches of small cones lose that trade, and on them the pool
    shows up as pure overhead in every benchmark.  The record lands in
    ``RunReport.details["auto_serial"]`` either way, so the decision is
    auditable.
    """
    workers = min(jobs, len(tasks))
    estimated = sum(_estimate_task_seconds(task) for task in tasks)
    savings = estimated * (1.0 - 1.0 / workers) if workers > 1 else 0.0
    serial = savings < _POOL_SETUP_SECONDS
    return serial, {
        "estimated_seconds": round(estimated, 4),
        "estimated_savings": round(savings, 4),
        "pool_setup_seconds": _POOL_SETUP_SECONDS,
        "workers": workers,
        "serial": serial,
    }


def _network_depth(net: Network) -> int:
    """LUT levels from inputs to the deepest primary output."""
    depths = node_depths(net)
    return max((depths[driver] for _, driver in net.outputs), default=0)


def per_output_fragment(
    manager: BddManager,
    ingredients: Sequence[Tuple[str, int]],
    group_inputs: Sequence[str],
    options: DecompositionOptions,
    name: str,
) -> Network:
    """Decompose a group output-by-output into a standalone fragment."""
    frag = Network(name)
    for pi in group_inputs:
        frag.add_input(pi)
    for oi, (out, bdd) in enumerate(ingredients):
        signal_of_level = {manager.level_of(pi): pi for pi in group_inputs}
        root = decompose_to_network(
            manager, bdd, frag, signal_of_level, options, prefix=f"p{oi}"
        )
        frag.add_output(root, out)
    return frag


def build_group_fragment(
    manager: BddManager,
    output_bdds: Dict[str, int],
    group: Sequence[str],
    group_inputs: Sequence[str],
    options: DecompositionOptions,
    ingredient_policy: str = "chart",
    ppi_placement: str = "prefer_free",
    fallback_per_output: bool = True,
    base_name: str = "group",
) -> Tuple[Network, Dict[str, object]]:
    """Map one ingredient group to a standalone k-feasible fragment.

    This is the per-group body of the HYDE flow, shared verbatim by the
    serial loop and the pool workers: hyper-function decomposition for
    multi-output groups (with the optional per-output fallback), plain
    recursive decomposition for singleton groups.  The fragment's inputs
    are ``group_inputs`` and its outputs are named after ``group``.
    """
    ingredients = [(out, output_bdds[out]) for out in group]
    if len(group) == 1:
        fragment = per_output_fragment(
            manager, ingredients, group_inputs, options, f"{base_name}_po"
        )
        cleanup_for_lut_count(fragment)
        return fragment, {"outputs": list(group), "hyper": False}

    hres = decompose_hyper_function(
        manager,
        ingredients,
        group_inputs,
        options,
        ingredient_policy=ingredient_policy,
        ppi_placement=ppi_placement,
        network_name=base_name,
    )
    fragment = hres.recovered
    cleanup_for_lut_count(fragment)
    info: Dict[str, object] = {
        "outputs": list(group),
        "hyper": True,
        "ppi_count": hres.hyper.num_ppis,
        "shared_nodes": hres.shared_nodes,
        "cone_nodes": len(hres.duplication.duplication_cone),
    }
    if fallback_per_output:
        alt = per_output_fragment(
            manager, ingredients, group_inputs, options, f"{base_name}_po"
        )
        cleanup_for_lut_count(alt)
        cost = options.cost
        hyper_luts = count_luts(fragment, options.k)
        per_output_luts = count_luts(alt, options.k)
        info["hyper_luts"] = hyper_luts
        info["per_output_luts"] = per_output_luts
        if cost.is_area:
            # Historical objective verbatim: the per-output variant wins
            # only with strictly fewer LUTs (ties keep hyper).
            choose_alt = per_output_luts < hyper_luts
        else:
            hyper_depth = _network_depth(fragment)
            alt_depth = _network_depth(alt)
            info["hyper_depth"] = hyper_depth
            info["per_output_depth"] = alt_depth
            choose_alt = cost.fragment_key(
                per_output_luts, alt_depth
            ) < cost.fragment_key(hyper_luts, hyper_depth)
        if choose_alt:
            fragment = alt
            info["hyper"] = False
    return fragment, info


def structural_fragment(
    cone: Network, k: int, name: Optional[str] = None
) -> Network:
    """BDD-free k-feasible remap of a cone — the ladder's last rung.

    Rebuilds the cone node by node; any node with more than ``k`` fanins
    is Shannon-expanded on its highest fanin into two cofactor LUTs and a
    mux until everything fits.  No BDDs, no search, no budgets: nothing
    here can run out, which is exactly what a final fallback must
    guarantee.  The quality is whatever the source structure gives —
    acceptable for a rung that only runs when everything else failed.
    Needs ``k >= 3`` for the mux nodes.
    """
    if k < 3:
        raise ValueError("structural fallback needs k >= 3 (mux nodes)")
    frag = Network(name or f"{cone.name}_struct")
    for pi in cone.inputs:
        frag.add_input(pi)
    mux = TruthTable.from_function(3, lambda s, f0, f1: f1 if s else f0)

    def emit(fanins: List[str], table: TruthTable) -> str:
        # Distinct cone signals can map to one fragment signal (buffers
        # collapse), so merge duplicate fanins before anything else.
        if len(set(fanins)) != len(fanins):
            position = {sig: j for j, sig in enumerate(dict.fromkeys(fanins))}
            table = table.remap_inputs(
                len(position), [position[sig] for sig in fanins]
            )
            fanins = list(dict.fromkeys(fanins))
        reduced, kept = table.minimize_support()
        fanins = [fanins[j] for j in kept]
        if reduced.num_inputs == 0:
            return frag.add_constant(
                frag.fresh_name("sc"), 1 if reduced.mask else 0
            )
        if reduced.num_inputs == 1 and reduced.mask == 0b10:  # identity
            return fanins[0]
        if reduced.num_inputs <= k:
            return frag.add_node(frag.fresh_name("sn"), fanins, reduced)
        j = reduced.num_inputs - 1
        lo = emit(fanins[:-1], reduced.cofactor(j, 0).drop_input(j))
        hi = emit(fanins[:-1], reduced.cofactor(j, 1).drop_input(j))
        return emit([fanins[j], lo, hi], mux)

    signal_map: Dict[str, str] = {pi: pi for pi in cone.inputs}
    for node_name in cone.topological_order():
        if cone.is_input(node_name):
            continue
        node = cone.node(node_name)
        signal_map[node_name] = emit(
            [signal_map[fi] for fi in node.fanins], node.table
        )
    for out, driver in cone.outputs:
        frag.add_output(signal_map[driver], out)
    cleanup_for_lut_count(frag)
    return frag


def decompose_group_task(task: GroupTask) -> GroupResult:
    """Pool worker: cone BLIF in, mapped fragment BLIF out.

    Runs entirely in a private manager — global BDDs of the cone, the
    shared class-count oracle and the decomposition all live and die with
    this call.  The cone's primary inputs keep the parent's relative
    order, so bound-set selection (whose ties break on level order) makes
    the same choices the serial flow would.  Any resource budget in
    ``task.options`` is armed on the private manager, so a blow-up raises
    :class:`~repro.bdd.BddBudgetExceeded` here and crosses back to the
    parent as an ordinary (picklable) exception.

    With ``task.trace`` set the worker records its own span tree under a
    task-local :class:`~repro.obs.TraceRecorder` and ships it back in
    ``GroupResult.spans`` (rebased to 0; the parent re-anchors it).  The
    recorder is installed around the body and restored afterwards, so an
    in-process run (pool fallback, ladder retries) nests correctly inside
    the parent's own recorder.
    """
    start = time.perf_counter()
    if not task.trace:
        result = _decompose_group(task)
        result.seconds = time.perf_counter() - start
        return result
    rec = obs.TraceRecorder(proc=f"task:{task.gi}")
    prev = obs.install(rec)
    try:
        result = _decompose_group(task)
    finally:
        obs.restore(prev)
    result.spans = rec.to_dicts(rebase=True)
    result.seconds = time.perf_counter() - start
    return result


def _decompose_group(task: GroupTask) -> GroupResult:
    if task.mode == "structural":
        # The BDD-free strategy: no manager, no budget, cannot blow up.
        with obs.span(
            "task.group",
            gi=task.gi,
            outputs=len(task.group),
            mode="structural",
            attempt=task.attempt,
        ):
            cone = parse_blif(task.blif_text)
            fragment = structural_fragment(
                cone, task.options.k, name=f"{task.base_name}_struct"
            )
            blif_text = to_blif(fragment)
            if task.inject is not None:
                from ..testing import faults

                blif_text = faults.after_decompose(
                    task.inject, blif_text, task.attempt
                )
        return GroupResult(
            gi=task.gi,
            blif_text=blif_text,
            info={
                "outputs": list(task.group),
                "hyper": False,
                "mode": "structural",
            },
        )
    if task.mode == "exact":
        return _decompose_group_exact(task)
    net = parse_blif(task.blif_text)
    gb = GlobalBdds(net)
    manager = gb.manager
    # Global BDDs are lazy (built at of_output below), so this root span's
    # perf delta covers essentially all BDD work the task performs.
    with obs.span(
        "task.group",
        manager=manager,
        gi=task.gi,
        outputs=len(task.group),
        mode=task.mode,
        attempt=task.attempt,
    ):
        task.options.arm_budget(manager)
        if task.inject is not None:
            from ..testing import faults  # lazy: test machinery stays optional

            faults.before_decompose(task.inject, manager, task.attempt)
        output_bdds = {out: gb.of_output(out) for out in net.output_names}
        support_union = sorted(
            {
                lv
                for out in task.group
                for lv in manager.support(output_bdds[out])
            }
        )
        group_inputs = [manager.name_of(lv) for lv in support_union]
        if task.mode == "per_output" and len(task.group) > 1:
            ingredients = [(out, output_bdds[out]) for out in task.group]
            fragment = per_output_fragment(
                manager, ingredients, group_inputs, task.options,
                f"{task.base_name}_po",
            )
            cleanup_for_lut_count(fragment)
            info: Dict[str, object] = {
                "outputs": list(task.group),
                "hyper": False,
                "mode": "per_output",
            }
        else:
            fragment, info = build_group_fragment(
                manager,
                output_bdds,
                task.group,
                group_inputs,
                task.options,
                ingredient_policy=task.ingredient_policy,
                ppi_placement=task.ppi_placement,
                fallback_per_output=task.fallback_per_output,
                base_name=task.base_name,
            )
        blif_text = to_blif(fragment)
        if task.inject is not None:
            from ..testing import faults

            blif_text = faults.after_decompose(
                task.inject, blif_text, task.attempt
            )
    return GroupResult(
        gi=task.gi,
        blif_text=blif_text,
        info=info,
        perf=manager.perf.snapshot(),
    )


def _splice_witness(fragment: Network, witness: Network, out: str) -> None:
    """Copy one exact witness into the group fragment under ``out``.

    Witness PIs are cone PIs by name (shared across outputs); internal
    node names are remapped when they collide with signals an earlier
    output's witness already spliced in.
    """
    rename: Dict[str, str] = {}
    for pi in witness.inputs:
        if not fragment.has_signal(pi):
            fragment.add_input(pi)
    for name in witness.topological_order():
        node = witness.node(name)
        fanins = [rename.get(fi, fi) for fi in node.fanins]
        target = name
        if fragment.has_signal(target):
            target = fragment.fresh_name(f"{out}_ex")
        rename[name] = target
        fragment.add_node(target, fanins, node.table)
    driver = dict(witness.outputs)[out]
    fragment.add_output(rename.get(driver, driver), out)


def _decompose_group_exact(task: GroupTask) -> GroupResult:
    """The ``exact`` portfolio strategy: provably minimal cones.

    Each output of the group is flattened to its truth table
    (:func:`repro.exact.cone_spec`) and mapped by the optimality oracle;
    the witnesses are spliced into one fragment.  The BDD manager exists
    only as the budget/fault surface: the options' budget is armed on it
    and :func:`repro.exact.exact_map` polls ``check_budget`` inside its
    search loops, so wall-clock limits and injected faults interrupt the
    search exactly like they interrupt a heuristic worker.  A search
    that exhausts its budget raises — the portfolio reduce then records
    ``"budget_exceeded"`` for the missing candidate and keeps the
    heuristic winner; a wrong-but-on-time result is never produced.
    """
    from ..exact import DEFAULT_BUDGET_SECONDS, cone_spec, exact_map

    net = parse_blif(task.blif_text)
    manager = BddManager()
    with obs.span(
        "task.group",
        manager=manager,
        gi=task.gi,
        outputs=len(task.group),
        mode="exact",
        attempt=task.attempt,
    ):
        task.options.arm_budget(manager)
        if task.inject is not None:
            from ..testing import faults  # lazy: test machinery stays optional

            faults.before_decompose(task.inject, manager, task.attempt)
        budget = task.options.exact_budget_seconds
        if budget is None:
            budget = DEFAULT_BUDGET_SECONDS
        if task.options.max_seconds is not None:
            budget = min(budget, task.options.max_seconds)
        cost = "delay" if task.options.cost.mode == "delay" else "area"
        fragment = Network(f"{task.base_name}_exact")
        detail: Dict[str, object] = {}
        for out in task.group:
            spec, support = cone_spec(net, out)
            res = exact_map(
                spec,
                task.options.k,
                cost=cost,
                budget_seconds=budget,
                input_names=support,
                output_name=out,
                name=f"{task.base_name}_exact",
                poll=manager.check_budget,
            )
            _splice_witness(fragment, res.network, out)
            detail[out] = {
                "luts": res.luts,
                "depth": res.depth,
                "source": res.source,
            }
        # Same emit pipeline as the heuristic strategies: kills the PO
        # buffer the BLIF emitter would add for an aliased output (which
        # the portfolio scorer would count as a LUT) and dedups nodes
        # shared across the group's witnesses.  Sweep/dedup/absorb are
        # semantics-preserving and can only keep or lower the count, so
        # the per-output optimality claim survives.
        cleanup_for_lut_count(fragment)
        blif_text = to_blif(fragment)
        if task.inject is not None:
            from ..testing import faults

            blif_text = faults.after_decompose(
                task.inject, blif_text, task.attempt
            )
    return GroupResult(
        gi=task.gi,
        blif_text=blif_text,
        info={
            "outputs": list(task.group),
            "hyper": False,
            "mode": "exact",
            "exact": detail,
        },
        perf=manager.perf.snapshot(),
    )


def _validate_reply(
    task: GroupTask,
    result: GroupResult,
    policy: TaskPolicy,
    journal: Optional[RunJournal] = None,
) -> Optional[str]:
    """``None`` when the reply is usable, else a short cause string.

    Validation depth: the BLIF must parse, the fragment must drive
    exactly the group's outputs from (a subset of) the cone's inputs,
    and — unless ``verify_fragments`` is off — it must be equivalent to
    the cone it was derived from, via the engine ``policy.verify_mode``
    selects.  The fine-grained engine additionally journals the failing
    cone (root node, cone members, counterexample) so the rejection is
    diagnosable after the ladder has papered over it.
    """
    try:
        fragment = parse_blif(result.blif_text)
    except ValueError as exc:
        return f"corrupt_reply: {exc}"
    if sorted(fragment.output_names) != sorted(task.group):
        return "corrupt_reply: output set mismatch"
    if not policy.verify_fragments:
        return None
    cone = parse_blif(task.blif_text)
    if not set(fragment.inputs) <= set(cone.inputs):
        return "corrupt_reply: fragment reads unknown inputs"
    padded = fragment.copy()
    for pi in cone.inputs:
        if not padded.has_signal(pi):
            padded.add_input(pi)  # vacuous PI the BDD support dropped
    if policy.verify_mode == "finegrain":
        from ..verify.finegrain import finegrain_check

        try:
            fg = finegrain_check(cone, padded)
        except ValueError as exc:
            return f"corrupt_reply: {exc}"
        if fg.equivalent:
            return None
        worst = fg.failing_cones[0] if fg.failing_cones else None
        if journal is not None and worst is not None:
            journal.record_event(
                "failing_cone",
                gi=task.gi,
                group=list(task.group),
                output=worst.output,
                root=worst.root,
                cone_nodes=list(worst.cone_nodes),
                counterexample=dict(worst.counterexample),
                confirmed=worst.confirmed,
            )
        if worst is not None:
            return (
                f"nonequivalent_reply: output {worst.output!r}, cone at "
                f"{worst.root!r} ({len(worst.cone_nodes)} node(s)), "
                f"counterexample {worst.counterexample}"
            )
        return (
            "nonequivalent_reply: outputs "
            f"{sorted(fg.failing_outputs)} (no cone localized)"
        )
    try:
        bad = check_equivalence(cone, padded)
    except ValueError as exc:
        return f"corrupt_reply: {exc}"
    if bad is not None:
        return f"nonequivalent_reply: output {bad!r}"
    return None


def _effective_task(
    task: GroupTask, policy: TaskPolicy, attempt: int, mode: Optional[str]
) -> GroupTask:
    """The task as actually attempted in-process: decayed budgets.

    Retries shrink every budget by ``budget_decay`` per attempt, and the
    pool timeout (if any) is mirrored as a cooperative time budget so an
    in-process hang is still bounded.  ``mode=None`` keeps the task's
    own mode (the common case); a ladder rung passes an explicit mode to
    re-run the task as a different strategy.
    """
    options = task.options
    factor = policy.budget_decay ** attempt
    if attempt > 0:
        options = options.decayed(factor)
    if options.max_seconds is None and policy.timeout_seconds is not None:
        options = replace(options, max_seconds=policy.timeout_seconds * factor)
    return replace(
        task, options=options, attempt=attempt, mode=mode or task.mode
    )


def _attempt_inprocess(
    task: GroupTask,
    policy: TaskPolicy,
    attempt: int,
    mode: Optional[str] = None,
    journal: Optional[RunJournal] = None,
) -> Tuple[Optional[str], Optional[GroupResult]]:
    """Run one in-process attempt; returns ``(cause, result)``."""
    from ..exact import ExactBudgetExceeded

    trial = _effective_task(task, policy, attempt, mode)
    try:
        result = decompose_group_task(trial)
    except BddBudgetExceeded as exc:
        prefix = "timeout" if exc.kind == "seconds" else "budget"
        return f"{prefix}: {exc}", None
    except ExactBudgetExceeded as exc:
        return f"budget: {exc}", None
    except Exception as exc:  # noqa: BLE001 - the ladder owns recovery
        return f"crash: {type(exc).__name__}: {exc}", None
    cause = _validate_reply(task, result, policy, journal=journal)
    if cause is not None:
        return cause, None
    return None, result


def _worker_signal_reset() -> None:
    """Restore default signal dispositions in pool workers.

    Fork-started workers inherit whatever handlers the parent has
    installed — including :func:`~repro.runstate.graceful_shutdown`'s
    raise-on-SIGTERM handler, since journaled runs create the pool
    inside that context.  A handler that raises is unsafe inside
    multiprocessing internals: ``Pool.terminate()`` SIGTERMs idle
    workers, and the raise can land inside ``SemLock.__enter__`` after
    the semaphore acquire succeeded but before the ``with`` block can
    guarantee release, leaking the shared inqueue lock and wedging pool
    teardown in ``p.join()`` forever.  SIGTERM must simply kill a
    worker; SIGINT is ignored so a terminal's ctrl-C (delivered to the
    whole process group) is handled once, by the parent.
    """
    import signal

    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)


def _make_pool(workers: int):
    # fork shares the already-imported interpreter state — cheap worker
    # start-up; fall back to the platform default elsewhere.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(workers, initializer=_worker_signal_reset)


def _merge_result_perf(
    results: Sequence[GroupResult], report: RunReport
) -> None:
    """Fold every reply's counter snapshot into ``report.perf``."""
    merged = PerfCounters()
    for result in results:
        if result.perf:
            merged.merge_dict(result.perf)
    # Cache traffic is a parent-side fact (the store lives with the
    # dispatch loop, not the workers) but it belongs in the same merged
    # snapshot so `repro stats` and traces see one coherent counter set.
    merged.cache_hits += report.cache_hits
    merged.cache_misses += report.cache_misses
    merged.cache_rejected += report.cache_rejected
    report.perf = merged.snapshot()


def _replay_result(
    task: GroupTask, record: Dict[str, object], source: str = "replayed"
) -> Optional[GroupResult]:
    """Rebuild a :class:`GroupResult` from a journaled/cached record.

    Returns ``None`` — forcing re-execution — when the stored fragment
    does not survive the same checks a live worker reply must pass: the
    BLIF has to parse and drive exactly the task's outputs.  A corrupt
    or tampered record therefore degrades to recomputation, never to
    splicing garbage.  ``source`` names the flag set in the result's
    info (``"replayed"`` for journal records, ``"cached"`` for result-
    store rows).
    """
    blif_text = record.get("blif")
    if not isinstance(blif_text, str):
        return None
    try:
        fragment = parse_blif(blif_text)
    except ValueError:
        return None
    if sorted(fragment.output_names) != sorted(task.group):
        return None
    info = dict(record.get("info") or {})
    info[source] = True
    try:
        seconds = float(record.get("seconds") or 0.0)
    except (TypeError, ValueError):
        seconds = 0.0
    return GroupResult(
        gi=task.gi, blif_text=blif_text, info=info, seconds=seconds
    )


def _cache_lookup(
    task: GroupTask,
    key: str,
    cache,
    policy: TaskPolicy,
    journal: Optional[RunJournal],
    report: RunReport,
) -> Optional[GroupResult]:
    """Serve one task from the result store, or ``None`` on a miss.

    A stored row is *never trusted blindly*: every hit must rebuild
    through :func:`_replay_result` (parse + output-set check), and a row
    that has not yet passed the full reply-validation gate (the
    ``verified`` stamp) additionally runs :func:`_validate_reply` — the
    same equivalence engine live worker replies face — before its first
    reuse.  A row that fails either check is deleted from the store so
    the task recomputes and overwrites it.
    """
    record = cache.get(key)
    if record is None:
        return None
    result = _replay_result(task, record, source="cached")
    cause: Optional[str] = None
    if result is None:
        cause = "corrupt_row: fragment does not rebuild"
    elif policy.verify_fragments and not record.get("verified"):
        cause = _validate_reply(task, result, policy, journal=journal)
        if cause is None:
            cache.mark_verified(key)
    if cause is not None:
        cache.invalidate(key)
        report.cache_rejected += 1
        obs.event("cache_rejected", gi=task.gi, key=key, cause=cause)
        if journal is not None:
            journal.record_event(
                "cache_rejected", gi=task.gi, key=key, cause=cause
            )
        return None
    return result


def _run_governed(
    tasks: List[GroupTask],
    jobs: int,
    policy: TaskPolicy,
    report: RunReport,
    journal: Optional[RunJournal] = None,
    shutdown_after: Optional[int] = None,
    cache=None,
    pool=None,
) -> Tuple[List[GroupResult], RunReport]:
    """The policy path: timeouts, validation, and the degradation ladder.

    With a ``journal``, completed tasks are first replayed by
    content-addressed key (stale keys simply miss), every fragment that
    lands is journaled before the loop moves on, and SIGINT/SIGTERM —
    or the test-only ``shutdown_after`` parent-kill injection — stops
    the batch gracefully: the pool is torn down, the interruption is
    journaled, and the partial results are returned with
    ``report.interrupted`` set.

    ``cache`` (a :class:`~repro.service.ResultStore`) memoizes results
    *across* runs by the same content-addressed key the journal uses:
    tasks the store already knows are served (after revalidation — see
    :func:`_cache_lookup`) without execution, and every freshly landed
    fragment is written back.  ``pool`` is an externally owned, already
    warm worker pool (the mapping service's): it is used instead of
    creating one and is **not** terminated when the batch ends — pool
    lifecycle then belongs to the caller.
    """
    results: List[Optional[GroupResult]] = [None] * len(tasks)
    causes: Dict[int, List[str]] = {i: [] for i in range(len(tasks))}
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(tasks)

    todo = list(range(len(tasks)))
    if journal is not None or cache is not None:
        keys = [task_key(task) for task in tasks]
    if journal is not None:
        report.journal_path = journal.path
        remaining: List[int] = []
        for i in todo:
            record = journal.lookup(keys[i])
            replayed = (
                _replay_result(tasks[i], record)
                if record is not None
                else None
            )
            if replayed is not None:
                results[i] = replayed
                report.replayed += 1
            else:
                remaining.append(i)
        todo = remaining
    if cache is not None:
        remaining = []
        for i in todo:
            hit = _cache_lookup(
                tasks[i], keys[i], cache, policy, journal, report
            )
            if hit is not None:
                results[i] = hit
                report.cache_hits += 1
                report.fragments.append(
                    {
                        "gi": tasks[i].gi,
                        "group": list(tasks[i].group),
                        "key": keys[i],
                        "cached": True,
                        "seconds": hit.seconds,
                        "blif": hit.blif_text,
                    }
                )
            else:
                report.cache_misses += 1
                remaining.append(i)
        todo = remaining

    def _land(
        i: int,
        result: GroupResult,
        seconds: float,
        resolution: Optional[str] = None,
    ) -> None:
        """Accept a validated fragment: journal it, then check shutdown."""
        results[i] = result
        report.executed += 1
        if journal is not None:
            journal.record_group(
                keys[i], tasks[i], result, seconds, resolution=resolution
            )
        if cache is not None:
            # Live replies already passed _validate_reply, so the row is
            # born verified; replays validate again on their first reuse.
            # The cache is an accelerator: a write that fails (disk
            # full, cross-process lock) is counted and skipped — it must
            # never fail a request that already computed its fragment.
            try:
                cache.put(
                    keys[i],
                    result.blif_text,
                    info=result.info,
                    seconds=seconds,
                    verified=policy.verify_fragments,
                )
            except Exception as exc:  # noqa: BLE001 — any storage failure
                report.details["cache_write_errors"] = (
                    report.details.get("cache_write_errors", 0) + 1
                )
                obs.event(
                    "cache_write_error",
                    gi=tasks[i].gi,
                    key=keys[i],
                    error=f"{type(exc).__name__}: {exc}",
                )
            report.fragments.append(
                {
                    "gi": tasks[i].gi,
                    "group": list(tasks[i].group),
                    "key": keys[i],
                    "cached": False,
                    "seconds": seconds,
                    "blif": result.blif_text,
                    **({"resolution": resolution} if resolution else {}),
                }
            )
        if (
            shutdown_after is not None
            and report.executed >= shutdown_after
        ):
            raise ShutdownRequested("injected_parent_kill")

    guard = (
        graceful_shutdown()
        if journal is not None or shutdown_after is not None
        else contextlib.nullcontext()
    )
    try:
        with guard:
            worker_pool = None
            owns_pool = False
            workers = min(jobs, len(todo)) if todo else 1
            if pool is not None and todo and jobs > 1:
                # A warm externally owned pool: setup cost is already
                # paid, so the auto-serial economics never apply — use
                # it whenever there is any pooled work at all.
                worker_pool = pool
                report.details["warm_pool"] = True
            else:
                want_pool = jobs > 1 and len(todo) > 1
                # The heuristic must not pre-empt policies that rely on
                # the pool's *real* (parent-enforced) preemption: a
                # wall-clock timeout or an injected fault can hang an
                # in-process attempt that only a worker kill recovers.
                if (
                    want_pool
                    and policy.timeout_seconds is None
                    and all(task.inject is None for task in tasks)
                ):
                    serial, decision = _auto_serial_decision(
                        [tasks[i] for i in todo], jobs
                    )
                    report.details["auto_serial"] = decision
                    if serial:
                        want_pool = False
                        report.pool_fallback = (
                            "auto_serial: estimated savings "
                            f"{decision['estimated_savings']:.3f}s below "
                            f"pool setup cost {_POOL_SETUP_SECONDS:g}s"
                        )
                if want_pool:
                    try:
                        worker_pool = _make_pool(workers)
                        owns_pool = True
                    except (OSError, PermissionError, RuntimeError) as exc:
                        report.pool_fallback = f"{type(exc).__name__}: {exc}"
            report.jobs_used = workers if worker_pool is not None else 1

            if worker_pool is not None:
                try:
                    handles = [
                        (
                            i,
                            worker_pool.apply_async(
                                decompose_group_task, (tasks[i],)
                            ),
                        )
                        for i in todo
                    ]
                    for i, handle in handles:
                        try:
                            result = handle.get(timeout=policy.timeout_seconds)
                        except multiprocessing.TimeoutError:
                            report.timeouts += 1
                            causes[i].append(
                                f"timeout: exceeded {policy.timeout_seconds:g}s"
                                " wall clock"
                            )
                            pending.append(i)
                            continue
                        except BddBudgetExceeded as exc:
                            prefix = (
                                "timeout" if exc.kind == "seconds" else "budget"
                            )
                            if prefix == "timeout":
                                report.timeouts += 1
                            causes[i].append(f"{prefix}: {exc}")
                            pending.append(i)
                            continue
                        except Exception as exc:  # noqa: BLE001 - worker died
                            # A budget-exhausted exact search is a
                            # degradation, not a crash: the cause prefix
                            # keeps the two distinguishable downstream
                            # (pool recycling keys on "timeout"/faults).
                            if type(exc).__name__ == "ExactBudgetExceeded":
                                causes[i].append(f"budget: {exc}")
                            else:
                                causes[i].append(
                                    f"crash: {type(exc).__name__}: {exc}"
                                )
                            pending.append(i)
                            continue
                        cause = _validate_reply(
                            tasks[i], result, policy, journal=journal
                        )
                        if cause is None:
                            _land(i, result, result.seconds)
                        else:
                            causes[i].append(cause)
                            pending.append(i)
                finally:
                    if owns_pool:
                        # terminate, not close: a hung worker would block
                        # join forever (and a shutdown request must not
                        # wait either).  An external pool is the caller's
                        # to recycle — a timeout here may have left a
                        # hung worker, which report.timeouts surfaces.
                        worker_pool.terminate()
                        worker_pool.join()
            else:
                for i in todo:
                    cause, result = _attempt_inprocess(
                        tasks[i], policy, attempt=0, journal=journal
                    )
                    if cause is None:
                        _land(i, result, result.seconds)
                    else:
                        if cause.startswith("timeout"):
                            report.timeouts += 1
                        causes[i].append(cause)
                        pending.append(i)

            # The ladder, per still-failing task (in-process from here on:
            # the remaining work is recovery, not throughput).
            for i in pending:
                task = tasks[i]
                resolution: Optional[str] = None
                landed: Optional[GroupResult] = None
                attempt = 0
                for retry in range(1, policy.retries + 1):
                    attempt = retry
                    report.retries += 1
                    cause, result = _attempt_inprocess(
                        task, policy, attempt, journal=journal
                    )
                    if cause is None:
                        landed = result
                        resolution = "retry"
                        break
                    if cause.startswith("timeout"):
                        report.timeouts += 1
                    causes[i].append(cause)
                if (
                    resolution is None
                    and policy.per_output_fallback
                    and task.mode == "hyper"
                    and len(task.group) > 1
                ):
                    attempt += 1
                    cause, result = _attempt_inprocess(
                        task, policy, attempt, mode="per_output",
                        journal=journal,
                    )
                    if cause is None:
                        landed = result
                        resolution = "per_output"
                    else:
                        if cause.startswith("timeout"):
                            report.timeouts += 1
                        causes[i].append(cause)
                if resolution is None and task.mode == "exact":
                    # The advisory rung: an exact search that lost its
                    # budget race is *dropped*, never substituted — a
                    # structural stand-in labeled "exact" would defeat
                    # the whole point of an optimality oracle.  The
                    # portfolio reduce records "budget_exceeded" and
                    # keeps the heuristic winner.
                    report.degraded.append(
                        {
                            "gi": task.gi,
                            "group": list(task.group),
                            "causes": list(causes[i]),
                            "resolution": "dropped",
                            "attempts": attempt + 1,
                        }
                    )
                    continue
                if resolution is None and policy.structural_fallback:
                    # Parent-side and deterministic: immune to worker faults.
                    struct_start = time.perf_counter()
                    cone = parse_blif(task.blif_text)
                    fragment = structural_fragment(
                        cone, task.options.k, name=f"{task.base_name}_struct"
                    )
                    landed = GroupResult(
                        gi=task.gi,
                        blif_text=to_blif(fragment),
                        info={
                            "outputs": list(task.group),
                            "hyper": False,
                            "mode": "structural",
                        },
                        seconds=time.perf_counter() - struct_start,
                    )
                    resolution = "structural"
                if resolution is None:
                    raise RuntimeError(
                        f"group {task.gi} ({', '.join(task.group)}) failed "
                        "every recovery rung: " + "; ".join(causes[i])
                    )
                report.degraded.append(
                    {
                        "gi": task.gi,
                        "group": list(task.group),
                        "causes": list(causes[i]),
                        "resolution": resolution,
                        "attempts": attempt + 1,
                    }
                )
                _land(i, landed, landed.seconds, resolution=resolution)
    except ShutdownRequested as exc:
        report.interrupted = True
        report.interrupt_reason = exc.reason
        if journal is not None:
            journal.record_interrupted(
                exc.reason,
                completed=sum(1 for r in results if r is not None),
                total=len(tasks),
            )

    report.fragments.sort(key=lambda f: f["gi"])
    final = [r for r in results if r is not None]
    _merge_result_perf(final, report)
    return final, report


def _cone_input_count(blif_text: str) -> int:
    """Count the cone's declared PIs without a full parse."""
    for line in blif_text.splitlines():
        if line.startswith(".inputs"):
            return len(line.split()) - 1
    return 0


def _portfolio_strategies(
    task: GroupTask, policy: TaskPolicy
) -> List[str]:
    """The strategies this task races (single-output groups have no
    multi-output strategies to race; the exact oracle only races cones
    narrow enough to search exhaustively)."""
    wanted = tuple(policy.strategies) if policy.strategies else (
        PORTFOLIO_STRATEGIES
    )
    out = []
    for strategy in wanted:
        if strategy not in KNOWN_STRATEGIES:
            raise ValueError(
                f"unknown portfolio strategy {strategy!r}; expected one "
                f"of {KNOWN_STRATEGIES}"
            )
        if strategy in ("per_output", "column") and len(task.group) <= 1:
            continue
        if strategy == "exact":
            from ..exact import EXACT_MAX_INPUTS

            if _cone_input_count(task.blif_text) > EXACT_MAX_INPUTS:
                continue
        out.append(strategy)
    if all(s == "exact" for s in out):
        # The exact rung is advisory — it may come back empty
        # (budget_exceeded) — so every race carries at least one
        # heuristic that cannot lose the group.  Also covers the
        # empty list (a single-output-only selection).
        out.append("hyper")
    return out


def _variant_task(task: GroupTask, strategy: str, gi: int) -> GroupTask:
    """One pure-strategy clone of ``task`` for the portfolio race.

    Every field that changes behavior is part of the content-addressed
    task key, so variant results are shared with (and reusable by)
    non-portfolio runs of the same strategy.
    """
    inject = task.inject
    if (
        inject is not None
        and getattr(inject, "strategy", None) not in (None, strategy)
    ):
        inject = None  # strategy-targeted fault rides another variant
    task = replace(task, inject=inject)
    if strategy == "hyper":
        return replace(task, mode="hyper", gi=gi, fallback_per_output=False)
    if strategy == "per_output":
        return replace(task, mode="per_output", gi=gi)
    if strategy == "column":
        # Column encoding == hyper with PPIs pinned free (the baseline
        # flow's exact recipe), raced as its own pure candidate.
        return replace(
            task,
            mode="hyper",
            gi=gi,
            ppi_placement="force_free",
            fallback_per_output=False,
        )
    if strategy == "exact":
        return replace(task, mode="exact", gi=gi, fallback_per_output=False)
    return replace(task, mode="structural", gi=gi)


def _run_portfolio(
    tasks: List[GroupTask],
    jobs: int,
    policy: TaskPolicy,
    report: RunReport,
    journal: Optional[RunJournal] = None,
    shutdown_after: Optional[int] = None,
    cache=None,
    pool=None,
) -> Tuple[List[GroupResult], RunReport]:
    """Race every strategy per group; keep the cost-model winner.

    Each group expands into one pure-strategy variant task per raced
    strategy; all variants run through :func:`_run_governed` — the same
    budgets, timeouts, journal replay and cache the recovery ladder uses
    — and the candidates are then reduced per group under the task
    options' cost model (ties break toward the earlier strategy in
    :data:`PORTFOLIO_STRATEGIES`).  The winning fragment is returned
    under the group's original index; the full per-group scoreboard
    lands in ``report.details["portfolio"]``.
    """
    variants: List[GroupTask] = []
    origin: List[Tuple[int, str]] = []
    strategies_of: List[List[str]] = []
    for ti, task in enumerate(tasks):
        strategies = _portfolio_strategies(task, policy)
        strategies_of.append(strategies)
        for strategy in strategies:
            origin.append((ti, strategy))
            variants.append(_variant_task(task, strategy, gi=len(origin) - 1))

    cost = tasks[0].options.cost if tasks else CostModel()
    with obs.span(
        "portfolio",
        groups=len(tasks),
        variants=len(variants),
        cost=cost.spec,
    ):
        vresults, report = _run_governed(
            variants, jobs, policy, report,
            journal=journal, shutdown_after=shutdown_after,
            cache=cache, pool=pool,
        )

        by_task: Dict[int, Dict[str, GroupResult]] = {}
        for res in vresults:
            ti, strategy = origin[res.gi]
            by_task.setdefault(ti, {})[strategy] = res

        # Exact ranks last: it may only *win* a group, never break a tie
        # away from a heuristic whose fragment keys are shared with
        # non-portfolio runs.
        rank = {s: r for r, s in enumerate(KNOWN_STRATEGIES)}
        final: List[GroupResult] = []
        decisions: List[Dict[str, object]] = []
        for ti, task in enumerate(tasks):
            candidates = by_task.get(ti, {})
            missing = [s for s in strategies_of[ti] if s not in candidates]
            if any(s != "exact" for s in missing):
                # Only possible on an interrupted run: the group is
                # incomplete, so it contributes no winner (the journal
                # holds whatever variants did land).  A missing *exact*
                # candidate is different — that rung is advisory and a
                # budget-exhausted search is dropped by design, so the
                # heuristics still decide the group below.
                continue
            scoreboard: Dict[str, object] = {
                s: "budget_exceeded" for s in missing
            }
            scored: List[Tuple[Tuple, int, str, GroupResult, int, int]] = []
            for strategy in strategies_of[ti]:
                if strategy not in candidates:
                    continue
                res = candidates[strategy]
                frag = parse_blif(res.blif_text)
                luts = count_luts(frag, task.options.k)
                depth = _network_depth(frag)
                scoreboard[strategy] = {"luts": luts, "depth": depth}
                scored.append(
                    (
                        cost.fragment_key(luts, depth),
                        rank.get(strategy, len(rank)),
                        strategy,
                        res,
                        luts,
                        depth,
                    )
                )
            scored.sort(key=lambda entry: (entry[0], entry[1]))
            _, _, winner, res, luts, depth = scored[0]
            info = dict(res.info)
            info["portfolio"] = winner
            final.append(replace(res, gi=task.gi, info=info))
            decisions.append(
                {
                    "gi": task.gi,
                    "group": list(task.group),
                    "winner": winner,
                    "cost_model": cost.spec,
                    "candidates": scoreboard,
                }
            )
            obs.event(
                "portfolio_winner",
                gi=task.gi,
                winner=winner,
                luts=luts,
                depth=depth,
                cost=cost.spec,
            )
        report.details["portfolio"] = decisions
    return final, report


def run_group_tasks(
    tasks: Sequence[GroupTask],
    jobs: int,
    policy: Optional[TaskPolicy] = None,
    journal: Optional[RunJournal] = None,
    shutdown_after: Optional[int] = None,
    cache=None,
    pool=None,
) -> Tuple[List[GroupResult], RunReport]:
    """Execute group tasks, fanning out to ``jobs`` processes when >1.

    Returns ``(results, report)`` with results in task order.  Without a
    ``policy`` (and with no task carrying a fault injection) this is the
    historical fire-and-hope path — no timeouts, no reply validation,
    workers trusted absolutely — except that a refused pool is now
    *recorded* in ``report.pool_fallback`` instead of being silently
    swallowed.  With a policy, every reply is validated and failures walk
    the degradation ladder (see :class:`TaskPolicy`): the call then
    returns one usable fragment per task, or raises only after every
    rung, including the cannot-fail structural one, was disabled or
    exhausted.

    ``journal`` (a :class:`~repro.runstate.RunJournal`) makes the batch
    crash-safe and resumable: journaled tasks replay by key, fresh
    completions are journaled as they land, and shutdown signals stop
    the batch cleanly (``report.interrupted``).  ``shutdown_after`` is
    the deterministic test hook for exactly that path: it raises the
    same :class:`~repro.runstate.ShutdownRequested` after N landed
    groups that a real SIGTERM would.  Either option implies the
    governed path (a default :class:`TaskPolicy` is used when none is
    given) — replies must be validated before they may be journaled.

    ``cache`` (a :class:`~repro.service.ResultStore`) memoizes validated
    fragments across runs by content-addressed key, and ``pool`` runs
    the batch on an externally owned warm worker pool instead of a
    per-call one (the pool is left running afterwards).  Both also imply
    the governed path: cached rows and warm workers only serve
    validated replies.
    """
    tasks = list(tasks)
    report = RunReport()
    if policy is None and (
        journal is not None
        or shutdown_after is not None
        or cache is not None
        or pool is not None
        or any(t.inject is not None for t in tasks)
    ):
        policy = TaskPolicy()  # journaling/caching/faults need validation
    if policy is not None and policy.portfolio:
        return _run_portfolio(
            tasks, jobs, policy, report,
            journal=journal, shutdown_after=shutdown_after,
            cache=cache, pool=pool,
        )
    if policy is not None:
        return _run_governed(
            tasks, jobs, policy, report,
            journal=journal, shutdown_after=shutdown_after,
            cache=cache, pool=pool,
        )
    if jobs <= 1 or len(tasks) <= 1:
        results = [decompose_group_task(t) for t in tasks]
        _merge_result_perf(results, report)
        return results, report
    serial, decision = _auto_serial_decision(tasks, jobs)
    report.details["auto_serial"] = decision
    if serial:
        report.jobs_used = 1
        report.pool_fallback = (
            "auto_serial: estimated savings "
            f"{decision['estimated_savings']:.3f}s below pool setup cost "
            f"{_POOL_SETUP_SECONDS:g}s"
        )
        results = [decompose_group_task(t) for t in tasks]
        _merge_result_perf(results, report)
        return results, report
    workers = min(jobs, len(tasks))
    try:
        with _make_pool(workers) as pool:
            results = list(pool.map(decompose_group_task, tasks))
        report.jobs_used = workers
        _merge_result_perf(results, report)
        return results, report
    except (OSError, PermissionError, RuntimeError) as exc:
        # No usable process pool (sandboxed /dev/shm, missing sem_open…).
        report.jobs_used = 1
        report.pool_fallback = f"{type(exc).__name__}: {exc}"
        results = [decompose_group_task(t) for t in tasks]
        _merge_result_perf(results, report)
        return results, report
