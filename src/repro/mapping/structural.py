"""Structural (node-local) technology mapping.

The BDD-global flows (:func:`~repro.mapping.hyde.hyde_map` and friends)
collapse every output to a primary-input-level function first.  For very
large circuits SIS instead optimises the multi-level structure
algebraically and decomposes node by node — "large circuits are
optimized by applying SIS algebraic script" in the paper's Section 5.
This module provides that path:

1. optional algebraic preprocessing (:func:`repro.opt.algebraic_script`),
2. local Roth-Karp decomposition of every node with more than ``k``
   fan-ins (the node's own truth table is the function; its fan-in
   signals are the variables),
3. the usual cleanup and costing.

Because each decomposition is local, no global BDD is ever built: the
flow scales to circuits whose collapsed functions would be intractable,
at the cost of missing cross-node optimisation the global flow sees.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..bdd import BddManager
from ..decompose import DecompositionOptions, decompose_to_network
from ..network import Network
from ..opt import algebraic_script
from .clb import pack_xc3000
from .hyde import MapResult, _check
from .lut import cleanup_for_lut_count, count_luts

__all__ = ["map_structural"]


def map_structural(
    net: Network,
    k: int = 5,
    encoding_policy: str = "chart",
    preoptimize: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
) -> MapResult:
    """Map ``net`` to k-LUTs by per-node local decomposition."""
    start = time.time()
    work = net.copy(f"{net.name}_structural")
    opt_stats: Dict[str, int] = {}
    if preoptimize:
        opt_stats = algebraic_script(work)

    result = Network(f"{net.name}_struct")
    for pi in net.inputs:
        result.add_input(pi)

    options = DecompositionOptions(k=k, encoding_policy=encoding_policy)
    signal_map: Dict[str, str] = {pi: pi for pi in work.inputs}
    for index, name in enumerate(work.topological_order()):
        node = work.node(name)
        fanins = [signal_map[fi] for fi in node.fanins]
        if node.table.num_inputs == 0:
            new_name = result.fresh_name(f"s{index}_const")
            result.add_constant(new_name, 1 if node.table.mask else 0)
            signal_map[name] = new_name
            continue
        if len(fanins) <= k:
            new_name = result.fresh_name(f"s{index}")
            result.add_node(new_name, fanins, node.table)
            signal_map[name] = new_name
            continue
        # Local decomposition: fresh manager over the node's fan-ins.
        manager = BddManager()
        signal_of_level: Dict[int, str] = {}
        for j, fi in enumerate(fanins):
            manager.add_var(f"v{j}")
            signal_of_level[j] = fi
        root_bdd = manager.from_truth_table(
            node.table.mask, list(range(len(fanins)))
        )
        signal_map[name] = decompose_to_network(
            manager,
            root_bdd,
            result,
            signal_of_level,
            options,
            prefix=f"s{index}",
        )

    for out, driver in net.outputs:
        result.add_output(signal_map[driver], out)

    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        flow="structural" + ("+algebraic" if preoptimize else ""),
        details={"opt_stats": opt_stats},
    )
