"""k-LUT costing and post-mapping cleanups.

After decomposition every node is k-feasible, so the LUT count is the
internal node count — once buffers, constants, inverters and structural
duplicates are cleaned away (the role xl_cover plays in the paper's SIS
script).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..boolfunc import TruthTable
from ..network import Network, sweep

__all__ = ["count_luts", "absorb_inverters", "dedup_nodes", "cleanup_for_lut_count"]


def absorb_inverters(net: Network) -> int:
    """Fold single-input inverter nodes into their readers.

    Inverters that directly drive a primary output are kept (the paper's
    LUT model has no free output inversion).  Returns inverters removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        inverters = {
            node.name: node.fanins[0]
            for node in net.nodes()
            if node.table.num_inputs == 1 and node.table.mask == 0b01
        }
        if not inverters:
            break
        output_drivers = {driver for _, driver in net.outputs}
        for name in net.node_names():
            node = net.node(name)
            if name in inverters:
                continue
            table = node.table
            fanins = list(node.fanins)
            touched = False
            for j, fi in enumerate(fanins):
                src = inverters.get(fi)
                if src is None or src == name:
                    continue
                if src in fanins:
                    continue  # would duplicate a fanin; leave to dedup
                fanins[j] = src
                table = table.flip_input(j)
                touched = True
            if touched:
                net.replace_node(name, fanins, table)
                changed = True
        # Drop inverters that became dead and do not drive outputs.
        for name in list(inverters):
            if name in output_drivers:
                continue
            if not net.fanouts().get(name):
                net.remove_node(name)
                removed += 1
                changed = True
    return removed


def dedup_nodes(net: Network) -> int:
    """Merge structurally identical nodes (same fanins, same function).

    Fan-ins are canonically sorted (with the table remapped) before
    comparison, so commutatively-equal nodes merge too.  Iterates to a
    fixed point; returns the number of nodes merged away.
    """
    merged_total = 0
    while True:
        canon: Dict[Tuple, str] = {}
        alias: Dict[str, str] = {}
        for name in net.topological_order():
            node = net.node(name)
            fanins = [alias.get(fi, fi) for fi in node.fanins]
            # Canonical form: duplicates merged, remaining fanins sorted.
            uniq = sorted(set(fanins))
            position = {sig: j for j, sig in enumerate(uniq)}
            mapping = [position[fi] for fi in fanins]
            table = node.table.remap_inputs(len(uniq), mapping)
            sorted_fanins = tuple(uniq)
            key = (sorted_fanins, table.num_inputs, table.mask)
            existing = canon.get(key)
            if existing is not None:
                alias[name] = existing
            else:
                canon[key] = name
                if list(sorted_fanins) != node.fanins:
                    net.replace_node(name, list(sorted_fanins), table)
        if not alias:
            return merged_total
        merged_total += len(alias)
        # Redirect readers and outputs, then drop the duplicates.
        for name in net.node_names():
            if name in alias:
                continue
            node = net.node(name)
            if any(fi in alias for fi in node.fanins):
                new_fanins = [alias.get(fi, fi) for fi in node.fanins]
                if len(set(new_fanins)) != len(new_fanins):
                    # Two fanins collapsed onto one signal: merge them.
                    uniq: List[str] = []
                    for fi in new_fanins:
                        if fi not in uniq:
                            uniq.append(fi)
                    position = {sig: i for i, sig in enumerate(uniq)}
                    mapping = [position[fi] for fi in new_fanins]
                    table = node.table.remap_inputs(len(uniq), mapping)
                    net.replace_node(name, uniq, table)
                else:
                    net.replace_node(name, new_fanins, node.table)
        for out in net.output_names:
            driver = net.output_driver(out)
            if driver in alias:
                net.reroute_output(out, alias[driver])
        for name in reversed(net.topological_order()):
            if name in alias and not net.fanouts().get(name):
                net.remove_node(name)


def cleanup_for_lut_count(net: Network) -> None:
    """Run the full cleanup pipeline: sweep, dedup, absorb inverters."""
    sweep(net)
    dedup_nodes(net)
    absorb_inverters(net)
    sweep(net)
    dedup_nodes(net)


def count_luts(net: Network, k: int) -> int:
    """Number of k-LUTs (all nodes must already be k-feasible)."""
    for node in net.nodes():
        if len(node.fanins) > k:
            raise ValueError(
                f"node {node.name} has {len(node.fanins)} > {k} inputs"
            )
    # Constants cost no LUT; everything else does.
    return sum(1 for node in net.nodes() if node.table.num_inputs > 0)
