"""k-LUT costing and post-mapping cleanups.

After decomposition every node is k-feasible, so the LUT count is the
internal node count — once buffers, constants, inverters and structural
duplicates are cleaned away (the role xl_cover plays in the paper's SIS
script).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..boolfunc import TruthTable
from ..network import Network, rename_po_drivers, sweep

__all__ = ["count_luts", "absorb_inverters", "dedup_nodes", "cleanup_for_lut_count"]


def absorb_inverters(net: Network) -> int:
    """Fold single-input inverter nodes into their readers.

    Inverter *chains* resolve through to their ultimate source (inv→inv
    is a wire), so readers always rewire to the chain's source with the
    net parity applied.  An inverter that directly drives a primary
    output is kept when the chain parity is odd (the paper's LUT model
    has no free output inversion), but an even chain at an output is a
    wire: the output is rerouted to the source instead of keeping a
    buffer that would be miscounted as a LUT.  Returns the number of
    inverters removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        inverters = {
            node.name: node.fanins[0]
            for node in net.nodes()
            if node.table.num_inputs == 1 and node.table.mask == 0b01
        }
        if not inverters:
            break

        def resolve(sig: str) -> Tuple[str, bool]:
            """Walk an inverter chain; return (source, parity_is_odd)."""
            flip = False
            seen = set()
            while sig in inverters and sig not in seen:
                seen.add(sig)
                sig = inverters[sig]
                flip = not flip
            return sig, flip

        for name in net.node_names():
            node = net.node(name)
            if name in inverters:
                continue
            table = node.table
            fanins = list(node.fanins)
            touched = False
            for j, fi in enumerate(fanins):
                if fi not in inverters:
                    continue
                src, flip = resolve(fi)
                if src == name or src in fanins:
                    continue  # self-loop / duplicate fanin; leave to dedup
                fanins[j] = src
                if flip:
                    table = table.flip_input(j)
                touched = True
            if touched:
                net.replace_node(name, fanins, table)
                changed = True
        # Primary outputs fed by a chain: even parity is a wire (reroute
        # the output); odd parity keeps one inverter over the source.
        for out in net.output_names:
            driver = net.output_driver(out)
            if driver not in inverters:
                continue
            src, flip = resolve(driver)
            if not flip:
                net.reroute_output(out, src)
                changed = True
            elif net.node(driver).fanins[0] != src:
                net.replace_node(driver, [src], TruthTable(1, 0b01))
                changed = True
        # Drop inverters that became dead and do not drive outputs.
        output_drivers = {driver for _, driver in net.outputs}
        for name in list(inverters):
            if name in output_drivers:
                continue
            if not net.fanouts().get(name):
                net.remove_node(name)
                removed += 1
                changed = True
    # Any PO-driving buffer left behind (a double inversion collapsed by
    # an earlier pass) is also a wire: reroute and drop it.
    for out in net.output_names:
        driver = net.output_driver(out)
        if net.is_input(driver):
            continue
        dnode = net.node(driver)
        if dnode.table.num_inputs == 1 and dnode.table.mask == 0b10:
            net.reroute_output(out, dnode.fanins[0])
    for name in net.node_names():
        node = net.node(name)
        if (
            node.table.num_inputs == 1
            and node.table.mask == 0b10
            and name not in {driver for _, driver in net.outputs}
            and not net.fanouts().get(name)
        ):
            net.remove_node(name)
            removed += 1
    return removed


def dedup_nodes(net: Network) -> int:
    """Merge structurally identical nodes (same fanins, same function).

    Fan-ins are canonically sorted (with the table remapped) before
    comparison, so commutatively-equal nodes merge too.  Iterates to a
    fixed point; returns the number of nodes merged away.
    """
    merged_total = 0
    while True:
        canon: Dict[Tuple, str] = {}
        alias: Dict[str, str] = {}
        for name in net.topological_order():
            node = net.node(name)
            fanins = [alias.get(fi, fi) for fi in node.fanins]
            # Canonical form: duplicates merged, remaining fanins sorted.
            uniq = sorted(set(fanins))
            position = {sig: j for j, sig in enumerate(uniq)}
            mapping = [position[fi] for fi in fanins]
            table = node.table.remap_inputs(len(uniq), mapping)
            sorted_fanins = tuple(uniq)
            key = (sorted_fanins, table.num_inputs, table.mask)
            existing = canon.get(key)
            if existing is not None:
                alias[name] = existing
            else:
                canon[key] = name
                if list(sorted_fanins) != node.fanins:
                    net.replace_node(name, list(sorted_fanins), table)
        if not alias:
            return merged_total
        merged_total += len(alias)
        # Redirect readers and outputs, then drop the duplicates.
        for name in net.node_names():
            if name in alias:
                continue
            node = net.node(name)
            if any(fi in alias for fi in node.fanins):
                new_fanins = [alias.get(fi, fi) for fi in node.fanins]
                if len(set(new_fanins)) != len(new_fanins):
                    # Two fanins collapsed onto one signal: merge them.
                    uniq: List[str] = []
                    for fi in new_fanins:
                        if fi not in uniq:
                            uniq.append(fi)
                    position = {sig: i for i, sig in enumerate(uniq)}
                    mapping = [position[fi] for fi in new_fanins]
                    table = node.table.remap_inputs(len(uniq), mapping)
                    net.replace_node(name, uniq, table)
                else:
                    net.replace_node(name, new_fanins, node.table)
        for out in net.output_names:
            driver = net.output_driver(out)
            if driver in alias:
                net.reroute_output(out, alias[driver])
        for name in reversed(net.topological_order()):
            if name in alias and not net.fanouts().get(name):
                net.remove_node(name)


def cleanup_for_lut_count(net: Network) -> None:
    """Run the cleanup pipeline to a fixed point: sweep, dedup, absorb.

    The loop exits only after a full round changes nothing, so the
    network handed to ``network_stats`` and the BLIF emitter is exactly
    the swept one — no dead node, buffer or stale duplicate can make the
    reported (LUTs, depth) pair disagree with the emitted netlist.
    """
    while True:
        changed = sweep(net)
        changed += dedup_nodes(net)
        changed += absorb_inverters(net)
        if not changed:
            # Pure renaming (kills the BLIF emitter's PO buffers); it
            # cannot enable further sweeps, so it runs once, after the
            # structural fixpoint.
            rename_po_drivers(net)
            break


def count_luts(net: Network, k: int) -> int:
    """Number of k-LUTs (all nodes must already be k-feasible)."""
    for node in net.nodes():
        if len(node.fanins) > k:
            raise ValueError(
                f"node {node.name} has {len(node.fanins)} > {k} inputs"
            )
    # Constants cost no LUT; everything else does.
    return sum(1 for node in net.nodes() if node.table.num_inputs > 0)
