"""Support-minimising resubstitution (the role of Sawada et al. [8]).

Reference [8] of the paper resubstitutes decomposition functions into
other functions to shrink their supports.  This pass generalises that
idea structurally: for every node it searches for an existing signal that
can replace *two or more* of the node's fan-ins (a strict support
reduction), verified exactly by exhaustive bit-parallel simulation over
the primary inputs.  Only usable on circuits with a moderate PI count —
exactly the limitation the paper notes for [8] ("disability of handling
large circuits such as C880").
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..boolfunc import TruthTable
from ..network import Network
from ..network.simulate import simulate_all_signals
from .lut import cleanup_for_lut_count

__all__ = ["resubstitute", "functionally_dependent"]


def _signal_columns(net: Network) -> Dict[str, np.ndarray]:
    """Exhaustive-simulation value column (uint8, length 2^|PI|) per signal."""
    n = len(net.inputs)
    total = 1 << n
    patterns = {
        pi: [(index >> j) & 1 for index in range(total)]
        for j, pi in enumerate(net.inputs)
    }
    words = simulate_all_signals(net, patterns, total)
    columns: Dict[str, np.ndarray] = {}
    num_bytes = (total + 7) // 8
    for name, word in words.items():
        raw = word.to_bytes(num_bytes, "little")
        bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), bitorder="little"
        )
        columns[name] = bits[:total]
    return columns


def functionally_dependent(
    target: np.ndarray, basis: Sequence[np.ndarray]
) -> Optional[TruthTable]:
    """Is ``target`` a function of the ``basis`` columns?

    Returns the truth table over the basis (don't cares for patterns
    never produced, resolved to 0) or ``None`` when two minterms with the
    same basis pattern need different target values.
    """
    width = len(basis)
    key = np.zeros(len(target), dtype=np.int64)
    for j, col in enumerate(basis):
        key |= col.astype(np.int64) << j
    mask = 0
    seen: Dict[int, int] = {}
    for pattern, value in zip(key.tolist(), target.tolist()):
        prev = seen.get(pattern)
        if prev is None:
            seen[pattern] = value
            if value:
                mask |= 1 << pattern
        elif prev != value:
            return None
    return TruthTable(width, mask)


def resubstitute(
    net: Network,
    k: int,
    max_pis: int = 14,
    max_candidates: int = 64,
    passes: int = 2,
) -> int:
    """Reduce node supports by resubstituting existing signals.

    For each node with at least three fan-ins, tries every existing
    non-downstream signal as a substitute for each pair of fan-ins;
    accepts the first strict support reduction found.  Returns the number
    of rewrites applied.  No-op (returns 0) when the circuit has more
    than ``max_pis`` primary inputs.
    """
    if len(net.inputs) > max_pis:
        return 0

    rewrites = 0
    for _ in range(passes):
        columns = _signal_columns(net)
        changed = False
        order = net.topological_order()
        for name in order:
            node = net.node(name)
            if len(node.fanins) < 3:
                continue
            downstream = net.transitive_fanout([name])
            candidates = [
                sig
                for sig in (net.inputs + order)
                if sig not in downstream and sig not in node.fanins
            ][:max_candidates]
            target = columns[name]
            done = False
            for drop_a, drop_b in combinations(range(len(node.fanins)), 2):
                if done:
                    break
                kept = [
                    fi
                    for j, fi in enumerate(node.fanins)
                    if j not in (drop_a, drop_b)
                ]
                for cand in candidates:
                    basis_names = kept + [cand]
                    table = functionally_dependent(
                        target, [columns[s] for s in basis_names]
                    )
                    if table is None:
                        continue
                    reduced, kept_idx = table.minimize_support()
                    net.replace_node(
                        name,
                        [basis_names[i] for i in kept_idx],
                        reduced,
                    )
                    rewrites += 1
                    changed = True
                    done = True
                    break
        if not changed:
            break
        cleanup_for_lut_count(net)
    return rewrites
