"""Baseline mapping flows — the other columns of Tables 1 and 2.

All baselines share HYDE's substrate (same BDDs, same recursive
decomposition, same cleanup and CLB packer) and differ only in the policy
under test, so each comparison isolates one of the paper's claims:

* :func:`map_per_output` with ``encoding_policy="random"`` — per-output
  decomposition with a strict rigid random-draft encoding and no
  multiple-output sharing (the "[8] without resubstitution" column and
  the IMODEC-like single-output reference);
* :func:`map_per_output` + :func:`repro.mapping.resub.resubstitute` —
  the "[8] with resubstitution" column (support minimisation across
  outputs);
* :func:`map_column_encoding` — hyper-function with PPIs *pinned to the
  free set*, which Section 4.3 proves is exactly FGSyn's column encoding;
* :func:`map_shannon` — a Shannon-cofactor (BDD-to-MUX) mapper as a
  decomposition-free sanity baseline.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..bdd import FALSE, TRUE
from ..decompose import DecompositionOptions, decompose_to_network
from ..network import GlobalBdds, Network
from .clb import pack_xc3000
from .hyde import MapResult, _check, hyde_map
from .lut import cleanup_for_lut_count, count_luts
from .resub import resubstitute

__all__ = [
    "map_per_output",
    "map_per_output_resub",
    "map_column_encoding",
    "map_shannon",
]


def map_per_output(
    net: Network,
    k: int = 5,
    encoding_policy: str = "random",
    use_dontcares: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
) -> MapResult:
    """Decompose every output independently (no hyper-function)."""
    start = time.time()
    gb = GlobalBdds(net)
    manager = gb.manager
    options = DecompositionOptions(
        k=k, encoding_policy=encoding_policy, use_dontcares=use_dontcares
    )
    result = Network(f"{net.name}_po_{encoding_policy}")
    for pi in net.inputs:
        result.add_input(pi)
    driver_of: Dict[str, str] = {}
    seen: Dict[int, str] = {}
    for oi, out in enumerate(net.output_names):
        bdd = gb.of_output(out)
        if bdd in (FALSE, TRUE):
            name = result.fresh_name(f"{out}_const")
            result.add_constant(name, 1 if bdd == TRUE else 0)
            driver_of[out] = name
            continue
        rep = seen.get(bdd)
        if rep is not None:
            driver_of[out] = driver_of[rep]
            continue
        seen[bdd] = out
        signal_of_level = {manager.level_of(pi): pi for pi in net.inputs}
        driver_of[out] = decompose_to_network(
            manager, bdd, result, signal_of_level, options, prefix=f"o{oi}"
        )
    for out in net.output_names:
        result.add_output(driver_of[out], out)
    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        groups=[[out] for out in net.output_names],
        flow=f"per-output/{encoding_policy}",
    )


def map_per_output_resub(
    net: Network,
    k: int = 5,
    encoding_policy: str = "random",
    use_dontcares: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
    max_pis: int = 14,
) -> MapResult:
    """Per-output decomposition followed by support-minimising resub."""
    start = time.time()
    base = map_per_output(
        net,
        k,
        encoding_policy=encoding_policy,
        use_dontcares=use_dontcares,
        verify="none",
        pack_clbs=False,
    )
    result = base.network
    rewrites = resubstitute(result, k, max_pis=max_pis)
    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        groups=base.groups,
        flow=f"per-output+resub/{encoding_policy}",
        details={"rewrites": rewrites},
    )


def map_column_encoding(
    net: Network,
    k: int = 5,
    max_group: int = 4,
    verify: str = "bdd",
    pack_clbs: bool = True,
) -> MapResult:
    """FGSyn-like column encoding: PPIs never enter a bound set."""
    result = hyde_map(
        net,
        k=k,
        max_group=max_group,
        ppi_placement="force_free",
        verify=verify,
        pack_clbs=pack_clbs,
    )
    result.flow = "column-encoding"
    return result


def map_shannon(
    net: Network,
    k: int = 5,
    verify: str = "bdd",
    pack_clbs: bool = True,
) -> MapResult:
    """BDD-to-MUX mapping: one 3-input mux LUT per shared BDD node."""
    from ..boolfunc import TruthTable

    start = time.time()
    gb = GlobalBdds(net)
    manager = gb.manager
    result = Network(f"{net.name}_shannon")
    for pi in net.inputs:
        result.add_input(pi)
    mux = TruthTable.from_function(3, lambda s, a, b: b if s else a)
    signal_of: Dict[int, str] = {}

    def build(bdd: int) -> str:
        cached = signal_of.get(bdd)
        if cached is not None:
            return cached
        if bdd in (FALSE, TRUE):
            name = result.fresh_name("const")
            result.add_constant(name, 1 if bdd == TRUE else 0)
            signal_of[bdd] = name
            return name
        var = manager.name_of(manager.level(bdd))
        lo = build(manager.low(bdd))
        hi = build(manager.high(bdd))
        name = result.fresh_name("mux")
        result.add_node(name, [var, lo, hi], mux)
        signal_of[bdd] = name
        return name

    for out in net.output_names:
        result.add_output(build(gb.of_output(out)), out)
    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        flow="shannon",
    )
