"""Baseline mapping flows — the other columns of Tables 1 and 2.

All baselines share HYDE's substrate (same BDDs, same recursive
decomposition, same cleanup and CLB packer) and differ only in the policy
under test, so each comparison isolates one of the paper's claims:

* :func:`map_per_output` with ``encoding_policy="random"`` — per-output
  decomposition with a strict rigid random-draft encoding and no
  multiple-output sharing (the "[8] without resubstitution" column and
  the IMODEC-like single-output reference);
* :func:`map_per_output` + :func:`repro.mapping.resub.resubstitute` —
  the "[8] with resubstitution" column (support minimisation across
  outputs);
* :func:`map_column_encoding` — hyper-function with PPIs *pinned to the
  free set*, which Section 4.3 proves is exactly FGSyn's column encoding;
* :func:`map_shannon` — a Shannon-cofactor (BDD-to-MUX) mapper as a
  decomposition-free sanity baseline.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional

from .. import obs
from ..bdd import FALSE, TRUE
from ..decompose import DecompositionOptions, decompose_to_network
from ..network import GlobalBdds, Network, extract_cone, parse_blif, to_blif
from ..runstate import RunInterrupted, RunJournal
from .clb import pack_xc3000
from .hyde import MapResult, _check, _resume_gate, _splice, hyde_map
from .lut import cleanup_for_lut_count, count_luts
from .parallel import GroupTask, TaskPolicy, run_group_tasks
from .resub import resubstitute

__all__ = [
    "map_per_output",
    "map_per_output_resub",
    "map_column_encoding",
    "map_shannon",
]


def map_per_output(
    net: Network,
    k: int = 5,
    encoding_policy: str = "random",
    use_dontcares: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
    jobs: int = 1,
    use_oracle: bool = True,
    oracle_min_support: int = 10,
    fast_path: str = "auto",
    fast_path_max_width: Optional[int] = None,
    policy: Optional[TaskPolicy] = None,
    faults: Optional[object] = None,
    max_bdd_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    cache=None,
    pool=None,
    cost_model: str = "area",
) -> MapResult:
    """Decompose every output independently (no hyper-function).

    ``jobs > 1`` decomposes the output cones in a process pool (each
    output is its own task; see :mod:`repro.mapping.parallel`).
    ``policy`` / ``faults`` / ``journal`` behave as in
    :func:`~repro.mapping.hyde.hyde_map`: any of them routes the outputs
    through the fault-tolerant task runner (even at ``jobs=1``);
    recovery shows up in ``details["degraded"]`` /
    ``details["pool_fallback"]``, and a journal adds checkpoint/resume
    with the same interruption and resume-gate contract.  ``cache`` /
    ``pool`` behave as in :func:`~repro.mapping.hyde.hyde_map`: a
    content-addressed result store serving revalidated fragments across
    runs, and an externally owned warm worker pool.
    """
    start = time.time()
    gb = GlobalBdds(net)
    manager = gb.manager
    perf = manager.perf
    options = DecompositionOptions(
        k=k,
        encoding_policy=encoding_policy,
        use_dontcares=use_dontcares,
        use_oracle=use_oracle,
        oracle_min_support=oracle_min_support,
        fast_path=fast_path,
        fast_path_max_width=fast_path_max_width,
        max_bdd_nodes=max_bdd_nodes,
        max_seconds=max_seconds,
        cost_model=cost_model,
    )
    result = Network(f"{net.name}_po_{encoding_policy}")
    for pi in net.inputs:
        result.add_input(pi)
    driver_of: Dict[str, str] = {}
    alias_of: Dict[str, str] = {}  # duplicate output -> representative
    seen: Dict[int, str] = {}
    unique: list = []  # (oi, out) pairs that actually need decomposing
    with perf.phase("bdd_build"), obs.span("bdd_build", manager=manager):
        for oi, out in enumerate(net.output_names):
            bdd = gb.of_output(out)
            if bdd in (FALSE, TRUE):
                name = result.fresh_name(f"{out}_const")
                result.add_constant(name, 1 if bdd == TRUE else 0)
                driver_of[out] = name
                continue
            rep = seen.get(bdd)
            if rep is not None:
                alias_of[out] = rep
                continue
            seen[bdd] = out
            unique.append((oi, out))
    jobs_used = 1
    degraded: list = []
    pool_fallback: Optional[str] = None
    use_tasks = (
        (jobs > 1 and len(unique) > 1)
        or policy is not None
        or bool(faults)
        or journal is not None
        or cache is not None
        or pool is not None
    )
    if verify == "finegrain" and use_tasks:
        # Mirror hyde_map: fine-grained verification upgrades reply
        # validation to the cut-point engine (explicit settings win).
        if policy is None:
            policy = TaskPolicy(verify_mode="finegrain")
        elif policy.verify_mode == "bdd":
            policy = replace(policy, verify_mode="finegrain")
    run_report = None
    if use_tasks and unique:
        recorder = obs.active()
        tasks = [
            GroupTask(
                blif_text=to_blif(
                    extract_cone(net, [out], name=f"{net.name}_o{oi}_cone")
                ),
                group=[out],
                gi=oi,
                options=options,
                fallback_per_output=False,
                base_name=f"{net.name}_o{oi}",
                inject=faults.spec_for(oi) if faults else None,
                trace=recorder is not None,
            )
            for oi, out in unique
        ]
        with perf.phase("decompose"), obs.span(
            "decompose", manager=manager, groups=len(tasks), jobs=jobs
        ) as dspan:
            results, run_report = run_group_tasks(
                tasks,
                jobs,
                policy,
                journal=journal,
                shutdown_after=getattr(faults, "parent_kill_after", None),
                cache=cache,
                pool=pool,
            )
            if recorder is not None:
                for res in results:
                    if res.spans:
                        recorder.graft(
                            res.spans, parent=dspan, offset=dspan.start
                        )
        jobs_used = run_report.jobs_used
        degraded = run_report.degraded
        pool_fallback = run_report.pool_fallback
        if run_report.interrupted:
            obs.event(
                "interrupted",
                reason=run_report.interrupt_reason,
                completed=len(results),
                total=len(tasks),
            )
            raise RunInterrupted(
                run_report.interrupt_reason or "shutdown",
                completed=len(results),
                total=len(tasks),
                journal_path=run_report.journal_path,
            )
        if pool_fallback is not None:
            obs.event("pool_fallback", reason=pool_fallback)
        for entry in degraded:
            obs.event(
                "degraded",
                gi=entry.get("gi"),
                resolution=entry.get("resolution"),
                attempts=entry.get("attempts"),
                causes=entry.get("causes"),
            )
        perf.merge_dict(run_report.perf)
        with perf.phase("splice"), obs.span("splice", manager=manager):
            for (oi, out), res in zip(unique, results):
                fragment = parse_blif(res.blif_text)
                rename = _splice(result, fragment, f"o{oi}_")
                driver_of[out] = rename[fragment.output_driver(out)]
    else:
        options.arm_budget(manager)  # serial path: budget on our manager
        with perf.phase("decompose"), obs.span(
            "decompose", manager=manager, groups=len(unique), jobs=1
        ):
            for oi, out in unique:
                with obs.span("group", manager=manager, gi=oi, outputs=1):
                    signal_of_level = {
                        manager.level_of(pi): pi for pi in net.inputs
                    }
                    driver_of[out] = decompose_to_network(
                        manager,
                        gb.of_output(out),
                        result,
                        signal_of_level,
                        options,
                        prefix=f"o{oi}",
                    )
    for out in net.output_names:
        driver = driver_of.get(out)
        if driver is None:
            driver = driver_of[alias_of[out]]
        result.add_output(driver, out)
    with perf.phase("cleanup"), obs.span("cleanup", manager=manager):
        cleanup_for_lut_count(result)
    with perf.phase("verify"), obs.span("verify", manager=manager):
        _check(net, result, verify)
    journal_info = _resume_gate(net, result, journal, run_report, verify, perf)
    perf_report = perf.snapshot(manager)
    if manager._class_oracle is not None:
        perf_report["oracle"] = manager._class_oracle.stats()
    perf_report["jobs_requested"] = jobs
    perf_report["jobs_used"] = jobs_used
    lut_count = count_luts(result, k)
    clb_count = pack_xc3000(result).num_clbs if pack_clbs else None
    seconds = time.time() - start
    if journal is not None:
        journal.record_done(
            flow=f"per-output/{encoding_policy}",
            lut_count=lut_count,
            clb_count=clb_count,
            seconds=round(seconds, 6),
        )
    extra_details: Dict[str, object] = {}
    if run_report is not None:
        extra_details.update(run_report.details)
        if cache is not None:
            extra_details["cache"] = {
                "hits": run_report.cache_hits,
                "misses": run_report.cache_misses,
                "rejected": run_report.cache_rejected,
            }
            extra_details["fragments"] = run_report.fragments
    return MapResult(
        network=result,
        k=k,
        lut_count=lut_count,
        clb_count=clb_count,
        seconds=seconds,
        groups=[[out] for out in net.output_names],
        flow=f"per-output/{encoding_policy}",
        details={
            "perf": perf_report,
            "degraded": degraded,
            "pool_fallback": pool_fallback,
            "journal": journal_info,
            **extra_details,
        },
    )


def map_per_output_resub(
    net: Network,
    k: int = 5,
    encoding_policy: str = "random",
    use_dontcares: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
    max_pis: int = 14,
    jobs: int = 1,
    fast_path: str = "auto",
    policy: Optional[TaskPolicy] = None,
    faults: Optional[object] = None,
    max_bdd_nodes: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    cache=None,
    pool=None,
    cost_model: str = "area",
) -> MapResult:
    """Per-output decomposition followed by support-minimising resub."""
    start = time.time()
    base = map_per_output(
        net,
        k,
        encoding_policy=encoding_policy,
        use_dontcares=use_dontcares,
        verify="none",
        pack_clbs=False,
        jobs=jobs,
        cost_model=cost_model,
        fast_path=fast_path,
        policy=policy,
        faults=faults,
        max_bdd_nodes=max_bdd_nodes,
        journal=journal,
        cache=cache,
        pool=pool,
    )
    result = base.network
    rewrites = resubstitute(result, k, max_pis=max_pis)
    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        groups=base.groups,
        flow=f"per-output+resub/{encoding_policy}",
        details={
            "rewrites": rewrites,
            "perf": base.details.get("perf"),
            "degraded": base.details.get("degraded", []),
            "pool_fallback": base.details.get("pool_fallback"),
            **{
                key: base.details[key]
                for key in ("cache", "fragments")
                if key in base.details
            },
        },
    )


def map_column_encoding(
    net: Network,
    k: int = 5,
    max_group: int = 4,
    verify: str = "bdd",
    pack_clbs: bool = True,
    jobs: int = 1,
    fast_path: str = "auto",
    policy: Optional[TaskPolicy] = None,
    faults: Optional[object] = None,
    max_bdd_nodes: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    cache=None,
    pool=None,
    cost_model: str = "area",
) -> MapResult:
    """FGSyn-like column encoding: PPIs never enter a bound set."""
    result = hyde_map(
        net,
        k=k,
        max_group=max_group,
        ppi_placement="force_free",
        verify=verify,
        pack_clbs=pack_clbs,
        jobs=jobs,
        fast_path=fast_path,
        policy=policy,
        faults=faults,
        max_bdd_nodes=max_bdd_nodes,
        journal=journal,
        cache=cache,
        pool=pool,
        cost_model=cost_model,
    )
    result.flow = "column-encoding"
    return result


def map_shannon(
    net: Network,
    k: int = 5,
    verify: str = "bdd",
    pack_clbs: bool = True,
) -> MapResult:
    """BDD-to-MUX mapping: one 3-input mux LUT per shared BDD node."""
    from ..boolfunc import TruthTable

    start = time.time()
    gb = GlobalBdds(net)
    manager = gb.manager
    result = Network(f"{net.name}_shannon")
    for pi in net.inputs:
        result.add_input(pi)
    mux = TruthTable.from_function(3, lambda s, a, b: b if s else a)
    signal_of: Dict[int, str] = {}

    def build(bdd: int) -> str:
        cached = signal_of.get(bdd)
        if cached is not None:
            return cached
        if bdd in (FALSE, TRUE):
            name = result.fresh_name("const")
            result.add_constant(name, 1 if bdd == TRUE else 0)
            signal_of[bdd] = name
            return name
        var = manager.name_of(manager.level(bdd))
        lo = build(manager.low(bdd))
        hi = build(manager.high(bdd))
        name = result.fresh_name("mux")
        result.add_node(name, [var, lo, hi], mux)
        signal_of[bdd] = name
        return name

    for out in net.output_names:
        result.add_output(build(gb.of_output(out)), out)
    cleanup_for_lut_count(result)
    _check(net, result, verify)
    return MapResult(
        network=result,
        k=k,
        lut_count=count_luts(result, k),
        clb_count=pack_xc3000(result).num_clbs if pack_clbs else None,
        seconds=time.time() - start,
        flow="shannon",
    )
