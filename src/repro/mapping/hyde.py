"""HYDE — the paper's complete technology-mapping flow.

Pipeline (mirroring Section 5's experimental setup):

1. build global BDDs of every primary output,
2. deduplicate functionally identical outputs,
3. cluster the remaining outputs into ingredient groups by support
   similarity,
4. fold each group into a hyper-function (chart-encoded PPI codes),
   decompose it recursively with compatible class encoding, and recover
   the ingredients by duplicating only the duplication cone,
5. splice the per-group fragments into one network, clean it up
   (sweep / dedup / inverter absorption — the xl_cover role) and cost it
   in k-LUTs and XC3000 CLBs.

Baselines (Tables 1 and 2's other columns) live in
:mod:`repro.mapping.baselines` and reuse the same machinery with
different policies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bdd import FALSE, TRUE
from ..decompose import DecompositionOptions, decompose_to_network
from ..network import (
    GlobalBdds,
    Network,
    check_equivalence,
    extract_cone,
    parse_blif,
    simulate_equivalence,
    to_blif,
)
from ..runstate import RunInterrupted, RunJournal
from .clb import pack_xc3000
from .lut import cleanup_for_lut_count, count_luts
from .parallel import GroupTask, TaskPolicy, build_group_fragment, run_group_tasks

__all__ = ["MapResult", "hyde_map", "cluster_outputs"]


@dataclass
class MapResult:
    """Outcome of a mapping flow run."""

    network: Network
    k: int
    lut_count: int
    clb_count: Optional[int]
    seconds: float
    groups: List[List[str]] = field(default_factory=list)
    flow: str = "hyde"
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """LUT levels from inputs to the deepest output."""
        from ..network import node_depths

        depths = node_depths(self.network)
        return max(
            (depths[driver] for _, driver in self.network.outputs),
            default=0,
        )

    def __str__(self) -> str:
        clb = f", {self.clb_count} CLBs" if self.clb_count is not None else ""
        return (
            f"{self.flow}: {self.lut_count} LUTs{clb}, depth {self.depth}, "
            f"{self.seconds:.2f}s"
        )


def cluster_outputs(
    supports: Dict[str, List[str]], max_group: int
) -> List[List[str]]:
    """Greedy support-similarity clustering of output names.

    Seeds each group with the widest unclustered output, then absorbs the
    most-similar outputs (Jaccard on supports, requiring a non-empty
    intersection) up to ``max_group`` members.
    """
    remaining = sorted(
        supports, key=lambda o: (-len(supports[o]), o)
    )
    groups: List[List[str]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        seed_support = set(supports[seed])
        while len(group) < max_group and remaining:
            best = None
            best_score = 0.0
            for cand in remaining:
                cs = set(supports[cand])
                inter = len(seed_support & cs)
                if inter == 0:
                    continue
                score = inter / len(seed_support | cs)
                if score > best_score:
                    best_score = score
                    best = cand
            if best is None:
                break
            group.append(best)
            remaining.remove(best)
            seed_support |= set(supports[best])
        groups.append(group)
    return groups


def hyde_map(
    net: Network,
    k: int = 5,
    max_group: int = 4,
    encoding_policy: str = "chart",
    ingredient_policy: str = "chart",
    ppi_placement: str = "prefer_free",
    use_dontcares: bool = True,
    verify: str = "bdd",
    pack_clbs: bool = True,
    fallback_per_output: bool = True,
    jobs: int = 1,
    use_oracle: bool = True,
    oracle_min_support: int = 10,
    fast_path: str = "auto",
    fast_path_max_width: Optional[int] = None,
    policy: Optional[TaskPolicy] = None,
    faults: Optional[object] = None,
    max_bdd_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
    journal: Optional[RunJournal] = None,
    cache=None,
    pool=None,
    cost_model: str = "area",
    portfolio: bool = False,
    exact_budget_seconds: Optional[float] = None,
) -> MapResult:
    """Map ``net`` to k-LUTs with the full HYDE flow.

    ``verify`` is ``"bdd"`` (exact equivalence check), ``"sim"`` (random
    simulation screen) or ``"none"``.  Raises ``AssertionError`` when
    verification fails.  With ``fallback_per_output`` each ingredient
    group is also decomposed output-by-output and the cheaper variant is
    kept — extracting common sub-expressions only where sharing actually
    pays for the duplication cone.

    ``jobs > 1`` fans the ingredient groups out to a process pool (each
    worker decomposes its group's fan-in cone in a private manager; see
    :mod:`repro.mapping.parallel`).  ``use_oracle=False`` disables the
    memoized class-count oracle for ablation runs;
    ``oracle_min_support`` bypasses it on cones too narrow to amortize
    (see :class:`~repro.decompose.DecompositionOptions`).  ``fast_path``
    selects the class-counting backend — ``"auto"`` (packed tables for
    narrow supports, BDD beyond ``fast_path_max_width``), ``"bitpack"``
    or ``"bdd"`` — the mapping is identical either way.  Counter and
    phase-time telemetry lands in ``MapResult.details["perf"]``.

    ``policy`` (a :class:`~repro.mapping.parallel.TaskPolicy`) turns on
    fault tolerance: per-group timeouts, reply validation and the
    degradation ladder.  Groups that needed recovery are listed in
    ``details["degraded"]``; a refused process pool lands in
    ``details["pool_fallback"]``.  ``faults`` (a
    :class:`~repro.testing.FaultPlan`) injects deterministic failures at
    selected groups — test/CLI machinery for exercising those paths.
    Either argument routes the flow through the task runner even at
    ``jobs=1``; with both left ``None`` the serial path is untouched.

    ``max_bdd_nodes`` / ``max_seconds`` put a resource budget on each
    decomposition manager: blowing it raises
    :class:`~repro.bdd.BddBudgetExceeded` — which the task runner turns
    into a ladder step when a ``policy`` is set, and which propagates to
    the caller (instead of grinding forever) when one is not.

    ``journal`` (a :class:`~repro.runstate.RunJournal`) makes the run
    crash-safe and resumable: each group's fragment is journaled as it
    lands, already-journaled groups replay by content-addressed key
    instead of re-executing, and a SIGINT/SIGTERM mid-run raises
    :class:`~repro.runstate.RunInterrupted` *after* the journal recorded
    the interruption.  When a resumed run replayed anything, the spliced
    network passes a mandatory BDD equivalence gate against ``net``
    (regardless of ``verify``) and the journal records the verdict;
    ``details["journal"]`` reports the replayed/executed split.

    ``cache`` (a :class:`~repro.service.ResultStore`) memoizes group
    fragments across runs by the journal's content-addressed task key —
    repeat mappings of the same cones are served from SQLite after
    revalidation instead of re-decomposed, with the hit/miss/reject
    split in ``details["cache"]`` and per-fragment serving records in
    ``details["fragments"]``.  ``pool`` is an externally owned warm
    worker pool (see :class:`~repro.service.WarmPool`) reused across
    calls instead of a per-call pool.  Either routes the flow through
    the governed task runner.

    ``cost_model`` selects the mapping objective — ``"area"`` (LUT
    count, the historical default), ``"delay"`` (logic levels first) or
    ``"weighted[:AW,DW]"`` (see :mod:`repro.decompose.cost`) — threaded
    through bound-set selection, the chart encoder's merge benefit and
    every fragment comparison.  ``portfolio`` races hyper / per-output /
    column-encoding / structural per ingredient group under the governed
    runner and keeps each group's winner under the active cost model;
    the per-group scoreboard lands in ``details["portfolio"]``.
    ``exact_budget_seconds`` bounds each :mod:`repro.exact` search when
    the policy's strategies include the optional ``"exact"`` rung —
    a search that exhausts it is dropped (the heuristic winner stands
    and the scoreboard records ``"budget_exceeded"``), never wrong.
    """
    start = time.time()
    if portfolio:
        policy = replace(policy or TaskPolicy(), portfolio=True)
    gb = GlobalBdds(net)
    manager = gb.manager
    perf = manager.perf
    with perf.phase("bdd_build"), obs.span("bdd_build", manager=manager):
        output_bdds = {out: gb.of_output(out) for out in net.output_names}

    # Deduplicate identical output functions; constants are split off.
    canonical: Dict[int, str] = {}
    alias_of: Dict[str, str] = {}
    const_outputs: Dict[str, int] = {}
    unique_outputs: List[str] = []
    for out, bdd in output_bdds.items():
        if bdd in (FALSE, TRUE):
            const_outputs[out] = 1 if bdd == TRUE else 0
            continue
        rep = canonical.get(bdd)
        if rep is None:
            canonical[bdd] = out
            unique_outputs.append(out)
        else:
            alias_of[out] = rep

    with perf.phase("cluster"), obs.span("cluster", manager=manager):
        supports = {
            out: [
                manager.name_of(lv)
                for lv in manager.support(output_bdds[out])
            ]
            for out in unique_outputs
        }
        groups = cluster_outputs(supports, max_group)

    result = Network(f"{net.name}_hyde")
    for pi in net.inputs:
        result.add_input(pi)

    options = DecompositionOptions(
        k=k,
        encoding_policy=encoding_policy,
        use_dontcares=use_dontcares,
        use_oracle=use_oracle,
        oracle_min_support=oracle_min_support,
        fast_path=fast_path,
        fast_path_max_width=fast_path_max_width,
        max_bdd_nodes=max_bdd_nodes,
        max_seconds=max_seconds,
        cost_model=cost_model,
        exact_budget_seconds=exact_budget_seconds,
    )
    driver_of: Dict[str, str] = {}
    group_infos: List[Dict[str, object]] = []
    jobs_used = 1
    degraded: List[Dict[str, object]] = []
    pool_fallback: Optional[str] = None
    run_details: Dict[str, object] = {}

    # The task runner is the only path with timeouts / retries / fault /
    # journal hooks, so any of those routes through it even serially.
    use_tasks = (
        (jobs > 1 and len(groups) > 1)
        or policy is not None
        or bool(faults)
        or journal is not None
        or cache is not None
        or pool is not None
    )
    if verify == "finegrain" and use_tasks:
        # Fine-grained verification extends to reply validation: a
        # rejected worker reply then carries a cone-level cause (and the
        # journal, when present, a failing_cone event) instead of a bare
        # output name.  An explicit non-default verify_mode wins.
        if policy is None:
            policy = TaskPolicy(verify_mode="finegrain")
        elif policy.verify_mode == "bdd":
            policy = replace(policy, verify_mode="finegrain")
    run_report = None
    if use_tasks and groups:
        recorder = obs.active()
        tasks = []
        for gi, group in enumerate(groups):
            cone = extract_cone(net, group, name=f"{net.name}_g{gi}_cone")
            tasks.append(
                GroupTask(
                    blif_text=to_blif(cone),
                    group=list(group),
                    gi=gi,
                    options=options,
                    ingredient_policy=ingredient_policy,
                    ppi_placement=ppi_placement,
                    fallback_per_output=fallback_per_output,
                    base_name=f"{net.name}_g{gi}",
                    inject=faults.spec_for(gi) if faults else None,
                    trace=recorder is not None,
                )
            )
        with perf.phase("decompose"), obs.span(
            "decompose", manager=manager, groups=len(tasks), jobs=jobs
        ) as dspan:
            results, run_report = run_group_tasks(
                tasks,
                jobs,
                policy,
                journal=journal,
                shutdown_after=getattr(faults, "parent_kill_after", None),
                cache=cache,
                pool=pool,
            )
            if recorder is not None:
                # Worker span trees come back rebased to 0; anchor each at
                # the decompose span's start (perf_counter bases are
                # process-local, so relative placement is the best truth
                # available).
                for res in results:
                    if res.spans:
                        recorder.graft(
                            res.spans, parent=dspan, offset=dspan.start
                        )
        jobs_used = run_report.jobs_used
        degraded = run_report.degraded
        pool_fallback = run_report.pool_fallback
        run_details.update(run_report.details)
        if cache is not None:
            run_details["cache"] = {
                "hits": run_report.cache_hits,
                "misses": run_report.cache_misses,
                "rejected": run_report.cache_rejected,
            }
            run_details["fragments"] = run_report.fragments
            obs.event(
                "cache",
                hits=run_report.cache_hits,
                misses=run_report.cache_misses,
                rejected=run_report.cache_rejected,
            )
        if run_report.interrupted:
            # The journal already holds every completed group and the
            # interruption record; stop before the splice would fail on
            # missing drivers.
            obs.event(
                "interrupted",
                reason=run_report.interrupt_reason,
                completed=len(results),
                total=len(tasks),
            )
            raise RunInterrupted(
                run_report.interrupt_reason or "shutdown",
                completed=len(results),
                total=len(tasks),
                journal_path=run_report.journal_path,
            )
        if pool_fallback is not None:
            obs.event("pool_fallback", reason=pool_fallback)
        for entry in degraded:
            obs.event(
                "degraded",
                gi=entry.get("gi"),
                resolution=entry.get("resolution"),
                attempts=entry.get("attempts"),
                causes=entry.get("causes"),
            )
        # Worker counters cross the process boundary merged once in the
        # run report (the per-reply snapshots would double-count retries'
        # partial work only in `degraded`; the report merges final
        # replies only).
        perf.merge_dict(run_report.perf)
        with perf.phase("splice"), obs.span("splice", manager=manager):
            for res in results:
                fragment = parse_blif(res.blif_text)
                rename = _splice(result, fragment, f"g{res.gi}_")
                for out in groups[res.gi]:
                    driver_of[out] = rename[fragment.output_driver(out)]
                group_infos.append(res.info)
    else:
        options.arm_budget(manager)  # serial path: budget on our manager
        with perf.phase("decompose"), obs.span(
            "decompose", manager=manager, groups=len(groups), jobs=1
        ):
            for gi, group in enumerate(groups):
                with obs.span(
                    "group", manager=manager, gi=gi, outputs=len(group)
                ):
                    if len(group) == 1:
                        out = group[0]
                        signal_of_level = {
                            manager.level_of(pi): pi for pi in net.inputs
                        }
                        root = decompose_to_network(
                            manager,
                            output_bdds[out],
                            result,
                            signal_of_level,
                            options,
                            prefix=f"g{gi}",
                        )
                        driver_of[out] = root
                        group_infos.append(
                            {"outputs": group, "hyper": False}
                        )
                        continue

                    group_inputs = sorted(
                        {pi for out in group for pi in supports[out]},
                        key=net.inputs.index,
                    )
                    fragment, info = build_group_fragment(
                        manager,
                        output_bdds,
                        group,
                        group_inputs,
                        options,
                        ingredient_policy=ingredient_policy,
                        ppi_placement=ppi_placement,
                        fallback_per_output=fallback_per_output,
                        base_name=f"{net.name}_g{gi}",
                    )
                    rename = _splice(result, fragment, f"g{gi}_")
                    for out in group:
                        driver_of[out] = rename[fragment.output_driver(out)]
                    group_infos.append(info)

    for out, value in const_outputs.items():
        name = result.fresh_name(f"{out}_const")
        result.add_constant(name, value)
        driver_of[out] = name
    for out in net.output_names:
        driver = driver_of.get(out)
        if driver is None:
            driver = driver_of[alias_of[out]]
        result.add_output(driver, out)

    with perf.phase("cleanup"), obs.span("cleanup", manager=manager):
        cleanup_for_lut_count(result)
    with perf.phase("verify"), obs.span("verify", manager=manager):
        _check(net, result, verify)
    journal_info = _resume_gate(
        net, result, journal, run_report, verify, perf
    )

    with perf.phase("cost"), obs.span("cost", manager=manager):
        luts = count_luts(result, k)
        clbs = pack_xc3000(result).num_clbs if pack_clbs else None
    perf_report = perf.snapshot(manager)
    if manager._class_oracle is not None:
        perf_report["oracle"] = manager._class_oracle.stats()
    perf_report["jobs_requested"] = jobs
    perf_report["jobs_used"] = jobs_used
    seconds = time.time() - start
    if journal is not None:
        journal.record_done(
            flow="hyde", lut_count=luts, clb_count=clbs,
            seconds=round(seconds, 6),
        )
    return MapResult(
        network=result,
        k=k,
        lut_count=luts,
        clb_count=clbs,
        seconds=seconds,
        groups=groups,
        flow="hyde",
        details={
            "group_infos": group_infos,
            "aliases": alias_of,
            "cost_model": cost_model,
            "perf": perf_report,
            "degraded": degraded,
            "pool_fallback": pool_fallback,
            "journal": journal_info,
            **run_details,
        },
    )


def _splice(dest: Network, fragment: Network, prefix: str) -> Dict[str, str]:
    """Copy a fragment's internal nodes into ``dest`` with renaming.

    Fragment PIs must already exist in ``dest`` under the same names.
    Returns the old-name -> new-name map (identity for PIs).
    """
    rename: Dict[str, str] = {pi: pi for pi in fragment.inputs}
    for name in fragment.topological_order():
        node = fragment.node(name)
        new_name = prefix + name
        while dest.has_signal(new_name):
            new_name += "_"
        dest.add_node(
            new_name, [rename[fi] for fi in node.fanins], node.table
        )
        rename[name] = new_name
    return rename


def _check(original: Network, mapped: Network, verify: str) -> None:
    if verify == "none":
        return
    if verify == "finegrain":
        # Cut-point engine: a failure names the smallest wrong cone and
        # a concrete counterexample, not just the output.
        from ..verify.finegrain import assert_finegrain

        assert_finegrain(original, mapped)
        return
    if verify == "sim":
        bad = simulate_equivalence(original, mapped)
    else:
        bad = check_equivalence(original, mapped)
    if bad is not None:
        raise AssertionError(
            f"mapping broke output {bad!r} of {original.name}"
        )


def _resume_gate(
    net: Network,
    result: Network,
    journal,
    run_report,
    verify: str,
    perf,
) -> Optional[Dict[str, object]]:
    """The resume verification contract, shared by the journaled flows.

    A run that replayed *anything* from a journal must prove the spliced
    network still computes ``net`` — with the exact BDD engine, even if
    the caller asked for ``verify="sim"``/``"none"`` — before it may be
    declared complete, and the journal records the verdict either way.
    Runs that executed everything fresh record their verdict from the
    ordinary ``verify`` step (which has already passed by the time this
    runs).  Returns the ``details["journal"]`` payload, or ``None`` when
    the flow has no journal.
    """
    if journal is None:
        return None
    replayed = run_report.replayed if run_report is not None else 0
    executed = run_report.executed if run_report is not None else 0
    if replayed > 0:
        if verify == "finegrain":
            # Still an exact gate (every output is BDD-proven), but a
            # failure is journaled with its cone and counterexample.
            from ..verify.finegrain import finegrain_check

            with perf.phase("resume_gate"), obs.span(
                "resume_gate", replayed=replayed
            ):
                fg = finegrain_check(net, result)
            detail = None
            if not fg.equivalent:
                worst = fg.failing_cones[0] if fg.failing_cones else None
                if worst is not None:
                    journal.record_event(
                        "failing_cone",
                        output=worst.output,
                        root=worst.root,
                        cone_nodes=list(worst.cone_nodes),
                        counterexample=dict(worst.counterexample),
                        confirmed=worst.confirmed,
                    )
                    detail = (
                        f"output {worst.output!r} differs; cone at "
                        f"{worst.root!r} ({len(worst.cone_nodes)} node(s))"
                    )
                else:
                    detail = (
                        f"outputs {sorted(fg.failing_outputs)} differ"
                    )
            journal.record_verdict(
                equivalent=fg.equivalent,
                replayed=replayed,
                executed=executed,
                engine="finegrain",
                detail=detail,
            )
            if not fg.equivalent:
                raise AssertionError(
                    f"resume gate: journal replay broke {net.name}: "
                    f"{detail} (journal {journal.path})"
                )
            return {
                "path": journal.path,
                "replayed": replayed,
                "executed": executed,
            }
        with perf.phase("resume_gate"), obs.span(
            "resume_gate", replayed=replayed
        ):
            bad = check_equivalence(net, result)
        journal.record_verdict(
            equivalent=bad is None,
            replayed=replayed,
            executed=executed,
            engine="bdd",
            detail=None if bad is None else f"output {bad!r} differs",
        )
        if bad is not None:
            raise AssertionError(
                f"resume gate: journal replay broke output {bad!r} of "
                f"{net.name} (journal {journal.path})"
            )
    else:
        journal.record_verdict(
            equivalent=True,
            replayed=0,
            executed=executed,
            engine=f"verify:{verify}",
        )
    return {
        "path": journal.path,
        "replayed": replayed,
        "executed": executed,
    }
