"""One disjoint Roth-Karp decomposition step: f(X, Y) = g(alpha(X), Y).

Combines bound-set selection, compatible class computation, don't-care
assignment and the chart encoder into a single step that returns the α
truth tables and the image function (with its don't cares from unused
codes) ready for recursion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bdd import FALSE, BddManager
from ..boolfunc import TruthTable
from .compatible import Column, CompatibleClasses, compute_classes
from .cost import CostModel, parse_cost_model
from .encoding import (
    EncodingResult,
    build_image_function,
    canonical_codes,
    encode_classes,
)
from .oracle import ClassCountOracle
from .varpart import VariablePartition, select_bound_set

__all__ = ["DecompositionStep", "decompose_step", "DecompositionOptions"]


@dataclass
class DecompositionOptions:
    """Tuning knobs of a decomposition step.

    Attributes
    ----------
    k:
        LUT input count; also the default bound-set size.
    encoding_policy:
        ``"chart"`` — the paper's compatible class encoding;
        ``"random"`` — the strict rigid canonical draft (IMODEC-like
        baseline); ``"cubes"`` — minimise the image function's ISOP cube
        count (the symbolic-input-encoding objective of Murgai et al.,
        the paper's reference [3], which Section 3.2 argues is the wrong
        cost function for LUTs); ``"worst"`` — adversarial encoding for
        ablations (maximises the image's class count among a sample).
    use_dontcares:
        Enable the clique-partitioning don't-care assignment (Section 3.1).
    bound_size_search:
        Also evaluate bound sets one and two variables smaller than ``k``
        and keep the size with the best progress (fewest image inputs,
        then fewest alpha functions).  A smaller bound set occasionally
        wins when the k-sized one has near-worst-case class counts.
    forbidden_bound_levels:
        Levels that must never enter a bound set (column-encoding baseline
        pins pseudo primary inputs with this).
    preferred_free_levels:
        Levels kept free on cost ties (HYDE's PPI placement preference).
    use_oracle:
        Memoize class counts in the manager's shared
        :class:`~repro.decompose.oracle.ClassCountOracle` (default).
        Disable for ablations that need every count re-enumerated.
    oracle_min_support:
        Bypass the oracle for supports narrower than this: on small
        cones the memo bookkeeping costs as much as the counts it saves
        (BENCH showed oracle speedups of 0.98–1.02x there).  Bypasses
        are reported as ``oracle_bypasses`` in the perf counters.
        ``0`` disables the bypass.
    fast_path:
        Class-counting backend policy: ``"auto"`` (packed truth tables
        for supports up to ``fast_path_max_width``, BDD walk beyond),
        ``"bitpack"`` (force packed up to the kernel's hard cap) or
        ``"bdd"`` (never packed).  All modes produce bit-identical
        results; see :mod:`repro.fastpath.bitops`.
    fast_path_max_width:
        ``"auto"`` cut-over width; ``None`` uses the kernel default
        (:data:`repro.fastpath.bitops.DEFAULT_MAX_WIDTH`).
    max_bdd_nodes / max_seconds:
        Resource budget for one governed decomposition: callers that own
        the manager (the group workers, the fault-tolerant flows) arm it
        via :meth:`~repro.bdd.BddManager.set_budget` before decomposing,
        and a blow-up then raises a catchable
        :class:`~repro.bdd.BddBudgetExceeded` instead of grinding.  Both
        ``None`` (the default) keeps every path byte-for-byte identical
        to the unbudgeted flow.
    cost_model:
        The mapping objective: ``"area"`` (LUT count, the historical
        default — byte-for-byte identical to pre-cost-model flows),
        ``"delay"`` (logic levels first) or ``"weighted[:AW,DW]"``.
        See :mod:`repro.decompose.cost`.
    exact_budget_seconds:
        Wall-clock budget for one :func:`repro.exact.exact_map` search
        when the ``"exact"`` portfolio strategy races (``None`` uses
        :data:`repro.exact.DEFAULT_BUDGET_SECONDS`; the governed flow
        additionally clamps it to ``max_seconds``).  Only the exact rung
        reads it — heuristic paths are byte-for-byte unaffected.
    """

    k: int = 5
    encoding_policy: str = "chart"
    use_dontcares: bool = True
    forbidden_bound_levels: Tuple[int, ...] = ()
    preferred_free_levels: Tuple[int, ...] = ()
    bound_size_search: bool = False
    use_oracle: bool = True
    oracle_min_support: int = 10
    fast_path: str = "auto"
    fast_path_max_width: Optional[int] = None
    max_bdd_nodes: Optional[int] = None
    max_seconds: Optional[float] = None
    cost_model: str = "area"
    exact_budget_seconds: Optional[float] = None

    @property
    def cost(self) -> CostModel:
        """The parsed :class:`~repro.decompose.cost.CostModel`."""
        return parse_cost_model(self.cost_model)

    @property
    def has_budget(self) -> bool:
        """True when either resource limit is set."""
        return self.max_bdd_nodes is not None or self.max_seconds is not None

    def arm_budget(self, manager: BddManager) -> None:
        """Arm this options' budget on ``manager`` (no-op without one)."""
        if self.has_budget:
            manager.set_budget(self.max_bdd_nodes, self.max_seconds)

    def decayed(self, factor: float) -> "DecompositionOptions":
        """A copy with both budgets scaled by ``factor`` (retry decay)."""
        return replace(
            self,
            max_bdd_nodes=(
                max(8, int(self.max_bdd_nodes * factor))
                if self.max_bdd_nodes is not None
                else None
            ),
            max_seconds=(
                self.max_seconds * factor
                if self.max_seconds is not None
                else None
            ),
        )


@dataclass
class DecompositionStep:
    """Result of one decomposition step.

    ``alpha_tables[j]`` is the j-th decomposition function as a truth
    table over ``bound_levels`` (position bit j of the row index is
    ``bound_levels[j]``).  ``image`` is g over ``alpha_levels`` + the free
    variables; its don't cares cover the unused codes.
    """

    bound_levels: Tuple[int, ...]
    free_levels: Tuple[int, ...]
    alpha_levels: Tuple[int, ...]
    alpha_tables: List[TruthTable]
    image: Column
    classes: CompatibleClasses
    encoding: Optional[EncodingResult]
    num_classes: int


def decompose_step(
    manager: BddManager,
    on: int,
    support: Sequence[int],
    options: DecompositionOptions,
    dc: int = FALSE,
    bound_levels: Optional[Sequence[int]] = None,
    level_depths: Optional[Dict[int, int]] = None,
) -> DecompositionStep:
    """Perform one disjoint decomposition of ``(on, dc)``.

    ``support`` is the variable universe of f (its true support).  When
    ``bound_levels`` is given the bound set is forced; otherwise it is
    selected by :func:`repro.decompose.varpart.select_bound_set`.
    ``level_depths`` maps variable levels to the logic depth of the
    signal behind each level; delay-aware cost models use it to keep
    bound sets over shallow signals (ignored in area mode).
    """
    k = options.k
    if len(support) <= k:
        raise ValueError("function is already k-feasible; nothing to do")
    manager.check_budget()

    perf = manager.perf
    cost = options.cost
    oracle = (
        ClassCountOracle.for_manager(manager) if options.use_oracle else None
    )
    if bound_levels is None:
        default_size = min(k, len(support) - 1)
        sizes = [default_size]
        if options.bound_size_search:
            sizes.extend(
                b for b in (default_size - 1, default_size - 2) if b >= 2
            )
        best_bound: Optional[Tuple[int, ...]] = None
        best_key: Optional[Tuple] = None
        with perf.phase("step.varpart"), obs.span(
            "step.varpart", manager=manager, support=len(support)
        ):
            for bound_size in sizes:
                vp = select_bound_set(
                    manager,
                    on,
                    support,
                    bound_size,
                    dc=dc,
                    use_dontcares=options.use_dontcares,
                    forbidden=options.forbidden_bound_levels,
                    preferred_free=options.preferred_free_levels,
                    oracle=oracle,
                    use_oracle=options.use_oracle,
                    fast_path=options.fast_path,
                    fast_path_max_width=options.fast_path_max_width,
                    oracle_min_support=options.oracle_min_support,
                    cost=cost,
                    level_depths=level_depths,
                )
                t = max(1, math.ceil(math.log2(max(2, vp.num_classes))))
                # Progress objective: fewest image inputs, then fewest
                # alphas; delay modes additionally rank by the level the
                # step's α LUTs would occupy.
                image_inputs = t + len(support) - bound_size
                if cost.is_area or not level_depths:
                    key: Tuple = (image_inputs, t)
                else:
                    alpha_depth = 1 + max(
                        (level_depths.get(lv, 0) for lv in vp.bound_levels),
                        default=0,
                    )
                    key = cost.bound_key(image_inputs, alpha_depth) + (t,)
                if best_key is None or key < best_key:
                    best_key = key
                    best_bound = vp.bound_levels
        bound = best_bound  # type: ignore[assignment]
    else:
        bound = tuple(sorted(bound_levels))
    free = tuple(lv for lv in support if lv not in set(bound))

    with perf.phase("step.classes"), obs.span(
        "step.classes", manager=manager
    ):
        classes = compute_classes(
            manager,
            on,
            list(bound),
            dc,
            options.use_dontcares,
            fast_path=options.fast_path,
        )
    n = classes.num_classes
    if oracle is not None:
        # Future searches touching this exact (function, bound) pair —
        # e.g. re-decomposition of a duplicated cone — reuse the count.
        if dc == FALSE or not options.use_dontcares:
            oracle.seed_syntactic(on, dc, bound, n)
        else:
            oracle.seed_exact(on, dc, bound, n)
    if n < 2:
        # f does not depend on the bound set (possible only via don't
        # cares); the caller should simply drop those variables.
        return DecompositionStep(
            bound_levels=bound,
            free_levels=free,
            alpha_levels=(),
            alpha_tables=[],
            image=classes.class_functions[0],
            classes=classes,
            encoding=None,
            num_classes=n,
        )

    t = max(1, math.ceil(math.log2(n)))
    alpha_levels = tuple(_fresh_levels(manager, t))

    with perf.phase("step.encode"), obs.span(
        "step.encode", manager=manager, classes=n
    ):
        if options.encoding_policy == "worst":
            encoding = _worst_encoding(
                manager, classes.class_functions, alpha_levels, options
            )
        elif options.encoding_policy == "cubes":
            encoding = _cube_minimizing_encoding(
                manager, classes.class_functions, alpha_levels
            )
        else:
            encoding = encode_classes(
                manager,
                classes.class_functions,
                alpha_levels,
                k,
                use_dontcares=options.use_dontcares,
                policy=(
                    "random"
                    if options.encoding_policy == "random"
                    else "chart"
                ),
                forbidden_bound_levels=options.forbidden_bound_levels,
                preferred_free_levels=options.preferred_free_levels,
                use_oracle=options.use_oracle,
                fast_path=options.fast_path,
                fast_path_max_width=options.fast_path_max_width,
                oracle_min_support=options.oracle_min_support,
                benefit_weights=cost.encoder_weights(),
            )

    alpha_tables = _alpha_tables(
        len(bound), classes.class_of_position, encoding.codes, t
    )
    return DecompositionStep(
        bound_levels=bound,
        free_levels=free,
        alpha_levels=alpha_levels,
        alpha_tables=alpha_tables,
        image=encoding.image,
        classes=classes,
        encoding=encoding,
        num_classes=n,
    )


def _fresh_levels(manager: BddManager, count: int) -> List[int]:
    levels = []
    for _ in range(count):
        base = f"_a{manager.num_vars}"
        name = base
        suffix = 0
        while True:
            try:
                manager.add_var(name)
                break
            except ValueError:
                suffix += 1
                name = f"{base}_{suffix}"
        levels.append(manager.num_vars - 1)
    return levels


def _alpha_tables(
    bound_width: int,
    class_of_position: Sequence[int],
    codes: Sequence[Dict[int, int]],
    num_alpha: int,
) -> List[TruthTable]:
    tables = []
    for a in range(num_alpha):
        mask = 0
        for position, cls in enumerate(class_of_position):
            if codes[cls][a]:
                mask |= 1 << position
        tables.append(TruthTable(bound_width, mask))
    return tables


def _cube_minimizing_encoding(
    manager: BddManager,
    class_functions: Sequence[Column],
    alpha_levels: Sequence[int],
) -> EncodingResult:
    """Reference [3]'s objective: fewest ISOP cubes in the image function.

    A greedy code-swap search from the canonical draft: repeatedly swap
    the codes of two classes (or move a class to an unused code) while
    the ISOP cube count of g improves.  This models Murgai et al.'s
    symbolic-input encoding at the fidelity the comparison needs — the
    paper's point is that this *objective*, however well optimised,
    targets two-level cost rather than LUT decomposability.
    """
    from ..bdd.isop import isop

    n = len(class_functions)
    t = len(alpha_levels)
    code_space = 1 << t

    def cubes_of(assignment: Sequence[int]) -> int:
        codes = [
            {a: (code >> a) & 1 for a in range(t)} for code in assignment
        ]
        image = build_image_function(
            manager, alpha_levels, codes, class_functions
        )
        upper = manager.apply_or(image.on, image.dc)
        return len(isop(manager, image.on, upper))

    assignment = list(range(n))
    best_cost = cubes_of(assignment)
    improved = True
    rounds = 0
    while improved and rounds < 8:
        improved = False
        rounds += 1
        # Swap pairs of used codes.
        for i in range(n):
            for j in range(i + 1, n):
                trial = list(assignment)
                trial[i], trial[j] = trial[j], trial[i]
                cost = cubes_of(trial)
                if cost < best_cost:
                    best_cost = cost
                    assignment = trial
                    improved = True
        # Move one class to an unused code.
        unused = [c for c in range(code_space) if c not in assignment]
        for i in range(n):
            for code in unused:
                trial = list(assignment)
                trial[i] = code
                cost = cubes_of(trial)
                if cost < best_cost:
                    best_cost = cost
                    assignment = trial
                    improved = True
                    unused = [
                        c for c in range(code_space) if c not in assignment
                    ]
                    break

    codes = [
        {a: (code >> a) & 1 for a in range(t)} for code in assignment
    ]
    image = build_image_function(manager, alpha_levels, codes, class_functions)
    result = EncodingResult(
        codes=codes, num_alpha=t, policy_used="cubes", image=image
    )
    result.trace["image_cubes"] = best_cost
    return result


def _worst_encoding(
    manager: BddManager,
    class_functions: Sequence[Column],
    alpha_levels: Sequence[int],
    options: DecompositionOptions,
) -> EncodingResult:
    """Adversarial baseline: sample permuted codes, keep the worst.

    Used only by the ablation benches to bracket the encoding's impact.
    """
    import itertools

    from .compatible import count_classes
    from .varpart import select_bound_set

    n = len(class_functions)
    t = len(alpha_levels)
    base = canonical_codes(n, t)
    draft = build_image_function(manager, alpha_levels, base, class_functions)
    support = sorted(
        set(manager.support(draft.on)) | set(manager.support(draft.dc))
    )
    if len(support) <= options.k:
        return EncodingResult(
            codes=base, num_alpha=t, policy_used="trivial", image=draft
        )
    vp = select_bound_set(
        manager,
        draft.on,
        support,
        min(options.k, len(support) - 1),
        dc=draft.dc,
        use_dontcares=options.use_dontcares,
        use_oracle=options.use_oracle,
        fast_path=options.fast_path,
        fast_path_max_width=options.fast_path_max_width,
        oracle_min_support=options.oracle_min_support,
    )
    worst_codes = base
    worst_image = draft
    worst_count = -1
    permutations = itertools.islice(
        itertools.permutations(range(1 << t), n), 64
    )
    for assignment in permutations:
        codes = [
            {a: (code >> a) & 1 for a in range(t)} for code in assignment
        ]
        image = build_image_function(
            manager, alpha_levels, codes, class_functions
        )
        count = count_classes(
            manager,
            image.on,
            list(vp.bound_levels),
            image.dc,
            options.use_dontcares,
            fast_path=options.fast_path,
        )
        if count > worst_count:
            worst_count = count
            worst_codes = codes
            worst_image = image
    result = EncodingResult(
        codes=worst_codes,
        num_alpha=t,
        policy_used="worst",
        image=worst_image,
        suggested_bound=vp.bound_levels,
    )
    result.image_classes_chart = worst_count
    return result
