"""Functional decomposition core: partitions, compatible classes,
don't-care assignment, bound-set selection, the chart encoder (paper
Figure 3) and the recursive Roth-Karp driver."""

from .chart import EncodingChart, pack_chart
from .compatible import (
    Column,
    CompatibleClasses,
    compute_classes,
    count_classes,
    enumerate_columns,
)
from .cost import CostModel, parse_cost_model
from .dontcare import assign_dontcares, clique_partition, compatibility_graph
from .encoding import (
    ColumnSetResult,
    EncodingResult,
    build_image_function,
    canonical_codes,
    combine_column_sets,
    combine_row_sets,
    encode_classes,
    row_merge_benefit,
)
from .matching import (
    WeightedEdge,
    greedy_matching,
    max_weight_b_matching,
    max_weight_matching,
)
from .partition import (
    Partition,
    conjunction,
    contains,
    disjunction,
    psc_key,
    same_content_position_groups,
)
from .nondisjoint import (
    NondisjointStep,
    decompose_step_nondisjoint,
    nondisjoint_gain,
)
from .oracle import ClassCountOracle
from .recursive import DecompositionTrace, decompose_to_network
from .rothkarp import DecompositionOptions, DecompositionStep, decompose_step
from .varpart import VariablePartition, select_bound_set

__all__ = [
    "CostModel",
    "parse_cost_model",
    "Partition",
    "conjunction",
    "disjunction",
    "contains",
    "same_content_position_groups",
    "psc_key",
    "Column",
    "CompatibleClasses",
    "enumerate_columns",
    "compute_classes",
    "count_classes",
    "clique_partition",
    "assign_dontcares",
    "compatibility_graph",
    "WeightedEdge",
    "max_weight_matching",
    "max_weight_b_matching",
    "greedy_matching",
    "VariablePartition",
    "select_bound_set",
    "ClassCountOracle",
    "EncodingChart",
    "pack_chart",
    "EncodingResult",
    "ColumnSetResult",
    "encode_classes",
    "canonical_codes",
    "build_image_function",
    "combine_column_sets",
    "combine_row_sets",
    "row_merge_benefit",
    "DecompositionOptions",
    "DecompositionStep",
    "decompose_step",
    "DecompositionTrace",
    "decompose_to_network",
    "NondisjointStep",
    "decompose_step_nondisjoint",
    "nondisjoint_gain",
]
