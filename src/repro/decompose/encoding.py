"""The compatible class encoding procedure (paper Section 3.2, Figure 3).

Given the compatible class functions of a decomposition, choose binary
codes so that the *subsequent* decomposition of the image function has as
few compatible classes as possible:

1.  Encode at random (here: canonically) and build the draft image g'.
2.  If g' is already κ-feasible, any encoding works — done.
3.  Run variable partitioning on g' to learn the image's bound set λ'.
    The α variables split into *column bits* (those in λ') and *row bits*
    (those left free); the chart is #R x #C with #C = 2^|α∩λ'| and
    #R = 2^|α∩μ'|.
4.  Compute each class function's partition w.r.t. Y1 = λ' ∩ (original
    free variables).
5.  **CombineColumnSets**: group classes whose partitions share
    same-content position groups (Psc analysis, Figure 4) via a
    maximum-weight b-matching on the bipartite column graph (Figure 5).
6/7. **CombineRowSets**: repeatedly merge row sets by a benefit-weighted
    maximum matching until the chart fits (#R rows, #C column sets).
8.  Keep the chart encoding only if it beats the random draft on the
    actual class count of the image function (don't cares from unused
    codes included).
9.  Read the codes off the final chart.

The paper leaves a few computational details open; this implementation's
choices are documented inline and in DESIGN.md:

* Step 7's ``Bc`` sums over symbols present in *both* partitions (summing
  over all symbols would make the expression identically zero).
* When merged row sets share a column set, the subtracted penalty is the
  largest Vc edge weight among the clashing classes.
* The "number of column sets so far" starts as the Step-5 set count;
  singleton sets are absorbed into multi-member sets only when a row merge
  forces their class next to a pinned class (this reproduces Example 3.2's
  evolution 6 -> 4 sets exactly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..bdd import FALSE, TRUE, BddManager, build_cube
from .chart import EncodingChart, pack_chart
from .compatible import Column, count_classes
from .matching import WeightedEdge, max_weight_b_matching, max_weight_matching
from .partition import (
    Partition,
    disjunction,
    psc_key,
    same_content_position_groups,
)
from .varpart import VariablePartition, select_bound_set

__all__ = [
    "EncodingResult",
    "ColumnSetResult",
    "encode_classes",
    "canonical_codes",
    "build_image_function",
    "combine_column_sets",
    "combine_row_sets",
    "row_merge_benefit",
]


# --------------------------------------------------------------------- #
# Code/image construction helpers
# --------------------------------------------------------------------- #

def canonical_codes(num_classes: int, num_alpha: int) -> List[Dict[int, int]]:
    """The trivial strict rigid encoding: class i gets code i."""
    if num_classes > (1 << num_alpha):
        raise ValueError("not enough code bits")
    return [
        {a: (i >> a) & 1 for a in range(num_alpha)} for i in range(num_classes)
    ]


def build_image_function(
    manager: BddManager,
    alpha_levels: Sequence[int],
    codes: Sequence[Dict[int, int]],
    class_functions: Sequence[Column],
) -> Column:
    """Build the image function g from codes and class functions.

    ``codes[i]`` maps α index -> bit.  Unused codes become don't cares of
    g (strict encoding: each class owns exactly one code).
    """
    on = FALSE
    dc = FALSE
    used = FALSE
    for code, fc in zip(codes, class_functions):
        cube = build_cube(
            manager, {alpha_levels[a]: bit for a, bit in code.items()}
        )
        on = manager.apply_or(on, manager.apply_and(cube, fc.on))
        dc = manager.apply_or(dc, manager.apply_and(cube, fc.dc))
        used = manager.apply_or(used, cube)
    dc = manager.apply_or(dc, manager.apply_not(used))
    return Column(on, dc)


# --------------------------------------------------------------------- #
# Step 5: column sets
# --------------------------------------------------------------------- #

@dataclass
class ColumnSetResult:
    """Output of CombineColumnSets plus the trace the figure benches print."""

    column_sets: List[List[int]]
    column_set_of_class: Dict[int, int]
    vc_weight: Dict[int, float]
    psc_table: Dict[Tuple[int, ...], List[int]]
    matching_weight: float


def combine_column_sets(
    partitions: Sequence[Partition], num_rows: int
) -> ColumnSetResult:
    """Group classes that belong in the same chart column (paper Step 5).

    Candidate Psc's are the maximal same-content position groups of the
    partitions (Figure 4a); a partition "has" a Psc when one of its groups
    contains it.  Psc's shared by at least two partitions become Uc
    vertices of the bipartite column graph (capacity #R, edge weight
    |Psc| + #Partitions(Psc)); a maximum-weight b-matching assigns each
    partition to at most one column set (Figure 5).
    """
    n = len(partitions)
    groups = [same_content_position_groups(p) for p in partitions]
    candidates: Set[Tuple[int, ...]] = {
        psc_key(g) for gs in groups for g in gs
    }
    psc_table: Dict[Tuple[int, ...], List[int]] = {}
    for key in sorted(candidates):
        key_set = set(key)
        members = [
            i
            for i in range(n)
            if any(key_set <= set(g) for g in groups[i])
        ]
        if len(members) >= 2:
            psc_table[key] = members

    edges: List[WeightedEdge] = []
    capacity: Dict[object, int] = {}
    for key, members in sorted(psc_table.items()):
        weight = len(key) + len(members)
        num_u = max(1, math.ceil((len(members) - 1) / num_rows))
        for copy in range(num_u):
            u = ("psc", key, copy)
            capacity[u] = num_rows
            for i in members:
                edges.append(WeightedEdge(("class", i), u, weight))

    # ``matched`` holds each original edge at most once (the b-matching
    # deduplicates its clone fold-back), so summing weights here cannot
    # over-count an edge whose endpoints both had spare capacity.
    matched = max_weight_b_matching(edges, capacity)
    by_u: Dict[object, List[int]] = {}
    vc_weight: Dict[int, float] = {}
    total = 0.0
    for e in matched:
        u, v = e.u, e.v
        if isinstance(u, tuple) and u[0] == "class":
            u, v = v, u
        class_index = v[1]
        by_u.setdefault(u, []).append(class_index)
        vc_weight[class_index] = e.weight
        total += e.weight

    column_sets: List[List[int]] = []
    assigned: Set[int] = set()
    for u in sorted(by_u, key=repr):
        members = sorted(by_u[u])
        column_sets.append(members)
        assigned.update(members)
    for i in range(n):
        if i not in assigned:
            column_sets.append([i])
    # Deterministic order: big sets first, then by smallest member.
    column_sets.sort(key=lambda s: (-len(s), s))
    column_set_of_class = {
        cls: idx for idx, members in enumerate(column_sets) for cls in members
    }
    return ColumnSetResult(
        column_sets=column_sets,
        column_set_of_class=column_set_of_class,
        vc_weight=vc_weight,
        psc_table=psc_table,
        matching_weight=total,
    )


# --------------------------------------------------------------------- #
# Step 7: row sets
# --------------------------------------------------------------------- #

def row_merge_benefit(
    da: Partition,
    db: Partition,
    total_symbol_kinds: int,
    sigma: float,
    tau: float,
) -> float:
    """The paper's merging benefit sigma*Br + tau*Bc for two row sets.

    ``da``/``db`` are the disjunction partitions representing the rows.
    """
    m = da.num_positions + db.num_positions
    n = total_symbol_kinds
    sym_a, sym_b = da.symbol_set(), db.symbol_set()
    n_ij = len(sym_a | sym_b)
    br = n - (n_ij - len(sym_a)) - (n_ij - len(sym_b))
    k = m / n if n else 0.0
    counts_a, counts_b = da.symbol_counts(), db.symbol_counts()
    bc = sum(counts_a[s] + counts_b[s] - k for s in (sym_a & sym_b))
    return sigma * br + tau * bc


@dataclass
class _RowState:
    row_sets: List[List[int]]
    column_sets: List[List[int]]  # mutable during absorption
    column_set_of_class: Dict[int, int]


def _absorb_singletons(
    state: _RowState, num_rows: int
) -> None:
    """Fold forced singleton column sets into multi-member sets.

    A class whose column set is a singleton and whose row set also holds a
    pinned class must take some other column; absorb it into the first
    multi-member set with spare capacity (#R) and no member in its row.

    ``column_set_of_class`` is repaired immediately after every
    absorption: the ``pinned_present`` probe and the member-in-row clash
    checks of later rows consult it, and leaving the absorbed class
    pointing at its now-emptied set would make them read a singleton
    (or, worse, re-absorb the class into a second set).  Indices stay
    valid throughout because empty sets are only compacted away at the
    end, when the whole mapping is rebuilt.
    """
    for row in state.row_sets:
        if len(row) < 2:
            continue
        pinned_present = any(
            len(state.column_sets[state.column_set_of_class[c]]) >= 2
            for c in row
        )
        if not pinned_present:
            continue
        for cls in sorted(row):
            cs_index = state.column_set_of_class[cls]
            if len(state.column_sets[cs_index]) >= 2:
                continue
            for target_index, target in enumerate(state.column_sets):
                if len(target) < 2 or len(target) >= num_rows:
                    continue
                if any(member in row for member in target):
                    continue
                target.append(cls)
                state.column_sets[cs_index] = []
                state.column_set_of_class[cls] = target_index
                break
    state.column_sets = [s for s in state.column_sets if s]
    state.column_set_of_class = {
        cls: idx
        for idx, members in enumerate(state.column_sets)
        for cls in members
    }


def combine_row_sets(
    partitions: Sequence[Partition],
    column_result: ColumnSetResult,
    num_rows: int,
    num_cols: int,
    max_iterations: Optional[int] = None,
    benefit_weights: Tuple[float, float] = (1.0, 1.0),
) -> Optional[Tuple[List[List[int]], Dict[int, int]]]:
    """Steps 6/7: merge row sets until the chart fits.

    ``benefit_weights`` scales the (σ, τ) terms of the paper's merging
    benefit σ·Br + τ·Bc; delay-aware cost models boost σ to favour row
    merges (fewer row sets → fewer α functions → a shallower image).
    The default (1.0, 1.0) is the paper's benefit verbatim.

    Returns ``(row_sets, column_set_of_class)`` or ``None`` when no legal
    packing was found (caller falls back to the random encoding).
    """
    n = len(partitions)
    total_symbol_kinds = len(
        {s for p in partitions for s in p.symbols}
    )
    state = _RowState(
        row_sets=[[i] for i in range(n)],
        column_sets=[list(s) for s in column_result.column_sets],
        column_set_of_class=dict(column_result.column_set_of_class),
    )
    if max_iterations is None:
        max_iterations = 2 * n + 8

    for _ in range(max_iterations):
        if (
            len(state.row_sets) <= num_rows
            and len(state.column_sets) <= num_cols
        ):
            return state.row_sets, state.column_set_of_class

        sigma = benefit_weights[0] * max(0, len(state.row_sets) - num_rows)
        tau = benefit_weights[1] * max(0, len(state.column_sets) - num_cols)
        reps = [
            disjunction([partitions[c] for c in row]) for row in state.row_sets
        ]

        def share_column_penalty(row_a: List[int], row_b: List[int]) -> float:
            penalty = 0.0
            sets_a = {state.column_set_of_class[c] for c in row_a}
            for c in row_b:
                if state.column_set_of_class[c] in sets_a:
                    penalty = max(
                        penalty, column_result.vc_weight.get(c, 0.0)
                    )
            for c in row_a:
                if state.column_set_of_class[c] in {
                    state.column_set_of_class[d] for d in row_b
                }:
                    penalty = max(
                        penalty, column_result.vc_weight.get(c, 0.0)
                    )
            return penalty

        edges: List[WeightedEdge] = []
        for i in range(len(state.row_sets)):
            for j in range(i + 1, len(state.row_sets)):
                if len(state.row_sets[i]) + len(state.row_sets[j]) > num_cols:
                    continue
                benefit = row_merge_benefit(
                    reps[i], reps[j], total_symbol_kinds, sigma, tau
                )
                benefit -= share_column_penalty(
                    state.row_sets[i], state.row_sets[j]
                )
                edges.append(WeightedEdge(("row", i), ("row", j), benefit))
        if not edges:
            return None

        matched = max_weight_matching(edges, maxcardinality=True)
        if not matched:
            return None
        matched.sort(key=lambda e: -e.weight)
        to_merge: List[Tuple[int, int]] = []
        needed = len(state.row_sets) - num_rows
        for e in matched:
            if needed <= 0 and len(state.column_sets) <= num_cols:
                break
            i, j = e.u[1], e.v[1]
            to_merge.append((min(i, j), max(i, j)))
            needed -= 1
        if not to_merge:
            # Pressure comes from column sets only; merge the single best
            # pair to make progress.
            best = matched[0]
            to_merge = [(min(best.u[1], best.v[1]), max(best.u[1], best.v[1]))]

        merged_away: Set[int] = set()
        for i, j in to_merge:
            state.row_sets[i] = sorted(state.row_sets[i] + state.row_sets[j])
            merged_away.add(j)
        state.row_sets = [
            row for idx, row in enumerate(state.row_sets)
            if idx not in merged_away
        ]
        _absorb_singletons(state, num_rows)

    return None


# --------------------------------------------------------------------- #
# The full procedure (Figure 3)
# --------------------------------------------------------------------- #

@dataclass
class EncodingResult:
    """Outcome of :func:`encode_classes`.

    Attributes
    ----------
    codes:
        Per-class codes (α index -> bit), strict encoding.
    num_alpha:
        Number of α functions (t).
    policy_used:
        ``"trivial"`` (g already feasible / encoding irrelevant),
        ``"chart"`` (the paper's encoder won), or ``"random"`` (the random
        draft was at least as good — paper Step 8).
    image:
        The image function built with the returned codes.
    suggested_bound:
        λ' for the subsequent decomposition of g (``None`` when trivial).
    image_classes_chart / image_classes_random:
        Class counts of the image under both encodings (when computed).
    chart:
        The final encoding chart (when the chart path ran).
    trace:
        Intermediate artefacts for the figure benchmarks.
    """

    codes: List[Dict[int, int]]
    num_alpha: int
    policy_used: str
    image: Column
    suggested_bound: Optional[Tuple[int, ...]] = None
    image_classes_chart: Optional[int] = None
    image_classes_random: Optional[int] = None
    chart: Optional[EncodingChart] = None
    trace: Dict[str, object] = field(default_factory=dict)


def encode_classes(
    manager: BddManager,
    class_functions: Sequence[Column],
    alpha_levels: Sequence[int],
    k: int,
    use_dontcares: bool = True,
    bound_size: Optional[int] = None,
    policy: str = "chart",
    forbidden_bound_levels: Sequence[int] = (),
    preferred_free_levels: Sequence[int] = (),
    use_oracle: bool = True,
    fast_path: str = "auto",
    fast_path_max_width: Optional[int] = None,
    oracle_min_support: int = 0,
    benefit_weights: Tuple[float, float] = (1.0, 1.0),
) -> EncodingResult:
    """Run the Figure-3 encoding procedure.

    Parameters
    ----------
    class_functions:
        The compatible class functions fc (over the free variables).
    alpha_levels:
        Freshly allocated manager variables for the α functions, one per
        code bit; ``len(alpha_levels)`` must be ceil(log2(#classes)).
    k:
        LUT input count (κ-feasibility threshold and default bound size).
    policy:
        ``"chart"`` runs the full procedure; ``"random"`` stops after the
        draft encoding (the baseline ablation).
    forbidden_bound_levels / preferred_free_levels:
        Passed through to variable partitioning (used by the
        hyper-function flow to steer pseudo primary inputs).
    """
    n = len(class_functions)
    if n < 2:
        raise ValueError("encoding needs at least two classes")
    t = len(alpha_levels)
    if t != max(1, math.ceil(math.log2(n))):
        raise ValueError(
            f"need exactly {max(1, math.ceil(math.log2(n)))} alpha levels "
            f"for {n} classes, got {t}"
        )

    perf = manager.perf
    with perf.phase("encode.draft"), obs.span("encode.draft", manager=manager):
        codes = canonical_codes(n, t)
        draft = build_image_function(
            manager, alpha_levels, codes, class_functions
        )
        draft_support = sorted(
            set(manager.support(draft.on)) | set(manager.support(draft.dc))
        )
    result = EncodingResult(
        codes=codes, num_alpha=t, policy_used="trivial", image=draft
    )
    if len(draft_support) <= k or policy == "random":
        if policy == "random" and len(draft_support) > k:
            result.policy_used = "random"
        return result

    # Step 3: variable partitioning of the draft image.
    chosen_bound_size = bound_size if bound_size is not None else min(
        k, len(draft_support) - 1
    )
    with perf.phase("encode.varpart"), obs.span(
        "encode.varpart", manager=manager
    ):
        vp = select_bound_set(
            manager,
            draft.on,
            draft_support,
            chosen_bound_size,
            dc=draft.dc,
            use_dontcares=use_dontcares,
            forbidden=forbidden_bound_levels,
            preferred_free=preferred_free_levels,
            use_oracle=use_oracle,
            fast_path=fast_path,
            fast_path_max_width=fast_path_max_width,
            oracle_min_support=oracle_min_support,
        )
    result.suggested_bound = vp.bound_levels
    alpha_set = set(alpha_levels)
    alphas_in_bound = [
        a for a, lv in enumerate(alpha_levels) if lv in vp.bound_levels
    ]
    alphas_in_free = [
        a for a, lv in enumerate(alpha_levels) if lv not in vp.bound_levels
    ]
    if not alphas_in_bound or not alphas_in_free:
        # Theorem 3.1: all α together in λ' or μ' — encoding irrelevant.
        result.trace["theorem_3_1"] = True
        return result

    y1_levels = [lv for lv in vp.bound_levels if lv not in alpha_set]
    num_cols = 1 << len(alphas_in_bound)
    num_rows = 1 << len(alphas_in_free)

    with perf.phase("encode.column_sets"), obs.span(
        "encode.column_sets", manager=manager
    ):
        partitions = [
            _partition_of(manager, fc, y1_levels) for fc in class_functions
        ]
        column_result = combine_column_sets(partitions, num_rows)
    with perf.phase("encode.row_sets"), obs.span(
        "encode.row_sets", manager=manager
    ):
        rows = combine_row_sets(
            partitions, column_result, num_rows, num_cols,
            benefit_weights=benefit_weights,
        )
    result.trace.update(
        partitions=partitions,
        column_sets=column_result.column_sets,
        psc_table=column_result.psc_table,
        num_rows=num_rows,
        num_cols=num_cols,
    )

    with perf.phase("encode.image_rebuild"), obs.span(
        "encode.image_rebuild", manager=manager
    ):
        random_classes = count_classes(
            manager, draft.on, list(vp.bound_levels), draft.dc,
            use_dontcares, fast_path=fast_path,
        )
    result.image_classes_random = random_classes
    if rows is None:
        result.policy_used = "random"
        return result

    row_sets, column_set_of_class = rows
    with perf.phase("encode.chart"), obs.span(
        "encode.chart", manager=manager
    ):
        column_set_sizes: Dict[int, int] = {}
        for cls, cs in column_set_of_class.items():
            column_set_sizes[cs] = column_set_sizes.get(cs, 0) + 1
        chart = pack_chart(
            row_sets, column_set_of_class, column_set_sizes,
            num_rows, num_cols,
        )
    if chart is None:
        result.policy_used = "random"
        return result

    with perf.phase("encode.image_rebuild"), obs.span(
        "encode.image_rebuild", manager=manager
    ):
        chart_codes = chart.codes(n, alphas_in_bound, alphas_in_free)
        chart_image = build_image_function(
            manager, alpha_levels, chart_codes, class_functions
        )
        chart_classes = count_classes(
            manager,
            chart_image.on,
            list(vp.bound_levels),
            chart_image.dc,
            use_dontcares,
            fast_path=fast_path,
        )
    result.image_classes_chart = chart_classes
    result.trace["row_sets"] = row_sets
    result.chart = chart

    # Step 8: keep whichever encoding yields fewer classes.
    if random_classes < chart_classes:
        result.policy_used = "random"
        return result
    result.policy_used = "chart"
    result.codes = chart_codes
    result.image = chart_image
    return result


def _partition_of(
    manager: BddManager, fc: Column, y1_levels: Sequence[int]
) -> Partition:
    on_parts = manager.cofactor_enumerate(fc.on, list(y1_levels))
    dc_parts = manager.cofactor_enumerate(fc.dc, list(y1_levels))
    return Partition(tuple(zip(on_parts, dc_parts)))
