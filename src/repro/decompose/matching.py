"""Matching primitives for the chart encoder (paper reference [12]).

Two matching problems appear in the encoding procedure of Figure 3:

* Step 5 needs a **maximum-weight b-matching** on the bipartite
  column-graph Gc(Vc, Uc, Ec): every partition vertex in Vc may take at
  most one edge, every Psc vertex in Uc at most ``#R`` edges.
* Step 7 needs a **maximum matching** on the benefit-weighted row-graph.

Both are solved exactly by reduction to NetworkX's blossom-based
``max_weight_matching`` (the b-matching by cloning each capacity-``b``
vertex into ``b`` unit-capacity copies).  A greedy fallback is provided
for environments without NetworkX and as a cross-check in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "WeightedEdge",
    "max_weight_matching",
    "max_weight_b_matching",
    "greedy_matching",
]

Vertex = Hashable


@dataclass(frozen=True)
class WeightedEdge:
    """An undirected weighted edge."""

    u: Vertex
    v: Vertex
    weight: float


def _networkx_matching(
    edges: Sequence[WeightedEdge], maxcardinality: bool
) -> Set[Tuple[Vertex, Vertex]]:
    import networkx as nx

    graph = nx.Graph()
    for e in edges:
        # Keep only the best parallel edge.
        if graph.has_edge(e.u, e.v):
            if graph[e.u][e.v]["weight"] >= e.weight:
                continue
        graph.add_edge(e.u, e.v, weight=e.weight)
    mate = nx.max_weight_matching(graph, maxcardinality=maxcardinality)
    return {tuple(sorted(pair, key=repr)) for pair in mate}


def max_weight_matching(
    edges: Sequence[WeightedEdge], maxcardinality: bool = False
) -> List[WeightedEdge]:
    """Exact maximum-weight matching; returns the matched edges."""
    if not edges:
        return []
    pairs = _networkx_matching(edges, maxcardinality)
    best: Dict[Tuple[Vertex, Vertex], WeightedEdge] = {}
    for e in edges:
        key = tuple(sorted((e.u, e.v), key=repr))
        if key not in best or best[key].weight < e.weight:
            best[key] = e
    return [best[key] for key in pairs if key in best]


def greedy_matching(edges: Sequence[WeightedEdge]) -> List[WeightedEdge]:
    """Greedy 1/2-approximate matching (deterministic tie-break)."""
    chosen: List[WeightedEdge] = []
    used: Set[Vertex] = set()
    for e in sorted(edges, key=lambda e: (-e.weight, repr(e.u), repr(e.v))):
        if e.u in used or e.v in used or e.u == e.v:
            continue
        chosen.append(e)
        used.add(e.u)
        used.add(e.v)
    return chosen


def max_weight_b_matching(
    edges: Sequence[WeightedEdge],
    capacity: Dict[Vertex, int],
) -> List[WeightedEdge]:
    """Maximum-weight b-matching: vertex ``v`` takes at most ``capacity[v]``
    edges (default 1 when absent).

    Solved by cloning each vertex of capacity ``b`` into ``b`` unit
    copies, taking an exact max-weight matching over the cloned graph,
    and folding the copies back.  Each *original* edge appears at most
    once in the result: when both endpoints have capacity >= 2 the cloned
    graph contains vertex-disjoint copies of the same edge (e.g. a single
    u-v edge with capacities 2/2 yields the clones (u0,v0) and (u1,v1),
    both of which a matching may take), so folding back must deduplicate
    or the edge's weight is double-counted and b-matching edge semantics
    (each edge used at most once) are violated.  Deduplication keeps the
    heaviest fold-back per original endpoint pair; the result is exact
    whenever one side of every edge has unit capacity (the chart
    encoder's column graph: classes have capacity 1).
    """
    cloned: List[WeightedEdge] = []
    for e in edges:
        cu = capacity.get(e.u, 1)
        cv = capacity.get(e.v, 1)
        for iu in range(cu):
            for iv in range(cv):
                cloned.append(
                    WeightedEdge(("clone", e.u, iu), ("clone", e.v, iv), e.weight)
                )
    matched = max_weight_matching(cloned)
    best: Dict[Tuple[Vertex, Vertex], WeightedEdge] = {}
    for e in matched:
        (_, u, _iu) = e.u
        (_, v, _iv) = e.v
        key = tuple(sorted((u, v), key=repr))
        kept = best.get(key)
        if kept is None or kept.weight < e.weight:
            best[key] = WeightedEdge(u, v, e.weight)
    return [best[key] for key in sorted(best, key=repr)]
