"""Cost models: area (LUT count), delay (logic levels), or a weighted mix.

Every flow historically minimised LUT count only.  A :class:`CostModel`
makes the objective explicit and threads three levers through the stack:

* **bound-set scoring** (:func:`repro.decompose.varpart.select_bound_set`)
  — in delay mode the search prefers bound sets over *shallow* signals,
  so the α LUTs of later recursion steps do not stack on top of earlier
  ones (grounding: "Practical Boolean Decomposition for Delay-driven LUT
  Mapping", PAPERS.md);
* **encoder benefit weights** (:func:`repro.decompose.encoding.combine_row_sets`)
  — delay mode boosts the row-merge term σ·Br of the paper's merging
  benefit, pushing toward fewer row sets, hence fewer α functions and a
  shallower image cascade;
* **fragment selection** (:mod:`repro.mapping.parallel`) — candidate
  mapped networks compare by ``fragment_key`` so hyper vs per-output vs
  portfolio winners are picked under the active objective.

``area`` mode is the exact historical objective: every key degenerates to
the class/LUT count alone and all weights are 1.0, so area-mode results
stay byte-for-byte identical to flows that predate the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

__all__ = ["CostModel", "parse_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """A mapping objective.

    ``mode`` is ``"area"``, ``"delay"`` or ``"weighted"``; the weights
    only matter in ``weighted`` mode, where cost is
    ``area_weight * LUTs + delay_weight * depth``.
    """

    mode: str = "area"
    area_weight: float = 1.0
    delay_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("area", "delay", "weighted"):
            raise ValueError(f"unknown cost mode {self.mode!r}")

    @property
    def is_area(self) -> bool:
        return self.mode == "area"

    @property
    def spec(self) -> str:
        """Round-trippable string form (what ``--cost`` accepts)."""
        if self.mode == "weighted":
            return f"weighted:{self.area_weight:g},{self.delay_weight:g}"
        return self.mode

    def fragment_key(self, luts: int, depth: int) -> Tuple:
        """Comparable cost of a mapped network (lower is better).

        Area mode ignores depth entirely so ties keep the historical
        preference order of the caller.
        """
        if self.mode == "area":
            return (luts,)
        if self.mode == "delay":
            return (depth, luts)
        return (
            self.area_weight * luts + self.delay_weight * depth,
            depth,
            luts,
        )

    def bound_key(self, classes: int, alpha_depth: int) -> Tuple:
        """Search key for one candidate bound set (lower is better).

        ``alpha_depth`` is the level the step's α LUTs would occupy: one
        above the deepest bound-set signal.  Area mode ignores it,
        preserving the class-count-only objective.
        """
        if self.mode == "area":
            return (classes,)
        if self.mode == "delay":
            return (alpha_depth, classes)
        return (
            self.area_weight * classes + self.delay_weight * alpha_depth,
            classes,
        )

    def encoder_weights(self) -> Tuple[float, float]:
        """(sigma_scale, tau_scale) applied to the chart merge benefit."""
        if self.mode == "area":
            return (1.0, 1.0)
        if self.mode == "delay":
            return (2.0, 1.0)
        total = self.area_weight + self.delay_weight
        return (1.0 + (self.delay_weight / total if total else 0.0), 1.0)


def parse_cost_model(spec: Union[str, CostModel, None]) -> CostModel:
    """Parse ``"area"`` | ``"delay"`` | ``"weighted[:AW,DW]"``."""
    if isinstance(spec, CostModel):
        return spec
    text = (spec or "area").strip().lower()
    if text in ("area", "delay", "weighted"):
        return CostModel(mode=text)
    if text.startswith("weighted:"):
        body = text.split(":", 1)[1]
        parts = [p for p in body.split(",") if p]
        try:
            weights = [float(p) for p in parts]
        except ValueError:
            weights = []
        if len(weights) == 1:
            return CostModel(mode="weighted", delay_weight=weights[0])
        if len(weights) == 2:
            return CostModel(
                mode="weighted",
                area_weight=weights[0],
                delay_weight=weights[1],
            )
    raise ValueError(
        f"bad cost model {spec!r}: expected 'area', 'delay' or "
        f"'weighted[:AREA_W,DELAY_W]'"
    )
