"""Compatible class computation for a bound-set selection (paper Def. 2.1).

Given a (possibly incompletely specified) function ``f(X, Y)`` with bound
set X and free set Y, every assignment of X selects a *column*: the
residual function of Y.  Two assignments are compatible iff their columns
agree wherever both are specified.  For completely specified functions the
compatible classes are simply the distinct columns; with don't cares the
grouping is delegated to the clique-partitioning pass in
:mod:`repro.decompose.dontcare`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import FALSE, TRUE, BddManager
from .partition import Partition

__all__ = ["Column", "CompatibleClasses", "enumerate_columns", "compute_classes"]


@dataclass(frozen=True)
class Column:
    """One column of the decomposition chart: an (on, dc) BDD pair over Y."""

    on: int
    dc: int = FALSE

    @property
    def key(self) -> Tuple[int, int]:
        """Hashable identity (node ids are canonical within one manager)."""
        return (self.on, self.dc)

    def is_fully_unspecified(self) -> bool:
        """True iff every minterm of this column is a don't care."""
        return self.dc == TRUE


@dataclass
class CompatibleClasses:
    """Result of class computation for one bound-set selection.

    Attributes
    ----------
    manager:
        The BDD manager the column functions live in.
    bound_levels:
        The λ-set variable levels, in the order used for position indexing
        (``bound_levels[j]`` is bit ``j`` of the position index).
    columns:
        All ``2**|λ|`` columns, indexed by λ-assignment.
    class_of_position:
        λ-assignment index -> compatible class index.
    class_functions:
        One representative :class:`Column` per class: the *merge* of its
        member columns (on = union of member on-sets, dc = intersection).
    """

    manager: BddManager
    bound_levels: List[int]
    columns: List[Column]
    class_of_position: List[int]
    class_functions: List[Column]

    @property
    def num_classes(self) -> int:
        """The compatible class count — the paper's central cost metric."""
        return len(self.class_functions)

    def positions_of_class(self, class_index: int) -> List[int]:
        """λ-assignment indices belonging to one class."""
        return [
            p for p, c in enumerate(self.class_of_position) if c == class_index
        ]

    def partition_of_class(
        self, class_index: int, y1_levels: Sequence[int]
    ) -> Partition:
        """Partition (paper Def. 3.1) of one class function w.r.t. Y1.

        Positions are the assignments of ``y1_levels``; symbols are the
        interned (on, dc) pairs of the residual sub-functions, so they are
        globally comparable across classes of the same manager.
        """
        fc = self.class_functions[class_index]
        on_parts = self.manager.cofactor_enumerate(fc.on, list(y1_levels))
        dc_parts = self.manager.cofactor_enumerate(fc.dc, list(y1_levels))
        return Partition(tuple(zip(on_parts, dc_parts)))


def enumerate_columns(
    manager: BddManager,
    on: int,
    bound_levels: Sequence[int],
    dc: int = FALSE,
) -> List[Column]:
    """All ``2**|λ|`` columns of ``(on, dc)`` for the given bound set."""
    on_parts = manager.cofactor_enumerate(on, list(bound_levels))
    dc_parts = manager.cofactor_enumerate(dc, list(bound_levels))
    return [Column(o, d) for o, d in zip(on_parts, dc_parts)]


def compute_classes(
    manager: BddManager,
    on: int,
    bound_levels: Sequence[int],
    dc: int = FALSE,
    use_dontcares: bool = True,
    fast_path: str = "auto",
) -> CompatibleClasses:
    """Compute compatible classes of ``(on, dc)`` w.r.t. ``bound_levels``.

    With ``use_dontcares`` (and a non-empty dc-set) the columns are merged
    by the clique-partitioning heuristic of Section 3.1; otherwise classes
    are the syntactically distinct (on, dc) columns.  ``fast_path`` is
    forwarded to :func:`~repro.decompose.dontcare.assign_dontcares`,
    which runs its compatibility tests on packed tables unless ``"bdd"``.
    """
    columns = enumerate_columns(manager, on, bound_levels, dc)

    if dc != FALSE and use_dontcares:
        from .dontcare import assign_dontcares  # deferred: avoids an import cycle

        class_of_position, class_functions = assign_dontcares(
            manager, columns, fast_path=fast_path
        )
        return CompatibleClasses(
            manager=manager,
            bound_levels=list(bound_levels),
            columns=columns,
            class_of_position=class_of_position,
            class_functions=class_functions,
        )

    interned: Dict[Tuple[int, int], int] = {}
    class_of_position: List[int] = []
    class_functions: List[Column] = []
    for col in columns:
        index = interned.get(col.key)
        if index is None:
            index = len(class_functions)
            interned[col.key] = index
            class_functions.append(col)
        class_of_position.append(index)
    return CompatibleClasses(
        manager=manager,
        bound_levels=list(bound_levels),
        columns=columns,
        class_of_position=class_of_position,
        class_functions=class_functions,
    )


def count_classes(
    manager: BddManager,
    on: int,
    bound_levels: Sequence[int],
    dc: int = FALSE,
    use_dontcares: bool = True,
    fast_path: str = "auto",
) -> int:
    """Class count only (the variable-partitioning cost function).

    Both cases are served by the packed truth-table kernel for narrow
    supports unless ``fast_path="bdd"`` — the syntactic count by chunk
    hashing, the merged count by a bit-exact mirror of the clique
    heuristic; the count is identical either way.
    """
    if dc == FALSE or not use_dontcares:
        if fast_path != "bdd":
            from ..fastpath import bitops  # deferred: keeps import light

            count = bitops.try_syntactic_count(
                manager, on, dc, bound_levels
            )
            if count is not None:
                return count
        on_parts = manager.cofactor_enumerate(on, list(bound_levels))
        if dc == FALSE:
            return len(set(on_parts))
        dc_parts = manager.cofactor_enumerate(dc, list(bound_levels))
        return len(set(zip(on_parts, dc_parts)))
    if fast_path != "bdd":
        from ..fastpath import bitops  # deferred: keeps import light

        count = bitops.try_merged_count(manager, on, dc, bound_levels)
        if count is not None:
            return count
    return compute_classes(manager, on, bound_levels, dc, True).num_classes
