"""Non-disjoint decomposition — the ``j < i`` case of the paper's Section 2.

The paper's Definition of decomposability allows the bound and free sets
to *share* variables (f is decomposable when
``f = g(alpha(b0..b_{i-1}), b_j, ..., b_{n-1})`` with ``j <= i``); the
paper then restricts itself to the disjoint case ``j = i``.  This module
implements the general case as an extension:

With shared set S, exclusive bound set X and exclusive free set Y, the
decomposition functions see (X, S) and the image sees (alpha, S, Y).
Because the image still reads S directly, compatibility only needs to
hold *per S-assignment*: two X-assignments may share a code under one
value of S and not under another.  The code width is therefore

    t = max over s of ceil(log2 #classes(f_s w.r.t. X))

which can be strictly smaller than the disjoint width for the bound set
X ∪ S — the classic win on mux-like functions where S selects between
behaviours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import FALSE, BddManager, build_cube
from ..boolfunc import TruthTable
from .compatible import Column, compute_classes

__all__ = [
    "NondisjointStep",
    "decompose_step_nondisjoint",
    "nondisjoint_gain",
]


@dataclass
class NondisjointStep:
    """Result of one non-disjoint decomposition.

    ``alpha_tables[j]`` is a truth table over (X, S): index bit ``i`` is
    ``exclusive_bound[i]`` for i < |X| and ``shared[i - |X|]`` above.
    ``image`` is g over alpha levels + S + Y.
    """

    exclusive_bound: Tuple[int, ...]
    shared: Tuple[int, ...]
    free: Tuple[int, ...]
    alpha_levels: Tuple[int, ...]
    alpha_tables: List[TruthTable]
    image: Column
    classes_per_shared: List[int]

    @property
    def num_alpha(self) -> int:
        return len(self.alpha_tables)

    @property
    def max_classes(self) -> int:
        return max(self.classes_per_shared, default=1)


def decompose_step_nondisjoint(
    manager: BddManager,
    on: int,
    bound_levels: Sequence[int],
    shared_levels: Sequence[int],
    support: Sequence[int],
    dc: int = FALSE,
) -> NondisjointStep:
    """One non-disjoint decomposition with the given bound/shared split.

    ``bound_levels`` is the full bound set (shared variables included);
    ``shared_levels`` ⊆ ``bound_levels`` also remain visible to the
    image.  Codes are canonical per shared assignment (strict, rigid per
    slice).
    """
    shared = tuple(sorted(shared_levels))
    if not set(shared) <= set(bound_levels):
        raise ValueError("shared variables must be part of the bound set")
    exclusive = tuple(sorted(set(bound_levels) - set(shared)))
    if not exclusive:
        raise ValueError("bound set must contain non-shared variables")
    free = tuple(
        lv for lv in sorted(support) if lv not in set(bound_levels)
    )

    # Per-shared-assignment class computation.
    slices = []
    max_classes = 1
    for s_index in range(1 << len(shared)):
        assignment = {
            lv: (s_index >> j) & 1 for j, lv in enumerate(shared)
        }
        f_s = manager.restrict(on, assignment)
        dc_s = manager.restrict(dc, assignment)
        classes = compute_classes(
            manager, f_s, list(exclusive), dc_s, use_dontcares=True
        )
        slices.append(classes)
        max_classes = max(max_classes, classes.num_classes)

    t = max(1, math.ceil(math.log2(max(2, max_classes))))
    alpha_levels = []
    for _ in range(t):
        base = f"_na{manager.num_vars}"
        name = base
        k = 0
        while True:
            try:
                manager.add_var(name)
                break
            except ValueError:
                k += 1
                name = f"{base}_{k}"
        alpha_levels.append(manager.num_vars - 1)

    # Alpha tables over (X, S): per shared slice, canonical codes.
    width = len(exclusive) + len(shared)
    alpha_masks = [0] * t
    for s_index, classes in enumerate(slices):
        for x_index, cls in enumerate(classes.class_of_position):
            position = x_index | (s_index << len(exclusive))
            for a in range(t):
                if (cls >> a) & 1:
                    alpha_masks[a] |= 1 << position
    alpha_tables = [TruthTable(width, mask) for mask in alpha_masks]

    # Image: g(alpha, S, Y) assembled slice by slice.
    g_on = FALSE
    g_dc = FALSE
    for s_index, classes in enumerate(slices):
        s_cube = build_cube(
            manager,
            {lv: (s_index >> j) & 1 for j, lv in enumerate(shared)},
        )
        used = FALSE
        for cls, fc in enumerate(classes.class_functions):
            code_cube = build_cube(
                manager,
                {alpha_levels[a]: (cls >> a) & 1 for a in range(t)},
            )
            cell = manager.apply_and(s_cube, code_cube)
            g_on = manager.apply_or(g_on, manager.apply_and(cell, fc.on))
            g_dc = manager.apply_or(g_dc, manager.apply_and(cell, fc.dc))
            used = manager.apply_or(used, code_cube)
        g_dc = manager.apply_or(
            g_dc, manager.apply_and(s_cube, manager.apply_not(used))
        )

    return NondisjointStep(
        exclusive_bound=exclusive,
        shared=shared,
        free=free,
        alpha_levels=tuple(alpha_levels),
        alpha_tables=alpha_tables,
        image=Column(g_on, g_dc),
        classes_per_shared=[c.num_classes for c in slices],
    )


def nondisjoint_gain(
    manager: BddManager,
    on: int,
    bound_levels: Sequence[int],
    shared_levels: Sequence[int],
    dc: int = FALSE,
) -> Tuple[int, int]:
    """(disjoint alpha count, non-disjoint alpha count) for a bound set.

    Quantifies what sharing ``shared_levels`` with the free set saves:
    disjoint width uses the global class count of the full bound set,
    non-disjoint the max per-shared-slice count.
    """
    disjoint_classes = compute_classes(
        manager, on, list(bound_levels), dc, use_dontcares=True
    ).num_classes
    exclusive = sorted(set(bound_levels) - set(shared_levels))
    max_slice = 1
    for s_index in range(1 << len(shared_levels)):
        assignment = {
            lv: (s_index >> j) & 1
            for j, lv in enumerate(sorted(shared_levels))
        }
        classes = compute_classes(
            manager,
            manager.restrict(on, assignment),
            exclusive,
            manager.restrict(dc, assignment),
            use_dontcares=True,
        )
        max_slice = max(max_slice, classes.num_classes)
    t_disjoint = max(1, math.ceil(math.log2(max(2, disjoint_classes))))
    t_nondisjoint = max(1, math.ceil(math.log2(max(2, max_slice))))
    return t_disjoint, t_nondisjoint
