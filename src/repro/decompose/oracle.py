"""Memoized compatible-class-count oracle.

The class count is the paper's one cost function, and the flows query it
relentlessly: bound-set search evaluates it for every candidate bound set,
the swap-improvement pass re-evaluates overlapping sets, and the recursive
decomposition re-decomposes the same image sub-functions with overlapping
candidates at every level.  Node ids in a :class:`~repro.bdd.BddManager`
are canonical and never recycled, so the triple ``(on, dc, bound_levels)``
is a sound memo key for the lifetime of the manager — the oracle is a
plain dict over that key.

Two cost tiers are cached separately:

* :meth:`syntactic_count` — distinct ``(on, dc)`` column pairs, the cheap
  cost used *during* bound-set search;
* :meth:`exact_count` — the clique-partitioned count with don't-care
  merging, used for the final report of a chosen bound set.

The oracle is shared per manager via :meth:`for_manager`, which is how a
single memo serves the exhaustive DFS, greedy growth, swap improvement and
every recursion level of :mod:`repro.decompose.recursive` /
:mod:`repro.decompose.rothkarp` at once.  Callers opt out (for ablations)
through ``DecompositionOptions.use_oracle`` — the search functions accept
``oracle=None`` and fall back to direct enumeration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..bdd import FALSE, BddManager

__all__ = ["ClassCountOracle"]

_Key = Tuple[int, int, Tuple[int, ...]]


class ClassCountOracle:
    """Memoizes class counts keyed by ``(on, dc, bound_levels)`` node ids.

    The bound-set key is sorted: the *set* of distinct columns (and hence
    every count the oracle serves) is invariant under reordering the bound
    variables, so permutations of one bound set share a memo entry.

    Examples
    --------
    >>> from repro.bdd import BddManager
    >>> m = BddManager(4)
    >>> f = m.apply_or(m.apply_and(m.var_at_level(0), m.var_at_level(1)),
    ...                m.var_at_level(2))
    >>> oracle = ClassCountOracle.for_manager(m)
    >>> oracle.syntactic_count(f, 0, (0, 1))
    2
    >>> oracle.syntactic_count(f, 0, (1, 0))  # cache hit: sorted key
    2
    >>> oracle.stats()["hits"]
    1
    """

    def __init__(self, manager: BddManager):
        self.manager = manager
        self._syntactic: Dict[_Key, int] = {}
        self._exact: Dict[_Key, int] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Construction / sharing
    # ------------------------------------------------------------------ #

    @classmethod
    def for_manager(cls, manager: BddManager) -> "ClassCountOracle":
        """The shared oracle of ``manager`` (created on first use)."""
        oracle = manager._class_oracle
        if oracle is None:
            oracle = cls(manager)
            manager._class_oracle = oracle
        return oracle

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @staticmethod
    def _key(on: int, dc: int, bound: Sequence[int]) -> _Key:
        return (on, dc, tuple(sorted(bound)))

    def syntactic_count(
        self, on: int, dc: int, bound: Sequence[int], compute=None
    ) -> int:
        """Distinct (on, dc) column pairs for ``bound`` — memoized.

        ``compute`` optionally overrides how a miss is calculated (the
        packed-table backend of :mod:`repro.decompose.varpart` passes its
        own counter); it must return the same value the default cofactor
        sweep would.
        """
        key = self._key(on, dc, bound)
        cached = self._syntactic.get(key)
        perf = self.manager.perf
        if cached is not None:
            self.hits += 1
            perf.oracle_hits += 1
            return cached
        self.misses += 1
        perf.oracle_misses += 1
        manager = self.manager
        # A miss is about to sweep 2**|bound| cofactors — the natural
        # place to notice an expired budget before spending the work.
        manager.check_budget()
        if compute is not None:
            count = compute(bound)
        else:
            on_parts = manager.cofactor_enumerate(on, list(bound))
            if dc == FALSE:
                count = len(set(on_parts))
            else:
                dc_parts = manager.cofactor_enumerate(dc, list(bound))
                count = len(set(zip(on_parts, dc_parts)))
        self._syntactic[key] = count
        return count

    def lookup_syntactic(
        self, on: int, dc: int, bound: Sequence[int]
    ) -> Optional[int]:
        """Probe the syntactic memo without computing on a miss.

        Used by the incremental searches, which on a miss prefer extending
        their own residual sets (cheaper than a full enumeration) and then
        seed the result back via :meth:`seed_syntactic`.
        """
        cached = self._syntactic.get(self._key(on, dc, bound))
        perf = self.manager.perf
        if cached is not None:
            self.hits += 1
            perf.oracle_hits += 1
        else:
            self.misses += 1
            perf.oracle_misses += 1
        return cached

    def seed_syntactic(
        self, on: int, dc: int, bound: Sequence[int], count: int
    ) -> None:
        """Record a count computed externally (DFS leaves, greedy steps)."""
        self._syntactic[self._key(on, dc, bound)] = count

    def exact_count(
        self,
        on: int,
        dc: int,
        bound: Sequence[int],
        use_dontcares: bool = True,
        compute=None,
        compute_merged=None,
        fast_path: str = "auto",
    ) -> int:
        """The exact (don't-care merged) class count — memoized.

        Without don't cares (or with merging disabled) this equals the
        syntactic count and shares its memo (including the ``compute``
        override); ``compute_merged`` optionally overrides the merged
        path the same way (the packed backend passes its own clique
        counter, which mirrors ``compute_classes`` exactly).
        """
        if dc == FALSE or not use_dontcares:
            return self.syntactic_count(on, dc, bound, compute=compute)
        key = self._key(on, dc, bound)
        cached = self._exact.get(key)
        perf = self.manager.perf
        if cached is not None:
            self.hits += 1
            perf.oracle_hits += 1
            return cached
        self.misses += 1
        perf.oracle_misses += 1
        if compute_merged is not None:
            count = compute_merged(bound)
        else:
            from .compatible import compute_classes  # deferred: import cycle

            count = compute_classes(
                self.manager, on, list(bound), dc, True, fast_path=fast_path
            ).num_classes
        self._exact[key] = count
        return count

    def seed_exact(
        self, on: int, dc: int, bound: Sequence[int], count: int
    ) -> None:
        """Record an exact count already computed by ``compute_classes``."""
        self._exact[self._key(on, dc, bound)] = count

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Hit/miss totals and memo sizes."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else None,
            "syntactic_entries": len(self._syntactic),
            "exact_entries": len(self._exact),
        }

    def clear(self) -> None:
        """Drop every memo entry (counters are kept)."""
        self._syntactic.clear()
        self._exact.clear()
