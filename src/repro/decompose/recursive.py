"""Recursive decomposition of a function into a k-feasible network.

Repeats :func:`repro.decompose.rothkarp.decompose_step` on the image
function until every produced node has at most ``k`` inputs, emitting LUT
nodes into a :class:`~repro.network.Network`.  The same driver serves the
single-output flow and the hyper-function flow (the latter passes pseudo
primary inputs through ``options``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bdd import FALSE, BddManager
from ..boolfunc import TruthTable
from ..network import Network
from .compatible import Column
from .rothkarp import DecompositionOptions, DecompositionStep, decompose_step

__all__ = ["decompose_to_network", "DecompositionTrace"]


@dataclass
class DecompositionTrace:
    """Record of the steps taken while decomposing one root function."""

    steps: List[DecompositionStep] = field(default_factory=list)
    emitted_nodes: List[str] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def decompose_to_network(
    manager: BddManager,
    on: int,
    net: Network,
    signal_of_level: Dict[int, str],
    options: DecompositionOptions,
    dc: int = FALSE,
    prefix: str = "d",
    trace: Optional[DecompositionTrace] = None,
) -> str:
    """Decompose ``(on, dc)`` into k-feasible nodes of ``net``.

    ``signal_of_level`` maps manager variable levels to existing network
    signal names; new α signals are appended to it as they are created.
    Returns the name of the signal computing the root function (don't
    cares resolved by the recursion; the final node covers the on-set of
    whatever completely specified function the steps settled on).
    """
    if trace is None:
        trace = DecompositionTrace()

    # Cooperative budget check point: one per recursion level keeps a
    # governed decomposition responsive even when all BDD work below is
    # cache hits (no allocation, so _mk never probes the deadline).
    manager.check_budget()

    support = sorted(
        set(manager.support(on)) | set(manager.support(dc))
    )
    # Don't cares at the root are resolved toward the on-set cover so the
    # emitted node is completely specified.
    if len(support) <= options.k:
        return _emit_node(manager, on, support, net, signal_of_level, prefix, trace)

    # One span per recursion level (nesting depth == recursion depth);
    # a no-op unless a trace recorder is installed.
    with obs.span("recurse", manager=manager, support=len(support)):
        level_depths: Optional[Dict[int, int]] = None
        if not options.cost.is_area:
            # Depth of the signal behind every candidate level, so the
            # bound-set search can avoid stacking α LUTs on deep signals.
            from ..network import node_depths

            sig_depth = node_depths(net)
            level_depths = {
                lv: sig_depth.get(sig, 0)
                for lv, sig in signal_of_level.items()
            }
        step = decompose_step(
            manager, on, support, options, dc=dc,
            level_depths=level_depths,
        )

        if step.alpha_levels and len(step.alpha_levels) >= len(
            step.bound_levels
        ):
            # No progress: as many alpha functions as bound variables (the
            # function is essentially undecomposable for this bound set).
            # Fall back to a Shannon split, which always shrinks the
            # support.
            return _shannon_split(
                manager, on, dc, support, net, signal_of_level, options,
                prefix, trace,
            )
        trace.steps.append(step)

        if step.num_classes < 2:
            # f is (by don't-care assignment) independent of the bound set.
            fc = step.image
            return decompose_to_network(
                manager, fc.on, net, signal_of_level, options,
                dc=fc.dc, prefix=prefix, trace=trace,
            )

        # Emit the α functions as LUT nodes over the bound-set signals.
        for j, (alpha_level, table) in enumerate(
            zip(step.alpha_levels, step.alpha_tables)
        ):
            fanins = [signal_of_level[lv] for lv in step.bound_levels]
            reduced, kept = table.minimize_support()
            name = net.fresh_name(f"{prefix}_a")
            if reduced.num_inputs == 0:
                net.add_constant(name, 1 if reduced.mask else 0)
            else:
                net.add_node(name, [fanins[i] for i in kept], reduced)
            signal_of_level[alpha_level] = name
            trace.emitted_nodes.append(name)

        # Recurse on the image function.
        return decompose_to_network(
            manager,
            step.image.on,
            net,
            signal_of_level,
            options,
            dc=step.image.dc,
            prefix=prefix,
            trace=trace,
        )


def _shannon_split(
    manager: BddManager,
    on: int,
    dc: int,
    support: Sequence[int],
    net: Network,
    signal_of_level: Dict[int, str],
    options: DecompositionOptions,
    prefix: str,
    trace: DecompositionTrace,
) -> str:
    """f = ite(x, f1, f0) on the support variable whose split is cheapest.

    Single-variable restrictions go through :meth:`BddManager.cofactor`,
    whose persistent memo is shared with the bound-set search — probing
    every support variable here is mostly cache hits after a search pass.
    """
    best_level = min(
        support,
        key=lambda lv: manager.size(manager.cofactor(on, lv, 0))
        + manager.size(manager.cofactor(on, lv, 1)),
    )
    cofactors = []
    for value in (0, 1):
        cofactors.append(
            decompose_to_network(
                manager,
                manager.cofactor(on, best_level, value),
                net,
                signal_of_level,
                options,
                dc=manager.cofactor(dc, best_level, value),
                prefix=prefix,
                trace=trace,
            )
        )
    mux = TruthTable.from_function(3, lambda s, f0, f1: f1 if s else f0)
    fanins = [signal_of_level[best_level], cofactors[0], cofactors[1]]
    if len(set(fanins)) != len(fanins):
        # Degenerate (equal cofactor signals): just reuse one cofactor.
        if cofactors[0] == cofactors[1]:
            return cofactors[0]
        position = {sig: j for j, sig in enumerate(dict.fromkeys(fanins))}
        mapping = [position[sig] for sig in fanins]
        mux = mux.remap_inputs(len(position), mapping)
        fanins = list(dict.fromkeys(fanins))
    name = net.fresh_name(f"{prefix}_sh")
    net.add_node(name, fanins, mux)
    trace.emitted_nodes.append(name)
    return name


def _emit_node(
    manager: BddManager,
    on: int,
    support: Sequence[int],
    net: Network,
    signal_of_level: Dict[int, str],
    prefix: str,
    trace: DecompositionTrace,
) -> str:
    if not support:
        name = net.fresh_name(f"{prefix}_const")
        net.add_constant(name, 1 if on != FALSE else 0)
        trace.emitted_nodes.append(name)
        return name
    mask = manager.to_truth_table(on, list(support))
    table = TruthTable(len(support), mask)
    reduced, kept = table.minimize_support()
    fanins = [signal_of_level[support[i]] for i in kept]
    if reduced.num_inputs == 0:
        name = net.fresh_name(f"{prefix}_const")
        net.add_constant(name, 1 if reduced.mask else 0)
    elif reduced.num_inputs == 1 and reduced.mask == 0b10:
        # A buffer: reuse the driving signal directly.
        return fanins[0]
    else:
        name = net.fresh_name(f"{prefix}_g")
        net.add_node(name, fanins, reduced)
    trace.emitted_nodes.append(name)
    return name
