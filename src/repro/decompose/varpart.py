"""Bound-set (λ set) selection — the role of the paper's reference [2].

Jiang et al. (ASP-DAC'97) select the λ set by counting, on the BDD, the
number of distinct sub-functions below the cut for candidate bound sets.
This module implements the same cost function (the compatible class count,
computed by cofactor enumeration, which is exactly the BDD cut count) with
a search strategy sized to pure Python:

* exhaustive search over all bound sets when the binomial is small,
* otherwise greedy growth plus a swap-improvement pass.

Two performance notes:

* During the *search*, class counts are syntactic — distinct (on, dc)
  cofactor pairs, no clique-partitioned don't-care merging — because the
  merge is expensive and rarely changes the ranking.  The final
  ``num_classes`` reported for the chosen bound set is exact.
* Greedy candidate evaluation is incremental: the distinct cofactors of
  the current bound set are kept, and adding variable ``x`` only restricts
  those (small) residual functions on ``x`` instead of re-enumerating all
  ``2**b`` cofactors of the root.

Ties are broken toward lexicographically smallest level tuples so results
are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..bdd import FALSE, BddManager
from .compatible import count_classes

__all__ = ["VariablePartition", "select_bound_set"]


@dataclass(frozen=True)
class VariablePartition:
    """A chosen (bound set, free set) pair with its class count."""

    bound_levels: Tuple[int, ...]
    free_levels: Tuple[int, ...]
    num_classes: int


def _syntactic_count(
    manager: BddManager, on: int, dc: int, bound: Sequence[int]
) -> int:
    """Distinct (on, dc) column pairs — the cheap search cost."""
    on_parts = manager.cofactor_enumerate(on, list(bound))
    if dc == FALSE:
        return len(set(on_parts))
    dc_parts = manager.cofactor_enumerate(dc, list(bound))
    return len(set(zip(on_parts, dc_parts)))


def select_bound_set(
    manager: BddManager,
    on: int,
    support: Sequence[int],
    bound_size: int,
    dc: int = FALSE,
    use_dontcares: bool = True,
    exhaustive_limit: int = 512,
    forbidden: Iterable[int] = (),
    preferred_free: Iterable[int] = (),
) -> VariablePartition:
    """Pick the bound set of ``bound_size`` variables minimising classes.

    Parameters
    ----------
    support:
        Candidate variable levels (normally the function's true support).
    forbidden:
        Levels that must stay in the free set (the hyper-function flow uses
        this to pin pseudo primary inputs per the column-encoding baseline).
        Demoted to a preference when too few other candidates remain.
    preferred_free:
        Levels to keep free when the cost ties (HYDE's "keep PPIs close to
        the output" preference from Section 4.3).
    exhaustive_limit:
        Exhaustive search is used when C(|support|, bound_size) does not
        exceed this; greedy + swap otherwise.
    """
    forbidden_set = set(forbidden)
    preferred_free_set = set(preferred_free)
    candidates = [lv for lv in support if lv not in forbidden_set]
    if bound_size >= len(candidates):
        # Not enough unforbidden variables (possible late in a force-free
        # PPI decomposition): demote the exclusion to a preference.
        preferred_free_set |= forbidden_set
        candidates = list(support)
    if bound_size >= len(candidates):
        raise ValueError(
            f"bound size {bound_size} must be smaller than the candidate "
            f"support ({len(candidates)} variables)"
        )

    def key_of(bound: Tuple[int, ...]) -> Tuple:
        classes = _syntactic_count(manager, on, dc, bound)
        penalty = sum(1 for lv in bound if lv in preferred_free_set)
        return (classes, penalty, bound)

    # Very wide supports: restrict the search to the topmost-in-order
    # support variables (cheap to cofactor and, as in reference [2]'s
    # BDD-cut selection, the natural candidates for the bound set).
    # Preferred-free variables are pruned first.
    max_candidates = 20
    if len(candidates) > max_candidates:
        candidates = sorted(
            candidates,
            key=lambda lv: (lv in preferred_free_set, lv),
        )[:max_candidates]

    total = math.comb(len(candidates), bound_size)
    if total <= exhaustive_limit:
        best = _exhaustive_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set
        )
    else:
        best = _greedy_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set
        )
        best = _swap_improve(
            manager, on, dc, candidates, best, key_of
        )

    free = tuple(lv for lv in support if lv not in set(best))
    return VariablePartition(
        bound_levels=tuple(sorted(best)),
        free_levels=free,
        num_classes=count_classes(
            manager, on, list(best), dc, use_dontcares
        ),
    )


def _exhaustive_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
) -> Tuple[int, ...]:
    """Exact search over all bound sets via shared-prefix DFS.

    The DFS carries the distinct residual set for the chosen prefix and
    extends it one variable at a time (two persistent-cached single-var
    cofactors per residual), so common prefixes are never re-evaluated.
    No count-based pruning is applied: the distinct-residual count is NOT
    monotone in the bound set (columns that differ only in a variable
    added later can collapse), so any such prune would be unsound.
    """
    ordered = sorted(candidates)
    best: Optional[Tuple] = None  # (classes, penalty, bound)

    def penalty_of(bound: Tuple[int, ...]) -> int:
        return sum(1 for lv in bound if lv in preferred_free)

    def dfs(start: int, chosen: List[int], distinct) -> None:
        nonlocal best
        if len(chosen) == bound_size:
            key = (len(distinct), penalty_of(tuple(chosen)), tuple(chosen))
            if best is None or key < best:
                best = key
            return
        need = bound_size - len(chosen)
        for i in range(start, len(ordered) - need + 1):
            lv = ordered[i]
            extended = set()
            for res_on, res_dc in distinct:
                for value in (0, 1):
                    extended.add(
                        (
                            manager.cofactor(res_on, lv, value),
                            manager.cofactor(res_dc, lv, value)
                            if res_dc != FALSE
                            else FALSE,
                        )
                    )
            chosen.append(lv)
            dfs(i + 1, chosen, extended)
            chosen.pop()

    dfs(0, [], {(on, dc)})
    assert best is not None
    return best[2]


def _greedy_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
) -> Tuple[int, ...]:
    """Greedy growth with incremental cofactor sets.

    The state is the set of distinct (on, dc) residual pairs for the
    current bound; adding a candidate only cofactors those residuals.
    """
    chosen: List[int] = []
    remaining = list(candidates)
    distinct: List[Tuple[int, int]] = [(on, dc)]
    while len(chosen) < bound_size:
        best_lv = None
        best_key: Optional[Tuple] = None
        best_distinct: Optional[List[Tuple[int, int]]] = None
        for lv in remaining:
            new_set = set()
            for res_on, res_dc in distinct:
                for value in (0, 1):
                    new_set.add(
                        (
                            manager.cofactor(res_on, lv, value),
                            manager.cofactor(res_dc, lv, value)
                            if res_dc != FALSE
                            else FALSE,
                        )
                    )
            key = (
                len(new_set),
                1 if lv in preferred_free else 0,
                lv,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_lv = lv
                best_distinct = sorted(new_set)
        chosen.append(best_lv)  # type: ignore[arg-type]
        remaining.remove(best_lv)
        distinct = list(best_distinct or [])
    return tuple(sorted(chosen))


def _swap_improve(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound: Tuple[int, ...],
    key_of,
    max_rounds: int = 3,
) -> Tuple[int, ...]:
    current = tuple(sorted(bound))
    current_key = key_of(current)
    for _ in range(max_rounds):
        improved = False
        outside = [lv for lv in candidates if lv not in current]
        for inside in current:
            for lv in outside:
                trial = tuple(sorted([x for x in current if x != inside] + [lv]))
                trial_key = key_of(trial)
                if trial_key < current_key:
                    current, current_key = trial, trial_key
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current
