"""Bound-set (λ set) selection — the role of the paper's reference [2].

Jiang et al. (ASP-DAC'97) select the λ set by counting, on the BDD, the
number of distinct sub-functions below the cut for candidate bound sets.
This module implements the same cost function (the compatible class count,
computed by cofactor enumeration, which is exactly the BDD cut count) with
a search strategy sized to pure Python:

* exhaustive search over all bound sets when the binomial is small,
* otherwise greedy growth plus a swap-improvement pass.

The searches run over one of two interchangeable *backends* sharing the
identical driver (same candidate order, same tie-breaking, same oracle
interplay, hence bit-identical selections):

* :class:`_BddSearch` — the incremental distinct-residual sets over BDD
  node ids (the historical path, always available);
* :class:`~repro.fastpath.bitops.PackedSearch` — packed-integer truth
  tables for supports of at most ``fast_path_max_width`` variables, where
  extending a prefix is a single masked-shift delta swap instead of a
  residual-set cofactor sweep (see docs/ALGORITHMS.md, "Bit-parallel
  kernels").  Selected per call by ``fast_path`` =
  ``"auto"`` (width cutoff) | ``"bitpack"`` (force, up to a hard cap) |
  ``"bdd"`` (never), falling back transparently when the support is too
  wide or not coverable.

Three performance notes:

* During the *search*, class counts are syntactic — distinct (on, dc)
  cofactor pairs, no clique-partitioned don't-care merging — because the
  merge is expensive and rarely changes the ranking.  The final
  ``num_classes`` reported for the chosen bound set is exact.
* Greedy candidate evaluation is incremental: the search state for the
  current bound set is kept, and adding variable ``x`` only extends that
  state instead of re-enumerating all ``2**b`` cofactors of the root.
* All counts flow through the shared
  :class:`~repro.decompose.oracle.ClassCountOracle` (unless disabled for
  ablations, or bypassed below ``oracle_min_support`` where the memo
  costs more than the counts): repeated queries for the same
  ``(on, dc, bound)`` — from the swap pass, from smaller-bound-size
  searches, and from re-decompositions of the same sub-function at other
  recursion levels — are answered from the memo instead of re-counted.
  The packed backend additionally serves counts from a
  manager-independent global memo keyed by the packed bits themselves.

Ties are broken toward lexicographically smallest level tuples so results
are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..bdd import FALSE, TRUE, BddManager
from ..fastpath import bitops
from .compatible import count_classes
from .cost import CostModel
from .oracle import ClassCountOracle

__all__ = ["VariablePartition", "select_bound_set"]


@dataclass(frozen=True)
class VariablePartition:
    """A chosen (bound set, free set) pair with its class count."""

    bound_levels: Tuple[int, ...]
    free_levels: Tuple[int, ...]
    num_classes: int


# --------------------------------------------------------------------- #
# Search backends
# --------------------------------------------------------------------- #

class _BddSearch:
    """Distinct-residual-set backend over BDD node ids (always valid)."""

    __slots__ = ("manager", "on", "dc")

    def __init__(self, manager: BddManager, on: int, dc: int):
        self.manager = manager
        self.on = on
        self.dc = dc

    def root(self):
        return {(self.on, self.dc)}

    def extend(self, state, lv: int):
        return _extend_distinct(self.manager, state, lv)

    def canonical(self, state):
        # Sorted for deterministic iteration in the next growth step.
        return sorted(state)

    def eval_candidate(self, state, lv: int, bound: Sequence[int]):
        extended = _extend_distinct(self.manager, state, lv)
        return len(extended), extended

    def count_bound(self, bound: Sequence[int]) -> int:
        manager = self.manager
        on_parts = manager.cofactor_enumerate(self.on, list(bound))
        if self.dc == FALSE:
            return len(set(on_parts))
        dc_parts = manager.cofactor_enumerate(self.dc, list(bound))
        return len(set(zip(on_parts, dc_parts)))


def _make_search(
    manager: BddManager,
    on: int,
    dc: int,
    support: Sequence[int],
    fast_path: str,
    max_width: Optional[int],
):
    """Choose the search backend for one ``select_bound_set`` call."""
    perf = manager.perf
    if fast_path != "bdd":
        limit = (
            max_width if max_width is not None else bitops.DEFAULT_MAX_WIDTH
        )
        if fast_path == "bitpack":
            limit = max(limit, bitops.HARD_MAX_WIDTH)
        limit = min(limit, bitops.HARD_MAX_WIDTH)
        if len(support) <= limit:
            try:
                pair = bitops.pack_pair(
                    manager, on, dc, tuple(sorted(support))
                )
            except KeyError:
                # Support not covered by the caller's universe — the
                # BDD path handles it unconditionally.
                perf.fastpath_fallbacks += 1
            else:
                perf.fastpath_selects += 1
                return bitops.PackedSearch(pair, perf)
        else:
            perf.fastpath_fallbacks += 1
    return _BddSearch(manager, on, dc)


def _syntactic_count(
    manager: BddManager,
    on: int,
    dc: int,
    bound: Sequence[int],
    oracle: Optional[ClassCountOracle] = None,
    search=None,
) -> int:
    """Distinct (on, dc) column pairs — the cheap search cost."""
    if oracle is not None:
        return oracle.syntactic_count(
            on, dc, bound,
            compute=search.count_bound if search is not None else None,
        )
    if search is not None:
        return search.count_bound(bound)
    return _BddSearch(manager, on, dc).count_bound(bound)


def select_bound_set(
    manager: BddManager,
    on: int,
    support: Sequence[int],
    bound_size: int,
    dc: int = FALSE,
    use_dontcares: bool = True,
    exhaustive_limit: int = 512,
    forbidden: Iterable[int] = (),
    preferred_free: Iterable[int] = (),
    oracle: Optional[ClassCountOracle] = None,
    use_oracle: bool = True,
    fast_path: str = "auto",
    fast_path_max_width: Optional[int] = None,
    oracle_min_support: int = 0,
    cost: Optional[CostModel] = None,
    level_depths: Optional[Dict[int, int]] = None,
) -> VariablePartition:
    """Pick the bound set of ``bound_size`` variables minimising cost.

    The default (area) cost minimises the compatible class count exactly
    as the historical search did.  Delay-aware cost models additionally
    rank candidates by the depth of the α LUTs they would create
    (``level_depths`` maps candidate levels to their driving signal's
    logic depth; absent levels count as depth 0).

    Parameters
    ----------
    support:
        Candidate variable levels (normally the function's true support).
    forbidden:
        Levels that must stay in the free set (the hyper-function flow uses
        this to pin pseudo primary inputs per the column-encoding baseline).
        Demoted to a preference when too few other candidates remain.
    preferred_free:
        Levels to keep free when the cost ties (HYDE's "keep PPIs close to
        the output" preference from Section 4.3).
    exhaustive_limit:
        Exhaustive search is used when C(|support|, bound_size) does not
        exceed this; greedy + swap otherwise.
    oracle:
        An explicit class-count memo to consult; defaults to the manager's
        shared :class:`ClassCountOracle` while ``use_oracle`` holds.  Pass
        ``use_oracle=False`` to force uncached enumeration (ablations).
    fast_path / fast_path_max_width:
        Backend policy (see the module docstring).  ``None`` width means
        the kernel default (:data:`repro.fastpath.bitops.DEFAULT_MAX_WIDTH`).
    oracle_min_support:
        Below this support width the oracle is bypassed entirely: counts
        are so cheap there that memo bookkeeping is pure overhead
        (reported as ``oracle_bypasses`` in the perf counters).
    """
    if (
        use_oracle
        and oracle_min_support
        and len(support) < oracle_min_support
    ):
        manager.perf.oracle_bypasses += 1
        oracle = None
        use_oracle = False
    if oracle is None and use_oracle:
        oracle = ClassCountOracle.for_manager(manager)
    forbidden_set = set(forbidden)
    preferred_free_set = set(preferred_free)
    candidates = [lv for lv in support if lv not in forbidden_set]
    if bound_size >= len(candidates):
        # Not enough unforbidden variables (possible late in a force-free
        # PPI decomposition): demote the exclusion to a preference.
        preferred_free_set |= forbidden_set
        candidates = list(support)
    if bound_size >= len(candidates):
        raise ValueError(
            f"bound size {bound_size} must be smaller than the candidate "
            f"support ({len(candidates)} variables)"
        )

    search = _make_search(
        manager, on, dc, support, fast_path, fast_path_max_width
    )

    if cost is None:
        cost = CostModel()
    depths = level_depths if (level_depths and not cost.is_area) else None

    def alpha_depth_of(bound: Sequence[int]) -> int:
        if depths is None:
            return 0
        return 1 + max((depths.get(lv, 0) for lv in bound), default=0)

    def key_of(bound: Tuple[int, ...]) -> Tuple:
        classes = _syntactic_count(manager, on, dc, bound, oracle, search)
        penalty = sum(1 for lv in bound if lv in preferred_free_set)
        return cost.bound_key(classes, alpha_depth_of(bound)) + (
            penalty,
            bound,
        )

    # Very wide supports: restrict the search to the topmost-in-order
    # support variables (cheap to cofactor and, as in reference [2]'s
    # BDD-cut selection, the natural candidates for the bound set).
    # Preferred-free variables are pruned first.
    max_candidates = 20
    if len(candidates) > max_candidates:
        candidates = sorted(
            candidates,
            key=lambda lv: (lv in preferred_free_set, lv),
        )[:max_candidates]

    total = math.comb(len(candidates), bound_size)
    if total <= exhaustive_limit:
        best = _exhaustive_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set,
            oracle, search, cost, alpha_depth_of,
        )
    else:
        best = _greedy_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set,
            oracle, search, cost, alpha_depth_of,
        )
        best = _swap_improve(
            manager, on, dc, candidates, best, key_of
        )

    free = tuple(lv for lv in support if lv not in set(best))
    if oracle is not None:
        num_classes = oracle.exact_count(
            on,
            dc,
            best,
            use_dontcares,
            compute=search.count_bound,
            compute_merged=getattr(search, "merged_count_bound", None),
            fast_path=fast_path,
        )
    elif dc == FALSE or not use_dontcares:
        num_classes = search.count_bound(best)
    else:
        num_classes = count_classes(
            manager, on, list(best), dc, use_dontcares, fast_path=fast_path
        )
    return VariablePartition(
        bound_levels=tuple(sorted(best)),
        free_levels=free,
        num_classes=num_classes,
    )


def _extend_distinct(
    manager: BddManager,
    distinct: Iterable[Tuple[int, int]],
    lv: int,
) -> Set[Tuple[int, int]]:
    """Cofactor every residual pair on ``lv`` (both phases).

    This is the inner loop of the BDD-backed bound-set search, so the
    trivial cofactor cases (terminal, ``lv`` above or at the residual's
    top variable) are resolved inline against the manager's node arrays —
    a Python-level call per residual costs more than the cofactor.
    """
    cofactor = manager.cofactor
    var, lo, hi = manager._var, manager._lo, manager._hi
    extended: Set[Tuple[int, int]] = set()
    for res_on, res_dc in distinct:
        if res_on <= TRUE or var[res_on] > lv:
            on0 = on1 = res_on
        elif var[res_on] == lv:
            on0, on1 = lo[res_on], hi[res_on]
        else:
            on0 = cofactor(res_on, lv, 0)
            on1 = cofactor(res_on, lv, 1)
        if res_dc == FALSE:
            dc0 = dc1 = FALSE
        elif res_dc == TRUE or var[res_dc] > lv:
            dc0 = dc1 = res_dc
        elif var[res_dc] == lv:
            dc0, dc1 = lo[res_dc], hi[res_dc]
        else:
            dc0 = cofactor(res_dc, lv, 0)
            dc1 = cofactor(res_dc, lv, 1)
        extended.add((on0, dc0))
        extended.add((on1, dc1))
    return extended


def _exhaustive_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
    oracle: Optional[ClassCountOracle] = None,
    search=None,
    cost: Optional[CostModel] = None,
    alpha_depth_of=None,
) -> Tuple[int, ...]:
    """Exact search over all bound sets via shared-prefix DFS.

    The DFS carries the backend search state for the chosen prefix and
    extends it one variable at a time (two persistent-cached single-var
    cofactors per residual on the BDD backend; one delta swap on the
    packed backend), so common prefixes are never re-evaluated.  No
    count-based pruning is applied: the distinct-residual count is NOT
    monotone in the bound set (columns that differ only in a variable
    added later can collapse), so any such prune would be unsound.

    Leaf counts are seeded into (and, on repeat searches over the same
    function, answered by) the class-count oracle: a completed bound set's
    count never has to be recomputed by a later search, swap pass or
    recursion level.
    """
    if bound_size == 0:
        return ()
    if search is None:
        search = _BddSearch(manager, on, dc)
    if cost is None:
        cost = CostModel()
    if alpha_depth_of is None:
        alpha_depth_of = lambda bound: 0  # noqa: E731 - area-mode default
    ordered = sorted(candidates)
    best: Optional[Tuple] = None  # cost key + (penalty, bound)

    def penalty_of(bound: Tuple[int, ...]) -> int:
        return sum(1 for lv in bound if lv in preferred_free)

    def consider(bound: Tuple[int, ...], classes: int) -> None:
        nonlocal best
        key = cost.bound_key(classes, alpha_depth_of(bound)) + (
            penalty_of(bound),
            bound,
        )
        if best is None or key < best:
            best = key

    def dfs(start: int, chosen: List[int], state) -> None:
        need = bound_size - len(chosen)
        last_level = need == 1
        manager.check_budget()
        for i in range(start, len(ordered) - need + 1):
            lv = ordered[i]
            bound = tuple(chosen + [lv])
            if last_level:
                if oracle is not None:
                    cached = oracle.lookup_syntactic(on, dc, bound)
                    if cached is not None:
                        consider(bound, cached)
                        continue
                count, _ = search.eval_candidate(state, lv, bound)
                if oracle is not None:
                    oracle.seed_syntactic(on, dc, bound, count)
                consider(bound, count)
            else:
                extended = search.extend(state, lv)
                chosen.append(lv)
                dfs(i + 1, chosen, extended)
                chosen.pop()

    dfs(0, [], search.root())
    assert best is not None
    return best[-1]


def _greedy_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
    oracle: Optional[ClassCountOracle] = None,
    search=None,
    cost: Optional[CostModel] = None,
    alpha_depth_of=None,
) -> Tuple[int, ...]:
    """Greedy growth with incremental search states.

    The state is the backend search state for the current bound; adding a
    candidate only extends that state.  Candidate counts are served by
    the oracle when already known; only the winning candidate's state is
    materialised once per growth step.
    """
    if search is None:
        search = _BddSearch(manager, on, dc)
    if cost is None:
        cost = CostModel()
    if alpha_depth_of is None:
        alpha_depth_of = lambda bound: 0  # noqa: E731 - area-mode default
    chosen: List[int] = []
    remaining = list(candidates)
    state = search.root()
    while len(chosen) < bound_size:
        best_lv: Optional[int] = None
        best_key: Optional[Tuple] = None
        best_state = None
        manager.check_budget()
        for lv in remaining:
            new_state = None
            count: Optional[int] = None
            if oracle is not None:
                count = oracle.lookup_syntactic(on, dc, chosen + [lv])
            if count is None:
                count, new_state = search.eval_candidate(
                    state, lv, chosen + [lv]
                )
                if oracle is not None:
                    oracle.seed_syntactic(on, dc, chosen + [lv], count)
            key = cost.bound_key(
                count, alpha_depth_of(chosen + [lv])
            ) + (
                1 if lv in preferred_free else 0,
                lv,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_lv = lv
                best_state = new_state
        assert best_lv is not None
        if best_state is None:
            # The winner's count came from a memo; materialise its
            # search state once for the next growth step.
            best_state = search.extend(state, best_lv)
        chosen.append(best_lv)
        remaining.remove(best_lv)
        state = search.canonical(best_state)
    return tuple(sorted(chosen))


def _swap_improve(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound: Tuple[int, ...],
    key_of,
    max_rounds: int = 3,
) -> Tuple[int, ...]:
    current = tuple(sorted(bound))
    current_key = key_of(current)
    for _ in range(max_rounds):
        improved = False
        manager.check_budget()
        outside = [lv for lv in candidates if lv not in current]
        for inside in current:
            for lv in outside:
                trial = tuple(sorted([x for x in current if x != inside] + [lv]))
                trial_key = key_of(trial)
                if trial_key < current_key:
                    current, current_key = trial, trial_key
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current
