"""Bound-set (λ set) selection — the role of the paper's reference [2].

Jiang et al. (ASP-DAC'97) select the λ set by counting, on the BDD, the
number of distinct sub-functions below the cut for candidate bound sets.
This module implements the same cost function (the compatible class count,
computed by cofactor enumeration, which is exactly the BDD cut count) with
a search strategy sized to pure Python:

* exhaustive search over all bound sets when the binomial is small,
* otherwise greedy growth plus a swap-improvement pass.

Three performance notes:

* During the *search*, class counts are syntactic — distinct (on, dc)
  cofactor pairs, no clique-partitioned don't-care merging — because the
  merge is expensive and rarely changes the ranking.  The final
  ``num_classes`` reported for the chosen bound set is exact.
* Greedy candidate evaluation is incremental: the distinct cofactors of
  the current bound set are kept, and adding variable ``x`` only restricts
  those (small) residual functions on ``x`` instead of re-enumerating all
  ``2**b`` cofactors of the root.
* All counts flow through the shared
  :class:`~repro.decompose.oracle.ClassCountOracle` (unless disabled for
  ablations): repeated queries for the same ``(on, dc, bound)`` — from the
  swap pass, from smaller-bound-size searches, and from re-decompositions
  of the same sub-function at other recursion levels — are answered from
  the memo instead of re-enumerating cofactors.

Ties are broken toward lexicographically smallest level tuples so results
are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..bdd import FALSE, TRUE, BddManager
from .compatible import count_classes
from .oracle import ClassCountOracle

__all__ = ["VariablePartition", "select_bound_set"]


@dataclass(frozen=True)
class VariablePartition:
    """A chosen (bound set, free set) pair with its class count."""

    bound_levels: Tuple[int, ...]
    free_levels: Tuple[int, ...]
    num_classes: int


def _syntactic_count(
    manager: BddManager,
    on: int,
    dc: int,
    bound: Sequence[int],
    oracle: Optional[ClassCountOracle] = None,
) -> int:
    """Distinct (on, dc) column pairs — the cheap search cost."""
    if oracle is not None:
        return oracle.syntactic_count(on, dc, bound)
    on_parts = manager.cofactor_enumerate(on, list(bound))
    if dc == FALSE:
        return len(set(on_parts))
    dc_parts = manager.cofactor_enumerate(dc, list(bound))
    return len(set(zip(on_parts, dc_parts)))


def select_bound_set(
    manager: BddManager,
    on: int,
    support: Sequence[int],
    bound_size: int,
    dc: int = FALSE,
    use_dontcares: bool = True,
    exhaustive_limit: int = 512,
    forbidden: Iterable[int] = (),
    preferred_free: Iterable[int] = (),
    oracle: Optional[ClassCountOracle] = None,
    use_oracle: bool = True,
) -> VariablePartition:
    """Pick the bound set of ``bound_size`` variables minimising classes.

    Parameters
    ----------
    support:
        Candidate variable levels (normally the function's true support).
    forbidden:
        Levels that must stay in the free set (the hyper-function flow uses
        this to pin pseudo primary inputs per the column-encoding baseline).
        Demoted to a preference when too few other candidates remain.
    preferred_free:
        Levels to keep free when the cost ties (HYDE's "keep PPIs close to
        the output" preference from Section 4.3).
    exhaustive_limit:
        Exhaustive search is used when C(|support|, bound_size) does not
        exceed this; greedy + swap otherwise.
    oracle:
        An explicit class-count memo to consult; defaults to the manager's
        shared :class:`ClassCountOracle` while ``use_oracle`` holds.  Pass
        ``use_oracle=False`` to force uncached enumeration (ablations).
    """
    if oracle is None and use_oracle:
        oracle = ClassCountOracle.for_manager(manager)
    forbidden_set = set(forbidden)
    preferred_free_set = set(preferred_free)
    candidates = [lv for lv in support if lv not in forbidden_set]
    if bound_size >= len(candidates):
        # Not enough unforbidden variables (possible late in a force-free
        # PPI decomposition): demote the exclusion to a preference.
        preferred_free_set |= forbidden_set
        candidates = list(support)
    if bound_size >= len(candidates):
        raise ValueError(
            f"bound size {bound_size} must be smaller than the candidate "
            f"support ({len(candidates)} variables)"
        )

    def key_of(bound: Tuple[int, ...]) -> Tuple:
        classes = _syntactic_count(manager, on, dc, bound, oracle)
        penalty = sum(1 for lv in bound if lv in preferred_free_set)
        return (classes, penalty, bound)

    # Very wide supports: restrict the search to the topmost-in-order
    # support variables (cheap to cofactor and, as in reference [2]'s
    # BDD-cut selection, the natural candidates for the bound set).
    # Preferred-free variables are pruned first.
    max_candidates = 20
    if len(candidates) > max_candidates:
        candidates = sorted(
            candidates,
            key=lambda lv: (lv in preferred_free_set, lv),
        )[:max_candidates]

    total = math.comb(len(candidates), bound_size)
    if total <= exhaustive_limit:
        best = _exhaustive_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set,
            oracle,
        )
    else:
        best = _greedy_bound_set(
            manager, on, dc, candidates, bound_size, preferred_free_set,
            oracle,
        )
        best = _swap_improve(
            manager, on, dc, candidates, best, key_of
        )

    free = tuple(lv for lv in support if lv not in set(best))
    if oracle is not None:
        num_classes = oracle.exact_count(on, dc, best, use_dontcares)
    else:
        num_classes = count_classes(
            manager, on, list(best), dc, use_dontcares
        )
    return VariablePartition(
        bound_levels=tuple(sorted(best)),
        free_levels=free,
        num_classes=num_classes,
    )


def _extend_distinct(
    manager: BddManager,
    distinct: Iterable[Tuple[int, int]],
    lv: int,
) -> Set[Tuple[int, int]]:
    """Cofactor every residual pair on ``lv`` (both phases).

    This is the inner loop of every bound-set search, so the trivial
    cofactor cases (terminal, ``lv`` above or at the residual's top
    variable) are resolved inline against the manager's node arrays —
    a Python-level call per residual costs more than the cofactor.
    """
    cofactor = manager.cofactor
    var, lo, hi = manager._var, manager._lo, manager._hi
    extended: Set[Tuple[int, int]] = set()
    for res_on, res_dc in distinct:
        if res_on <= TRUE or var[res_on] > lv:
            on0 = on1 = res_on
        elif var[res_on] == lv:
            on0, on1 = lo[res_on], hi[res_on]
        else:
            on0 = cofactor(res_on, lv, 0)
            on1 = cofactor(res_on, lv, 1)
        if res_dc == FALSE:
            dc0 = dc1 = FALSE
        elif res_dc == TRUE or var[res_dc] > lv:
            dc0 = dc1 = res_dc
        elif var[res_dc] == lv:
            dc0, dc1 = lo[res_dc], hi[res_dc]
        else:
            dc0 = cofactor(res_dc, lv, 0)
            dc1 = cofactor(res_dc, lv, 1)
        extended.add((on0, dc0))
        extended.add((on1, dc1))
    return extended


def _exhaustive_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
    oracle: Optional[ClassCountOracle] = None,
) -> Tuple[int, ...]:
    """Exact search over all bound sets via shared-prefix DFS.

    The DFS carries the distinct residual set for the chosen prefix and
    extends it one variable at a time (two persistent-cached single-var
    cofactors per residual), so common prefixes are never re-evaluated.
    No count-based pruning is applied: the distinct-residual count is NOT
    monotone in the bound set (columns that differ only in a variable
    added later can collapse), so any such prune would be unsound.

    Leaf counts are seeded into (and, on repeat searches over the same
    function, answered by) the class-count oracle: a completed bound set's
    count never has to be recomputed by a later search, swap pass or
    recursion level.
    """
    if bound_size == 0:
        return ()
    ordered = sorted(candidates)
    best: Optional[Tuple] = None  # (classes, penalty, bound)

    def penalty_of(bound: Tuple[int, ...]) -> int:
        return sum(1 for lv in bound if lv in preferred_free)

    def consider(bound: Tuple[int, ...], classes: int) -> None:
        nonlocal best
        key = (classes, penalty_of(bound), bound)
        if best is None or key < best:
            best = key

    def dfs(start: int, chosen: List[int], distinct) -> None:
        need = bound_size - len(chosen)
        last_level = need == 1
        manager.check_budget()
        for i in range(start, len(ordered) - need + 1):
            lv = ordered[i]
            bound = tuple(chosen + [lv])
            if last_level:
                if oracle is not None:
                    cached = oracle.lookup_syntactic(on, dc, bound)
                    if cached is not None:
                        consider(bound, cached)
                        continue
                extended = _extend_distinct(manager, distinct, lv)
                if oracle is not None:
                    oracle.seed_syntactic(on, dc, bound, len(extended))
                consider(bound, len(extended))
            else:
                extended = _extend_distinct(manager, distinct, lv)
                chosen.append(lv)
                dfs(i + 1, chosen, extended)
                chosen.pop()

    dfs(0, [], {(on, dc)})
    assert best is not None
    return best[2]


def _greedy_bound_set(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound_size: int,
    preferred_free: Set[int],
    oracle: Optional[ClassCountOracle] = None,
) -> Tuple[int, ...]:
    """Greedy growth with incremental cofactor sets.

    The state is the set of distinct (on, dc) residual pairs for the
    current bound; adding a candidate only cofactors those residuals.
    Candidate counts are served by the oracle when already known; only the
    winning candidate's distinct set is materialised (and sorted, for
    deterministic iteration) once per growth step.
    """
    chosen: List[int] = []
    remaining = list(candidates)
    distinct: List[Tuple[int, int]] = [(on, dc)]
    while len(chosen) < bound_size:
        best_lv: Optional[int] = None
        best_key: Optional[Tuple] = None
        best_distinct: Optional[Set[Tuple[int, int]]] = None
        manager.check_budget()
        for lv in remaining:
            new_set: Optional[Set[Tuple[int, int]]] = None
            count: Optional[int] = None
            if oracle is not None:
                count = oracle.lookup_syntactic(on, dc, chosen + [lv])
            if count is None:
                new_set = _extend_distinct(manager, distinct, lv)
                count = len(new_set)
                if oracle is not None:
                    oracle.seed_syntactic(on, dc, chosen + [lv], count)
            key = (
                count,
                1 if lv in preferred_free else 0,
                lv,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_lv = lv
                best_distinct = new_set
        assert best_lv is not None
        if best_distinct is None:
            # The winner's count came from the oracle; materialise its
            # residual set once for the next growth step.
            best_distinct = _extend_distinct(manager, distinct, best_lv)
        chosen.append(best_lv)
        remaining.remove(best_lv)
        distinct = sorted(best_distinct)
    return tuple(sorted(chosen))


def _swap_improve(
    manager: BddManager,
    on: int,
    dc: int,
    candidates: Sequence[int],
    bound: Tuple[int, ...],
    key_of,
    max_rounds: int = 3,
) -> Tuple[int, ...]:
    current = tuple(sorted(bound))
    current_key = key_of(current)
    for _ in range(max_rounds):
        improved = False
        manager.check_budget()
        outside = [lv for lv in candidates if lv not in current]
        for inside in current:
            for lv in outside:
                trial = tuple(sorted([x for x in current if x != inside] + [lv]))
                trial_key = key_of(trial)
                if trial_key < current_key:
                    current, current_key = trial, trial_key
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current
