"""The encoding chart: an #R x #C grid of compatible classes.

After the image function's next bound set λ' is known, the code of a
compatible class splits into *column bits* (the α variables that fell into
λ') and *row bits* (the α variables left in the free set).  Theorem 3.2
says only the grid *placement* matters — which classes share a column and
which share a row — not the exact binary codes of rows and columns, so the
chart is the natural output of the encoder: codes are read off cell
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["EncodingChart", "pack_chart"]


@dataclass
class EncodingChart:
    """A filled encoding chart.

    ``cells[r][c]`` holds a class index or ``None`` (an unused code — a
    don't care of the image function).
    """

    num_rows: int
    num_cols: int
    cells: List[List[Optional[int]]]
    # Maintained class -> (row, col) index; position_of is called per
    # class inside chart scoring, so the O(R*C) cell scan it replaces
    # was quadratic in practice.
    _position_of_class: Dict[int, Tuple[int, int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._position_of_class = {
            cell: (r, c)
            for r, row in enumerate(self.cells)
            for c, cell in enumerate(row)
            if cell is not None
        }

    @classmethod
    def empty(cls, num_rows: int, num_cols: int) -> "EncodingChart":
        """An all-unused chart."""
        return cls(
            num_rows, num_cols, [[None] * num_cols for _ in range(num_rows)]
        )

    def place(self, class_index: int, row: int, col: int) -> None:
        """Put a class into a cell (strict encoding: one cell per class)."""
        if self.cells[row][col] is not None:
            raise ValueError(f"cell ({row},{col}) already occupied")
        self.cells[row][col] = class_index
        self._position_of_class[class_index] = (row, col)

    def position_of(self, class_index: int) -> Tuple[int, int]:
        """(row, col) of a placed class."""
        return self._position_of_class[class_index]

    def placed_classes(self) -> List[int]:
        """All class indices present in the chart."""
        return [
            cell
            for row in self.cells
            for cell in row
            if cell is not None
        ]

    def codes(
        self,
        num_classes: int,
        col_alpha_indices: Sequence[int],
        row_alpha_indices: Sequence[int],
    ) -> List[Dict[int, int]]:
        """Binary codes per class: α index -> bit.

        ``col_alpha_indices[j]`` carries bit ``j`` of the column number and
        ``row_alpha_indices[j]`` bit ``j`` of the row number.
        """
        if (1 << len(col_alpha_indices)) < self.num_cols:
            raise ValueError("not enough column bits")
        if (1 << len(row_alpha_indices)) < self.num_rows:
            raise ValueError("not enough row bits")
        codes: List[Optional[Dict[int, int]]] = [None] * num_classes
        for r in range(self.num_rows):
            for c in range(self.num_cols):
                cls = self.cells[r][c]
                if cls is None:
                    continue
                code: Dict[int, int] = {}
                for j, a in enumerate(col_alpha_indices):
                    code[a] = (c >> j) & 1
                for j, a in enumerate(row_alpha_indices):
                    code[a] = (r >> j) & 1
                codes[cls] = code
        missing = [i for i, code in enumerate(codes) if code is None]
        if missing:
            raise ValueError(f"classes without a cell: {missing}")
        return codes  # type: ignore[return-value]

    def render(self, labels: Optional[Sequence[str]] = None) -> str:
        """ASCII rendering (for the figure benchmarks)."""
        def label(cell: Optional[int]) -> str:
            if cell is None:
                return "-"
            return labels[cell] if labels else str(cell)

        width = max(
            [len(label(c)) for row in self.cells for c in row] + [1]
        )
        lines = []
        for row in self.cells:
            lines.append(" ".join(label(c).rjust(width) for c in row))
        return "\n".join(lines)


def pack_chart(
    row_sets: Sequence[Sequence[int]],
    column_set_of_class: Dict[int, int],
    column_set_sizes: Dict[int, int],
    num_rows: int,
    num_cols: int,
) -> Optional[EncodingChart]:
    """Place classes into a chart honouring row sets and column sets.

    Each row set occupies one chart row.  Classes belonging to a
    multi-member column set are pinned to that set's column when free;
    everything else packs greedily into the lowest free column of its row
    (this is how the paper's Example 3.2 absorbs the singleton column sets
    Π1 and Π5 into Π2/Π7's column).  Returns ``None`` when the packing
    does not fit the ``num_rows`` x ``num_cols`` grid.
    """
    if len(row_sets) > num_rows:
        return None
    # Deterministic column index per multi-member column set, big sets first.
    multi_sets = sorted(
        (cs for cs, size in column_set_sizes.items() if size >= 2),
        key=lambda cs: (-column_set_sizes[cs], cs),
    )
    col_of_set: Dict[int, int] = {}
    for i, cs in enumerate(multi_sets):
        if i >= num_cols:
            break  # surplus sets lose their pinning and pack greedily
        col_of_set[cs] = i

    chart = EncodingChart.empty(num_rows, num_cols)
    for r, row in enumerate(row_sets):
        if len(row) > num_cols:
            return None
        used: set = set()
        pinned: List[int] = []
        floating: List[int] = []
        for cls in row:
            cs = column_set_of_class.get(cls)
            if cs is not None and cs in col_of_set:
                pinned.append(cls)
            else:
                floating.append(cls)
        for cls in sorted(pinned):
            c = col_of_set[column_set_of_class[cls]]
            if c in used:
                floating.append(cls)
                continue
            chart.place(cls, r, c)
            used.add(c)
        for cls in sorted(floating):
            c = next(
                (x for x in range(num_cols) if x not in used), None
            )
            if c is None:
                return None
            chart.place(cls, r, c)
            used.add(c)
    return chart
