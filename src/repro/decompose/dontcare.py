"""Don't care assignment as clique partitioning (paper Section 3.1).

Columns of an incompletely specified function can be *merged* when they
never disagree on a specified minterm.  The paper builds a compatibility
graph over the λ-set vertices and covers it with the fewest cliques, each
clique becoming one compatible class; since clique partitioning is
NP-complete it uses the polynomial heuristic from Gajski et al.'s
*High-Level Synthesis* text (reference [9]) — the classic
Tseng/Siewiorek-style "merge the pair with the most common neighbours"
procedure implemented here.

The same machinery is reused by the chart encoder to count the compatible
classes of an image function whose unused codes are don't cares.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Set, Tuple

from ..bdd import FALSE, TRUE, BddManager
from .compatible import Column

__all__ = ["clique_partition", "assign_dontcares", "compatibility_graph"]


def clique_partition(
    num_vertices: int, compatible: Callable[[int, int], bool]
) -> List[List[int]]:
    """Partition vertices into cliques of the compatibility graph.

    ``compatible(i, j)`` must be symmetric.  Returns a list of cliques
    (lists of vertex ids), each vertex in exactly one clique.  The
    heuristic repeatedly merges the pair of super-vertices with the most
    common compatible neighbours (ties: oldest pair), which is Gajski's
    recommended clique-partitioning procedure.
    """
    # adjacency over super-vertices; a super-vertex is a clique-in-progress.
    cliques: List[List[int]] = [[v] for v in range(num_vertices)]
    adjacency: List[Set[int]] = [set() for _ in range(num_vertices)]
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if compatible(i, j):
                adjacency[i].add(j)
                adjacency[j].add(i)

    alive: Set[int] = set(range(num_vertices))
    while True:
        best: Tuple[int, int, int] | None = None  # (common, -i, -j) maximised
        best_pair: Tuple[int, int] | None = None
        alive_sorted = sorted(alive)
        for a_pos, i in enumerate(alive_sorted):
            for j in alive_sorted[a_pos + 1 :]:
                if j not in adjacency[i]:
                    continue
                common = len(adjacency[i] & adjacency[j] & alive)
                key = (common, -i, -j)
                if best is None or key > best:
                    best = key
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        # Merge j into i: the merged vertex is compatible with the
        # intersection of the neighbourhoods (clique property).
        cliques[i].extend(cliques[j])
        merged_adj = adjacency[i] & adjacency[j]
        merged_adj.discard(i)
        merged_adj.discard(j)
        adjacency[i] = merged_adj
        for k in alive:
            if k in (i, j):
                continue
            adjacency[k].discard(j)
            if k not in merged_adj:
                adjacency[k].discard(i)
        alive.discard(j)

    return [sorted(cliques[i]) for i in sorted(alive)]


def compatibility_graph(
    manager: BddManager, columns: Sequence[Column]
) -> List[Set[int]]:
    """Adjacency sets of the column-compatibility graph (Section 3.1)."""
    num = len(columns)
    offs = [
        manager.apply_diff(manager.apply_not(c.on), c.dc) for c in columns
    ]
    adjacency: List[Set[int]] = [set() for _ in range(num)]
    for i in range(num):
        for j in range(i + 1, num):
            conflict = manager.apply_or(
                manager.apply_and(columns[i].on, offs[j]),
                manager.apply_and(columns[j].on, offs[i]),
            )
            if conflict == FALSE:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency


def _pack_columns(manager: BddManager, columns: Sequence[Column]):
    """Pack columns over their common support, or ``None`` when too wide.

    Returns ``(on_bits, off_bits)`` lists indexed like ``columns``.  A
    packed (on, off) pair carries exactly the information the adjacency
    and merge-verify tests below consume: ``on_i & off_j`` is empty in
    the packed domain iff the corresponding BDD conjunction is FALSE.
    """
    from ..fastpath import bitops  # deferred: avoids an import cycle

    support: Set[int] = set()
    for col in columns:
        support |= set(manager.support(col.on))
        support |= set(manager.support(col.dc))
    levels = sorted(support)
    if len(levels) > bitops.DEFAULT_MAX_WIDTH:
        manager.perf.fastpath_fallbacks += 1
        return None
    full = (1 << (1 << len(levels))) - 1
    on_bits: List[int] = []
    off_bits: List[int] = []
    try:
        for col in columns:
            pair = bitops.pack_pair(manager, col.on, col.dc, levels)
            on_bits.append(pair.on)
            off_bits.append(full & ~(pair.on | pair.dc))
    except KeyError:
        manager.perf.fastpath_fallbacks += 1
        return None
    return on_bits, off_bits


def assign_dontcares(
    manager: BddManager,
    columns: Sequence[Column],
    fast_path: str = "auto",
) -> Tuple[List[int], List[Column]]:
    """Merge compatible columns into the fewest classes the heuristic finds.

    Returns ``(class_of_position, class_functions)`` where the class
    function of a clique is the pairwise merge of its member columns
    (on = union of on-sets, dc = intersection of dc-sets).

    Note: pairwise compatibility inside a clique does *not* by itself
    guarantee the merged column is consistent — pairwise-compatible columns
    can conflict jointly (a's on overlaps the union of others' offs only
    after merging).  The standard fix, used here, is to merge greedily and
    verify: a member that conflicts with the running merge is split off
    into a fresh class.

    Unless ``fast_path="bdd"`` the quadratic compatibility tests (and the
    merge-verify disjointness checks) run on packed truth tables when the
    common column support is narrow enough; the emptiness verdicts — and
    therefore the clique cover and the class membership — are identical,
    and only the final merged class functions are built as BDDs.
    """
    # Deduplicate identical columns first; the clique heuristic is
    # quadratic and identical columns are always mergeable.
    interned: Dict[Tuple[int, int], int] = {}
    rep_columns: List[Column] = []
    rep_of_position: List[int] = []
    for col in columns:
        index = interned.get(col.key)
        if index is None:
            index = len(rep_columns)
            interned[col.key] = index
            rep_columns.append(col)
        rep_of_position.append(index)

    packed = (
        _pack_columns(manager, rep_columns) if fast_path != "bdd" else None
    )
    if packed is not None:
        packed_on, packed_off = packed
        num = len(rep_columns)
        adjacency: List[Set[int]] = [set() for _ in range(num)]
        for i in range(num):
            on_i, off_i = packed_on[i], packed_off[i]
            for j in range(i + 1, num):
                if not ((on_i & packed_off[j]) or (packed_on[j] & off_i)):
                    adjacency[i].add(j)
                    adjacency[j].add(i)
    else:
        adjacency = compatibility_graph(manager, rep_columns)
    cliques = clique_partition(
        len(rep_columns), lambda i, j: j in adjacency[i]
    )

    class_functions: List[Column] = []
    class_of_rep: Dict[int, int] = {}
    off_of = [
        manager.apply_diff(manager.apply_not(c.on), c.dc) for c in rep_columns
    ]
    for clique in cliques:
        pending = list(clique)
        while pending:
            # The merged class must be ON wherever any member is ON and OFF
            # wherever any member is OFF; it is consistent iff those sets
            # stay disjoint.  Members that would break disjointness are
            # deferred to a fresh class.
            merged_on = FALSE
            merged_off = FALSE
            members: List[int] = []
            rest: List[int] = []
            if packed is not None:
                packed_merged_on = 0
                packed_merged_off = 0
                for rep in pending:
                    p_on, p_off = packed_on[rep], packed_off[rep]
                    if (packed_merged_on & p_off) or (
                        packed_merged_off & p_on
                    ):
                        rest.append(rep)
                        continue
                    packed_merged_on |= p_on
                    packed_merged_off |= p_off
                    merged_on = manager.apply_or(merged_on, rep_columns[rep].on)
                    merged_off = manager.apply_or(merged_off, off_of[rep])
                    members.append(rep)
            else:
                for rep in pending:
                    col_on, col_off = rep_columns[rep].on, off_of[rep]
                    if (
                        manager.apply_and(merged_on, col_off) != FALSE
                        or manager.apply_and(merged_off, col_on) != FALSE
                    ):
                        rest.append(rep)
                        continue
                    merged_on = manager.apply_or(merged_on, col_on)
                    merged_off = manager.apply_or(merged_off, col_off)
                    members.append(rep)
            merged_dc = manager.apply_diff(
                manager.apply_not(merged_on), merged_off
            )
            class_index = len(class_functions)
            class_functions.append(Column(merged_on, merged_dc))
            for rep in members:
                class_of_rep[rep] = class_index
            pending = rest

    class_of_position = [class_of_rep[rep] for rep in rep_of_position]
    return class_of_position, class_functions
