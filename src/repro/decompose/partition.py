"""Partition algebra over column patterns (paper Definitions 3.1 and 4.6).

A *partition* Π = <s0, ..., s_{n-1}> is the symbolic notation of ``n``
column patterns: position ``i`` carries a symbol and two positions carry
the same symbol iff their column patterns are equal.  In the decomposition
machinery the positions are the assignments of the image function's next
bound set (Y1) and the symbols are (globally interned ids of) the residual
sub-functions of the remaining free variables — so symbols are comparable
*across* partitions, which the paper's Step-7 benefit Bc relies on.

The module implements:

* conjunction partition Πc — stacking partitions vertically in one chart
  column (position-wise symbol tuples),
* disjunction partition Πd — stacking horizontally in one chart row
  (position concatenation),
* multiplicity — number of distinct symbols,
* containment (Definition 4.6) — A contained by B iff multiplicity(B)
  equals multiplicity(Πc{A, B}),
* Psc analysis (Figure 4) — the groups of positions holding identical
  content, the raw material of the column-graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

__all__ = [
    "Partition",
    "conjunction",
    "disjunction",
    "contains",
    "same_content_position_groups",
    "psc_key",
]

Symbol = Hashable


@dataclass(frozen=True)
class Partition:
    """An immutable partition <s0, ..., s_{n-1}> of column patterns."""

    symbols: Tuple[Symbol, ...]

    @classmethod
    def of(cls, symbols: Iterable[Symbol]) -> "Partition":
        """Build from any iterable of hashable symbols."""
        return cls(tuple(symbols))

    @property
    def num_positions(self) -> int:
        """Number of positions (column-pattern slots)."""
        return len(self.symbols)

    @property
    def multiplicity(self) -> int:
        """Number of distinct symbols (paper Section 3.2)."""
        return len(set(self.symbols))

    def symbol_set(self) -> FrozenSet[Symbol]:
        """The distinct symbols as a frozenset."""
        return frozenset(self.symbols)

    def symbol_counts(self) -> Dict[Symbol, int]:
        """Occurrences of each symbol."""
        counts: Dict[Symbol, int] = {}
        for s in self.symbols:
            counts[s] = counts.get(s, 0) + 1
        return counts

    def positions_of(self, symbol: Symbol) -> Tuple[int, ...]:
        """Positions carrying ``symbol``."""
        return tuple(i for i, s in enumerate(self.symbols) if s == symbol)

    def blocks(self) -> List[Tuple[int, ...]]:
        """Position groups per symbol, ordered by first occurrence."""
        seen: Dict[Symbol, List[int]] = {}
        order: List[Symbol] = []
        for i, s in enumerate(self.symbols):
            if s not in seen:
                seen[s] = []
                order.append(s)
            seen[s].append(i)
        return [tuple(seen[s]) for s in order]

    def canonical(self) -> "Partition":
        """Rename symbols to 0, 1, ... in order of first occurrence.

        Two partitions describe the same *structure* iff their canonical
        forms are equal — but note this deliberately destroys the global
        symbol identities used by Step 7's Bc benefit.
        """
        mapping: Dict[Symbol, int] = {}
        out: List[int] = []
        for s in self.symbols:
            if s not in mapping:
                mapping[s] = len(mapping)
            out.append(mapping[s])
        return Partition(tuple(out))

    def refines(self, other: "Partition") -> bool:
        """True iff equal symbols here imply equal symbols in ``other``."""
        if self.num_positions != other.num_positions:
            raise ValueError("position-count mismatch")
        rep: Dict[Symbol, Symbol] = {}
        for s, t in zip(self.symbols, other.symbols):
            if s in rep and rep[s] != t:
                return False
            rep[s] = t
        return True

    def __str__(self) -> str:
        return "<" + ",".join(str(s) for s in self.symbols) + ">"


def conjunction(partitions: Sequence[Partition]) -> Partition:
    """Conjunction partition Πc: stack vertically in one chart column.

    Position ``i`` of the result carries the tuple of member symbols at
    ``i`` — two positions of Πc agree iff they agree in *every* member.
    """
    if not partitions:
        raise ValueError("conjunction of an empty set is undefined")
    n = partitions[0].num_positions
    if any(p.num_positions != n for p in partitions):
        raise ValueError("all partitions must share the position count")
    return Partition(
        tuple(tuple(p.symbols[i] for p in partitions) for i in range(n))
    )


def disjunction(partitions: Sequence[Partition]) -> Partition:
    """Disjunction partition Πd: stack horizontally in one chart row.

    Positions are concatenated; symbols keep their global identity, so a
    symbol shared between members collapses the corresponding patterns.
    """
    if not partitions:
        raise ValueError("disjunction of an empty set is undefined")
    out: List[Symbol] = []
    for p in partitions:
        out.extend(p.symbols)
    return Partition(tuple(out))


def contains(container: Partition, contained: Partition) -> bool:
    """Definition 4.6: ``contained`` is contained by ``container`` iff
    multiplicity(container) == multiplicity(Πc{contained, container})."""
    return (
        container.multiplicity
        == conjunction([contained, container]).multiplicity
    )


def same_content_position_groups(partition: Partition) -> List[Tuple[int, ...]]:
    """Figure 4(a): maximal groups (size >= 2) of positions with equal content."""
    return [block for block in partition.blocks() if len(block) >= 2]


def psc_key(positions: Sequence[int]) -> Tuple[int, ...]:
    """Canonical key of a Psc (a sorted position tuple), e.g. Psc_03 = (0, 3)."""
    return tuple(sorted(positions))
