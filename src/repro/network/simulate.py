"""Bit-parallel network simulation.

Simulates a :class:`~repro.network.Network` on many input vectors at once by
packing one 0/1 value per vector into a Python bigint per signal (the
classic "bit-parallel" or "word-level" logic simulation trick).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

from .netlist import Network

__all__ = ["simulate", "simulate_vectors", "random_vectors", "exhaustive_vectors"]


def simulate(net: Network, assignment: Dict[str, int]) -> Dict[str, int]:
    """Evaluate the network on a single assignment (PI name -> 0/1).

    Returns output name -> 0/1.
    """
    patterns = {pi: [assignment[pi]] for pi in net.inputs}
    result = simulate_vectors(net, patterns, 1)
    return {out: bits[0] for out, bits in result.items()}


def simulate_vectors(
    net: Network, patterns: Dict[str, Sequence[int]], num_vectors: int
) -> Dict[str, List[int]]:
    """Evaluate on ``num_vectors`` input vectors simultaneously.

    ``patterns[pi][k]`` is the value of ``pi`` in vector ``k``.  Returns
    ``output -> list of 0/1`` of length ``num_vectors``.
    """
    words: Dict[str, int] = {}
    for pi in net.inputs:
        word = 0
        bits = patterns[pi]
        for k in range(num_vectors):
            if bits[k]:
                word |= 1 << k
        words[pi] = word
    all_ones = (1 << num_vectors) - 1

    for name in net.topological_order():
        node = net.node(name)
        table = node.table
        if table.num_inputs == 0:
            words[name] = all_ones if table.mask else 0
            continue
        fanin_words = [words[fi] for fi in node.fanins]
        # Shannon-style evaluation: OR of on-set minterm matches.
        out = 0
        for minterm in table.on_set():
            match = all_ones
            for j, w in enumerate(fanin_words):
                match &= w if (minterm >> j) & 1 else (~w & all_ones)
                if not match:
                    break
            out |= match
        words[name] = out

    result: Dict[str, List[int]] = {}
    for out, driver in net.outputs:
        w = words[driver]
        result[out] = [(w >> k) & 1 for k in range(num_vectors)]
    return result


def simulate_all_signals(
    net: Network, patterns: Dict[str, Sequence[int]], num_vectors: int
) -> Dict[str, int]:
    """Like :func:`simulate_vectors` but return the packed word of *every*
    signal (PIs and internal nodes), one bit per vector."""
    words: Dict[str, int] = {}
    for pi in net.inputs:
        word = 0
        bits = patterns[pi]
        for k in range(num_vectors):
            if bits[k]:
                word |= 1 << k
        words[pi] = word
    all_ones = (1 << num_vectors) - 1
    for name in net.topological_order():
        node = net.node(name)
        table = node.table
        if table.num_inputs == 0:
            words[name] = all_ones if table.mask else 0
            continue
        fanin_words = [words[fi] for fi in node.fanins]
        out = 0
        for minterm in table.on_set():
            match = all_ones
            for j, w in enumerate(fanin_words):
                match &= w if (minterm >> j) & 1 else (~w & all_ones)
                if not match:
                    break
            out |= match
        words[name] = out
    return words


def random_vectors(
    net: Network, num_vectors: int, seed: int = 0
) -> Dict[str, List[int]]:
    """Deterministic pseudo-random input patterns for every PI."""
    rng = random.Random(seed)
    return {
        pi: [rng.randint(0, 1) for _ in range(num_vectors)] for pi in net.inputs
    }


def exhaustive_vectors(net: Network) -> Dict[str, List[int]]:
    """All ``2**|PI|`` input vectors (only for small PI counts)."""
    n = len(net.inputs)
    if n > 20:
        raise ValueError(f"{n} inputs is too many for exhaustive simulation")
    total = 1 << n
    return {
        pi: [(index >> j) & 1 for index in range(total)]
        for j, pi in enumerate(net.inputs)
    }
