"""Boolean network (combinational logic DAG), the SIS-like substrate.

A :class:`Network` is a DAG of named nodes.  Primary inputs are nodes
without a local function; every internal node carries a
:class:`~repro.boolfunc.TruthTable` over its fan-in list.  Primary outputs
are (name, driver) pairs so an output may alias an internal node or a PI.

This module provides structure and bookkeeping only; simulation,
equivalence checking and restructuring live in sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..boolfunc import TruthTable

__all__ = ["Node", "Network"]


@dataclass
class Node:
    """One internal node: a local function over named fan-ins."""

    name: str
    fanins: List[str]
    table: TruthTable

    def __post_init__(self) -> None:
        if self.table.num_inputs != len(self.fanins):
            raise ValueError(
                f"node {self.name}: table arity {self.table.num_inputs} "
                f"!= fanin count {len(self.fanins)}"
            )
        if len(set(self.fanins)) != len(self.fanins):
            raise ValueError(f"node {self.name}: duplicate fanins {self.fanins}")


class Network:
    """A combinational Boolean network.

    Examples
    --------
    >>> net = Network("demo")
    >>> for pi in ("a", "b", "c"):
    ...     _ = net.add_input(pi)
    >>> _ = net.add_node("t", ["a", "b"], TruthTable.from_function(2, lambda a, b: a & b))
    >>> _ = net.add_node("f", ["t", "c"], TruthTable.from_function(2, lambda t, c: t | c))
    >>> net.add_output("f")
    >>> sorted(net.topological_order())
    ['f', 't']
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self._inputs: List[str] = []
        self._nodes: Dict[str, Node] = {}
        self._outputs: List[Tuple[str, str]] = []  # (output name, driver name)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        if self.has_signal(name):
            raise ValueError(f"signal {name!r} already exists")
        self._inputs.append(name)
        return name

    def add_node(self, name: str, fanins: Sequence[str], table: TruthTable) -> str:
        """Add an internal node computing ``table`` over ``fanins``."""
        if self.has_signal(name):
            raise ValueError(f"signal {name!r} already exists")
        for fi in fanins:
            if not self.has_signal(fi):
                raise ValueError(f"node {name!r}: unknown fanin {fi!r}")
        self._nodes[name] = Node(name, list(fanins), table)
        return name

    def add_constant(self, name: str, value: int) -> str:
        """Add a constant 0/1 node (zero fan-in)."""
        return self.add_node(name, [], TruthTable.constant(0, value))

    def add_output(self, driver: str, name: Optional[str] = None) -> None:
        """Declare a primary output driven by ``driver``."""
        if not self.has_signal(driver):
            raise ValueError(f"unknown output driver {driver!r}")
        if name is None:
            name = driver
        if any(n == name for n, _ in self._outputs):
            raise ValueError(f"output {name!r} already declared")
        self._outputs.append((name, driver))

    def reorder_outputs(self, names: Sequence[str]) -> None:
        """Reorder the output list to ``names`` (a permutation of it).

        Output *order* is part of a network's observable interface (BLIF
        round-trips preserve it, repro replay validation depends on it);
        transforms that rebuild the output list use this to restore the
        source ordering explicitly instead of relying on incidental
        iteration order.
        """
        if sorted(names) != sorted(self.output_names):
            raise ValueError(
                f"not a permutation of the outputs: {list(names)} vs "
                f"{self.output_names}"
            )
        driver_of = dict(self._outputs)
        self._outputs = [(name, driver_of[name]) for name in names]

    def reorder_inputs(self, names: Sequence[str]) -> None:
        """Reorder the input list to ``names`` (a permutation of it).

        Input order is part of the observable interface too: the
        ``.inputs`` declaration drives BLIF round-trips, truth-table
        flattening (:func:`~repro.network.transform.collapse_network`,
        :func:`repro.exact.cone_spec`) and witness replay.  Transforms
        that rebuild the PI list restore the source ordering through
        this instead of trusting incidental iteration order.
        """
        if sorted(names) != sorted(self._inputs):
            raise ValueError(
                f"not a permutation of the inputs: {list(names)} vs "
                f"{self._inputs}"
            )
        self._inputs = list(names)

    def fresh_name(self, prefix: str = "n") -> str:
        """A signal name not yet used in the network."""
        i = len(self._nodes)
        while self.has_signal(f"{prefix}{i}"):
            i += 1
        return f"{prefix}{i}"

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def inputs(self) -> List[str]:
        """Primary input names (declaration order)."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[Tuple[str, str]]:
        """(output name, driver name) pairs."""
        return list(self._outputs)

    @property
    def output_names(self) -> List[str]:
        """Primary output names."""
        return [n for n, _ in self._outputs]

    def output_driver(self, name: str) -> str:
        """Driver signal of the named output."""
        for out, driver in self._outputs:
            if out == name:
                return driver
        raise KeyError(name)

    def has_signal(self, name: str) -> bool:
        """Is ``name`` a PI or an internal node?"""
        return name in self._nodes or name in self._inputs

    def is_input(self, name: str) -> bool:
        """Is ``name`` a primary input?"""
        return name in self._inputs

    def node(self, name: str) -> Node:
        """The internal node named ``name``."""
        return self._nodes[name]

    def nodes(self) -> Iterator[Node]:
        """Iterate over internal nodes (insertion order)."""
        return iter(self._nodes.values())

    def node_names(self) -> List[str]:
        """Names of internal nodes (insertion order)."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of internal nodes."""
        return len(self._nodes)

    def fanouts(self) -> Dict[str, List[str]]:
        """Map signal -> list of node names reading it."""
        result: Dict[str, List[str]] = {name: [] for name in self._inputs}
        for name in self._nodes:
            result.setdefault(name, [])
        for node in self._nodes.values():
            for fi in node.fanins:
                result[fi].append(node.name)
        return result

    # ------------------------------------------------------------------ #
    # Ordering / reachability
    # ------------------------------------------------------------------ #

    def topological_order(self) -> List[str]:
        """Internal node names, fan-ins before fan-outs.

        Raises ``ValueError`` on a combinational cycle.
        """
        state: Dict[str, int] = {}  # 0 visiting, 1 done
        order: List[str] = []

        def visit(name: str) -> None:
            if name in self._inputs:
                return
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                raise ValueError(f"combinational cycle through {name!r}")
            state[name] = 0
            for fi in self._nodes[name].fanins:
                visit(fi)
            state[name] = 1
            order.append(name)

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * (len(self._nodes) + 16)))
        try:
            for name in self._nodes:
                visit(name)
        finally:
            sys.setrecursionlimit(old_limit)
        return order

    def transitive_fanin(self, signals: Iterable[str]) -> Set[str]:
        """All signals (PIs included) in the cone of the given signals."""
        seen: Set[str] = set()
        stack = list(signals)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self._nodes:
                stack.extend(self._nodes[name].fanins)
        return seen

    def transitive_fanout(self, signals: Iterable[str]) -> Set[str]:
        """Paper Definition 4.2: nodes reachable from the given signals
        (the seed signals themselves included)."""
        fanout_map = self.fanouts()
        seen: Set[str] = set()
        stack = list(signals)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(fanout_map.get(name, []))
        return seen

    def support_of(self, signal: str) -> List[str]:
        """Primary inputs in the structural cone of ``signal``."""
        cone = self.transitive_fanin([signal])
        return [pi for pi in self._inputs if pi in cone]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def replace_node(self, name: str, fanins: Sequence[str], table: TruthTable) -> None:
        """Swap the implementation of an existing node in place."""
        if name not in self._nodes:
            raise KeyError(name)
        self._nodes[name] = Node(name, list(fanins), table)

    def remove_node(self, name: str) -> None:
        """Delete a node (must have no fanouts and drive no output)."""
        fanout_map = self.fanouts()
        if fanout_map.get(name):
            raise ValueError(f"node {name!r} still has fanouts")
        if any(driver == name for _, driver in self._outputs):
            raise ValueError(f"node {name!r} still drives an output")
        del self._nodes[name]

    def reroute_output(self, output_name: str, new_driver: str) -> None:
        """Point an existing primary output at a different driver."""
        if not self.has_signal(new_driver):
            raise ValueError(f"unknown driver {new_driver!r}")
        for i, (out, _) in enumerate(self._outputs):
            if out == output_name:
                self._outputs[i] = (out, new_driver)
                return
        raise KeyError(output_name)

    def copy(self, name: Optional[str] = None) -> "Network":
        """Deep-enough copy (tables are immutable, so sharing them is safe)."""
        dup = Network(name or self.name)
        dup._inputs = list(self._inputs)
        dup._nodes = {
            n: Node(node.name, list(node.fanins), node.table)
            for n, node in self._nodes.items()
        }
        dup._outputs = list(self._outputs)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.name!r}, {len(self._inputs)} PI, "
            f"{len(self._nodes)} nodes, {len(self._outputs)} PO)"
        )
