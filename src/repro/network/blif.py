"""BLIF (Berkeley Logic Interchange Format) reader and writer.

The MCNC benchmarks the paper uses are distributed as BLIF; this module
lets the reproduction exchange circuits with any classical logic-synthesis
tool (SIS, ABC, ...).  Only the combinational subset is supported:
``.model``, ``.inputs``, ``.outputs``, ``.names``, ``.end``.

Parse failures raise :class:`BlifError` (a :class:`ValueError` subclass,
so existing broad handlers keep working) carrying the 1-based source
``line`` of the offending construct — essential when the text being
rejected is a journaled fragment or a worker reply rather than a file a
human can eyeball.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from ..boolfunc import TruthTable
from ..runstate.atomic import atomic_write
from .netlist import Network

__all__ = ["BlifError", "parse_blif", "read_blif", "write_blif", "to_blif"]


class BlifError(ValueError):
    """Structured BLIF parse failure: message plus source line number.

    ``line`` is the 1-based number of the first physical line of the
    offending logical line (continuations collapse onto their first
    line), or ``None`` for whole-file problems reported at EOF.
    """

    def __init__(self, message: str, line: Optional[int] = None):
        super().__init__(
            message if line is None else f"line {line}: {message}"
        )
        self.line = line
        self.reason = message


def _tokenize(text: str) -> List[Tuple[int, List[str]]]:
    """Split into ``(line_number, tokens)`` logical lines.

    Continuations are joined (keeping the first physical line's number),
    comments stripped, blank lines dropped.
    """
    logical: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].rstrip()
        if not line and not pending:
            continue
        if not pending:
            pending_start = number
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical.append((pending_start, pending + line))
        pending = ""
    if pending:
        logical.append((pending_start, pending))
    return [
        (number, line.split()) for number, line in logical if line.split()
    ]


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a :class:`Network`.

    Single-output cover semantics: rows are input cubes (``0``, ``1``,
    ``-``) followed by the output value; an all-``1`` output polarity is
    assumed (``0``-polarity covers are complemented, as in SIS).

    Raises :class:`BlifError` (with a line number) for undefined
    signals, duplicate ``.model``/``.outputs`` lines, unsupported
    constructs, malformed cubes and truncated input (no ``.end``).
    """
    lines = _tokenize(text)
    model_name = "blif"
    model_line: Optional[int] = None
    outputs_line: Optional[int] = None
    inputs: List[str] = []
    outputs: List[str] = []
    # (fanins, target, rows as (cube, out, line), line of .names header)
    Rows = List[Tuple[str, str, int]]
    covers: List[Tuple[List[str], str, Rows, int]] = []

    i = 0
    ended = False
    current: Optional[Tuple[List[str], str, Rows, int]] = None
    while i < len(lines):
        number, tokens = lines[i]
        i += 1
        keyword = tokens[0]
        if ended:
            raise BlifError(
                f"content after .end: {' '.join(tokens)}", number
            )
        if keyword == ".model":
            if model_line is not None:
                raise BlifError(
                    f"duplicate .model line (first at line {model_line})",
                    number,
                )
            model_line = number
            model_name = tokens[1] if len(tokens) > 1 else model_name
        elif keyword == ".inputs":
            inputs.extend(tokens[1:])
        elif keyword == ".outputs":
            if outputs_line is not None:
                raise BlifError(
                    f"duplicate .outputs line (first at line {outputs_line})",
                    number,
                )
            outputs_line = number
            outputs.extend(tokens[1:])
        elif keyword == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names without a target signal", number)
            current = (signals[:-1], signals[-1], [], number)
            covers.append(current)
        elif keyword == ".end":
            current = None
            ended = True
        elif keyword.startswith("."):
            raise BlifError(
                f"unsupported BLIF construct {keyword!r}", number
            )
        else:
            if current is None:
                raise BlifError(
                    f"cube line outside .names: {' '.join(tokens)}", number
                )
            if len(current[0]) == 0:
                # Constant: single token '1' or '0'.
                current[2].append(("", tokens[0], number))
            else:
                if len(tokens) != 2:
                    raise BlifError(
                        f"malformed cube line: {' '.join(tokens)}", number
                    )
                current[2].append((tokens[0], tokens[1], number))
    if not ended:
        raise BlifError(
            "truncated BLIF: no .end directive "
            f"(saw {len(lines)} logical lines)"
        )

    net = Network(model_name)
    for pi in inputs:
        net.add_input(pi)

    # .names sections may reference signals defined later: add nodes with a
    # worklist that defers covers until all their fanins exist.
    pending = list(covers)
    while pending:
        progressed = False
        deferred = []
        for fanins, target, rows, number in pending:
            if all(net.has_signal(fi) for fi in fanins):
                try:
                    table = _cover_to_table(fanins, rows)
                except BlifError:
                    raise  # already carries the offending cube's line
                except ValueError as exc:
                    raise BlifError(str(exc), number) from None
                net.add_node(target, fanins, table)
                progressed = True
            else:
                deferred.append((fanins, target, rows, number))
        if not progressed:
            missing = sorted(
                {
                    fi
                    for fanins, _, _, _ in deferred
                    for fi in fanins
                    if not net.has_signal(fi)
                }
            )
            first_line = min(number for _, _, _, number in deferred)
            raise BlifError(
                f"undefined signals in BLIF: {missing}", first_line
            )
        pending = deferred

    for out in outputs:
        if not net.has_signal(out):
            raise BlifError(
                f"output {out!r} has no driver", outputs_line
            )
        net.add_output(out)
    return net


def _cover_to_table(
    fanins: List[str], rows: List[Tuple[str, str, int]]
) -> TruthTable:
    n = len(fanins)
    if n == 0:
        value = any(out == "1" for _, out, _ in rows)
        return TruthTable.constant(0, 1 if value else 0)
    on = 0
    polarity = rows[0][1] if rows else "1"
    for cube, out, number in rows:
        if out != polarity:
            raise BlifError("mixed output polarity in one cover", number)
        if len(cube) != n:
            raise BlifError(
                f"cube {cube!r} arity mismatch (expect {n})", number
            )
        # Expand the cube over don't-care positions.
        free = [j for j, ch in enumerate(cube) if ch == "-"]
        base = 0
        for j, ch in enumerate(cube):
            if ch == "1":
                base |= 1 << j
            elif ch not in "0-":
                raise BlifError(f"invalid cube character {ch!r}", number)
        for k in range(1 << len(free)):
            m = base
            for b, j in enumerate(free):
                if (k >> b) & 1:
                    m |= 1 << j
            on |= 1 << m
    table = TruthTable(n, on)
    if polarity == "0":
        table = ~table
    return table


def read_blif(path: str) -> Network:
    """Parse a BLIF file from disk."""
    with open(path) as handle:
        return parse_blif(handle.read())


def to_blif(net: Network) -> str:
    """Serialise a network to BLIF text (on-set cover per node)."""
    lines = [f".model {net.name}"]
    lines.append(".inputs " + " ".join(net.inputs))
    lines.append(".outputs " + " ".join(net.output_names))
    # Outputs that alias PIs or share drivers need buffer nodes in BLIF.
    emitted_buffer = set()
    for out, driver in net.outputs:
        if out != driver and out not in emitted_buffer:
            lines.append(f".names {driver} {out}")
            lines.append("1 1")
            emitted_buffer.add(out)
    for node in net.nodes():
        lines.append(".names " + " ".join(node.fanins + [node.name]))
        if node.table.num_inputs == 0:
            if node.table.mask:
                lines.append("1")
            continue
        for minterm in node.table.on_set():
            cube = "".join(
                "1" if (minterm >> j) & 1 else "0"
                for j in range(node.table.num_inputs)
            )
            lines.append(f"{cube} 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(net: Network, path: str) -> None:
    """Write a network to a BLIF file (atomically: never a torn file)."""
    with atomic_write(path) as handle:
        handle.write(to_blif(net))
