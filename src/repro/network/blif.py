"""BLIF (Berkeley Logic Interchange Format) reader and writer.

The MCNC benchmarks the paper uses are distributed as BLIF; this module
lets the reproduction exchange circuits with any classical logic-synthesis
tool (SIS, ABC, ...).  Only the combinational subset is supported:
``.model``, ``.inputs``, ``.outputs``, ``.names``, ``.end``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from ..boolfunc import TruthTable
from .netlist import Network

__all__ = ["parse_blif", "read_blif", "write_blif", "to_blif"]


def _tokenize(text: str) -> List[List[str]]:
    """Split into logical lines (continuations joined, comments stripped)."""
    logical: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line and not pending:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical.append(pending + line)
        pending = ""
    if pending:
        logical.append(pending)
    return [line.split() for line in logical if line.split()]


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a :class:`Network`.

    Single-output cover semantics: rows are input cubes (``0``, ``1``,
    ``-``) followed by the output value; an all-``1`` output polarity is
    assumed (``0``-polarity covers are complemented, as in SIS).
    """
    lines = _tokenize(text)
    model_name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    covers: List[Tuple[List[str], str, List[Tuple[str, str]]]] = []

    i = 0
    current: Optional[Tuple[List[str], str, List[Tuple[str, str]]]] = None
    while i < len(lines):
        tokens = lines[i]
        i += 1
        keyword = tokens[0]
        if keyword == ".model":
            model_name = tokens[1] if len(tokens) > 1 else model_name
        elif keyword == ".inputs":
            inputs.extend(tokens[1:])
        elif keyword == ".outputs":
            outputs.extend(tokens[1:])
        elif keyword == ".names":
            signals = tokens[1:]
            current = (signals[:-1], signals[-1], [])
            covers.append(current)
        elif keyword == ".end":
            current = None
        elif keyword.startswith("."):
            raise ValueError(f"unsupported BLIF construct {keyword!r}")
        else:
            if current is None:
                raise ValueError(f"cube line outside .names: {' '.join(tokens)}")
            if len(current[0]) == 0:
                # Constant: single token '1' or '0'.
                current[2].append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise ValueError(f"malformed cube line: {' '.join(tokens)}")
                current[2].append((tokens[0], tokens[1]))

    net = Network(model_name)
    for pi in inputs:
        net.add_input(pi)

    # .names sections may reference signals defined later: add nodes with a
    # worklist that defers covers until all their fanins exist.
    pending = list(covers)
    while pending:
        progressed = False
        deferred = []
        for fanins, target, rows in pending:
            if all(net.has_signal(fi) for fi in fanins):
                net.add_node(target, fanins, _cover_to_table(fanins, rows))
                progressed = True
            else:
                deferred.append((fanins, target, rows))
        if not progressed:
            missing = sorted(
                {fi for fanins, _, _ in deferred for fi in fanins if not net.has_signal(fi)}
            )
            raise ValueError(f"undefined signals in BLIF: {missing}")
        pending = deferred

    for out in outputs:
        if not net.has_signal(out):
            raise ValueError(f"output {out!r} has no driver")
        net.add_output(out)
    return net


def _cover_to_table(fanins: List[str], rows: List[Tuple[str, str]]) -> TruthTable:
    n = len(fanins)
    if n == 0:
        value = any(out == "1" for _, out in rows)
        return TruthTable.constant(0, 1 if value else 0)
    on = 0
    polarity = rows[0][1] if rows else "1"
    for cube, out in rows:
        if out != polarity:
            raise ValueError("mixed output polarity in one cover")
        if len(cube) != n:
            raise ValueError(f"cube {cube!r} arity mismatch (expect {n})")
        # Expand the cube over don't-care positions.
        free = [j for j, ch in enumerate(cube) if ch == "-"]
        base = 0
        for j, ch in enumerate(cube):
            if ch == "1":
                base |= 1 << j
            elif ch not in "0-":
                raise ValueError(f"invalid cube character {ch!r}")
        for k in range(1 << len(free)):
            m = base
            for b, j in enumerate(free):
                if (k >> b) & 1:
                    m |= 1 << j
            on |= 1 << m
    table = TruthTable(n, on)
    if polarity == "0":
        table = ~table
    return table


def read_blif(path: str) -> Network:
    """Parse a BLIF file from disk."""
    with open(path) as handle:
        return parse_blif(handle.read())


def to_blif(net: Network) -> str:
    """Serialise a network to BLIF text (on-set cover per node)."""
    lines = [f".model {net.name}"]
    lines.append(".inputs " + " ".join(net.inputs))
    lines.append(".outputs " + " ".join(net.output_names))
    # Outputs that alias PIs or share drivers need buffer nodes in BLIF.
    emitted_buffer = set()
    for out, driver in net.outputs:
        if out != driver and out not in emitted_buffer:
            lines.append(f".names {driver} {out}")
            lines.append("1 1")
            emitted_buffer.add(out)
    for node in net.nodes():
        lines.append(".names " + " ".join(node.fanins + [node.name]))
        if node.table.num_inputs == 0:
            if node.table.mask:
                lines.append("1")
            continue
        for minterm in node.table.on_set():
            cube = "".join(
                "1" if (minterm >> j) & 1 else "0"
                for j in range(node.table.num_inputs)
            )
            lines.append(f"{cube} 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(net: Network, path: str) -> None:
    """Write a network to a BLIF file."""
    with open(path, "w") as handle:
        handle.write(to_blif(net))
