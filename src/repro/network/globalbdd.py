"""Global (primary-input level) BDDs of a network's signals."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..bdd import FALSE, TRUE, BddManager
from .netlist import Network

__all__ = ["GlobalBdds", "build_global_bdds"]


class GlobalBdds:
    """BDDs of network signals as functions of the primary inputs.

    The manager's variable i is the network's i-th primary input (in
    declaration order) unless a custom ``pi_order`` is supplied.
    """

    def __init__(
        self,
        net: Network,
        pi_order: Optional[List[str]] = None,
        manager: Optional[BddManager] = None,
    ):
        self.net = net
        self.pi_order = list(pi_order) if pi_order is not None else list(net.inputs)
        if sorted(self.pi_order) != sorted(net.inputs):
            raise ValueError("pi_order must be a permutation of the network inputs")
        if manager is None:
            manager = BddManager()
            for pi in self.pi_order:
                manager.add_var(pi)
        self.manager = manager
        self._cache: Dict[str, int] = {
            pi: self.manager.var(pi) for pi in self.pi_order
        }

    def of(self, signal: str) -> int:
        """Global BDD of an arbitrary signal (computed lazily)."""
        cached = self._cache.get(signal)
        if cached is not None:
            return cached
        # Compute every node in the cone in topological order.
        cone = self.net.transitive_fanin([signal])
        for name in self.net.topological_order():
            if name not in cone or name in self._cache:
                continue
            node = self.net.node(name)
            if node.table.num_inputs == 0:
                self._cache[name] = TRUE if node.table.mask else FALSE
                continue
            bdd = FALSE
            for minterm in node.table.on_set():
                cube = TRUE
                for j, fi in enumerate(node.fanins):
                    literal = self._cache[fi]
                    if not (minterm >> j) & 1:
                        literal = self.manager.apply_not(literal)
                    cube = self.manager.apply_and(cube, literal)
                    if cube == FALSE:
                        break
                bdd = self.manager.apply_or(bdd, cube)
            self._cache[name] = bdd
        return self._cache[signal]

    def of_output(self, output_name: str) -> int:
        """Global BDD of a primary output."""
        return self.of(self.net.output_driver(output_name))

    def all_outputs(self) -> Dict[str, int]:
        """Global BDDs of every primary output."""
        return {out: self.of(driver) for out, driver in self.net.outputs}


def build_global_bdds(
    net: Network, pi_order: Optional[List[str]] = None
) -> Tuple[BddManager, Dict[str, int]]:
    """Convenience: (manager, output name -> BDD) for the whole network."""
    g = GlobalBdds(net, pi_order)
    return g.manager, g.all_outputs()
