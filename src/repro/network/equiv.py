"""Combinational equivalence checking between networks.

Used throughout the reproduction to verify that decomposition / mapping
preserved every output.  Two engines:

* BDD-based exact check (default; fine for the benchmark sizes here).
* Bit-parallel random simulation (fast screen, used by the harness on
  circuits whose global BDDs would be expensive).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .globalbdd import GlobalBdds
from .netlist import Network
from .simulate import random_vectors, simulate_vectors

__all__ = ["check_equivalence", "simulate_equivalence", "EquivalenceError"]


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` on a mismatch."""


def _common_io(a: Network, b: Network) -> Tuple[List[str], List[str]]:
    if sorted(a.inputs) != sorted(b.inputs):
        raise ValueError(
            f"input mismatch: {sorted(a.inputs)} vs {sorted(b.inputs)}"
        )
    if sorted(a.output_names) != sorted(b.output_names):
        raise ValueError(
            f"output mismatch: {sorted(a.output_names)} vs {sorted(b.output_names)}"
        )
    return a.inputs, a.output_names


def check_equivalence(a: Network, b: Network) -> Optional[str]:
    """Exact BDD equivalence check.

    Returns ``None`` when all outputs match, otherwise the name of the
    first differing output.
    """
    _, outputs = _common_io(a, b)
    pi_order = a.inputs
    ga = GlobalBdds(a, pi_order)
    # Both sides must live in ONE manager: node ids are only canonical
    # within a single unique table.
    gb = GlobalBdds(b, pi_order, manager=ga.manager)
    for out in outputs:
        if ga.of_output(out) != gb.of_output(out):
            return out
    return None


def assert_equivalent(a: Network, b: Network) -> None:
    """Raise :class:`EquivalenceError` unless ``a`` and ``b`` match."""
    bad = check_equivalence(a, b)
    if bad is not None:
        raise EquivalenceError(f"output {bad!r} differs between {a.name} and {b.name}")


def simulate_equivalence(
    a: Network, b: Network, num_vectors: int = 1024, seed: int = 0
) -> Optional[str]:
    """Random-simulation screen (sound for *dis*proving equivalence only).

    Returns ``None`` when no difference was observed, else the name of the
    first differing output.
    """
    _, outputs = _common_io(a, b)
    patterns = random_vectors(a, num_vectors, seed)
    ra = simulate_vectors(a, patterns, num_vectors)
    rb = simulate_vectors(b, patterns, num_vectors)
    for out in outputs:
        if ra[out] != rb[out]:
            return out
    return None
